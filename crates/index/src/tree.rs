//! B+ tree implementation.

use std::ops::Bound;

/// Maximum number of entries in a leaf / children in an internal node.
/// 32 keeps nodes within a couple of cache lines while staying shallow.
const ORDER: usize = 32;
/// Minimum fill after a split.
const HALF: usize = ORDER / 2;

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        /// Sorted by key; duplicates allowed and kept in insertion order.
        entries: Vec<(f64, V)>,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (keys `<= keys[i]`… strictly:
        /// keys of `children[i]` are `< keys[i]`, duplicates of a
        /// separator may live right of it) from `children[i+1]`.
        keys: Vec<f64>,
        children: Vec<Node<V>>,
    },
}

/// Append-only B+ tree with `f64` keys and arbitrary values.
///
/// See the crate docs for the design rationale. All keys must be finite;
/// inserting NaN panics (a NaN scalar projection would poison the
/// ordering guarantees the SCAPE proofs rely on).
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BPlusTree<V> {
    /// Empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf); exposed for tests and
    /// diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Insert a key/value pair. Duplicate keys are allowed.
    ///
    /// # Panics
    /// Panics if `key` is NaN.
    pub fn insert(&mut self, key: f64, value: V) {
        assert!(!key.is_nan(), "B+ tree keys must not be NaN");
        self.len += 1;
        if let Some((sep, right)) = insert_rec(&mut self.root, key, value) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            };
        }
    }

    /// Build a tree from entries already sorted by key, bottom-up.
    ///
    /// # Panics
    /// Panics if the keys are not sorted ascending or any key is NaN.
    pub fn bulk_build(entries: Vec<(f64, V)>) -> Self {
        for w in entries.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "bulk_build requires entries sorted by key"
            );
        }
        assert!(
            entries.iter().all(|(k, _)| !k.is_nan()),
            "B+ tree keys must not be NaN"
        );
        let len = entries.len();
        if len == 0 {
            return BPlusTree::new();
        }
        // Leaf level.
        let mut level: Vec<Node<V>> = Vec::new();
        let mut firsts: Vec<f64> = Vec::new();
        let mut iter = entries.into_iter().peekable();
        while iter.peek().is_some() {
            let chunk: Vec<(f64, V)> = iter.by_ref().take(HALF.max(2)).collect();
            firsts.push(chunk[0].0);
            level.push(Node::Leaf { entries: chunk });
        }
        // Internal levels.
        while level.len() > 1 {
            let mut next_level = Vec::new();
            let mut next_firsts = Vec::new();
            let i = 0;
            while i < level.len() {
                let take = (level.len() - i).min(HALF.max(2));
                let children: Vec<Node<V>> = level.drain(i..i + take).collect();
                // After drain, indices shift; keep i at same position.
                let keys: Vec<f64> = firsts[i + 1..i + take].to_vec();
                next_firsts.push(firsts[i]);
                firsts.drain(i..i + take);
                next_level.push(Node::Internal { children, keys });
                // level and firsts shrank in place; i stays.
            }
            level = next_level;
            firsts = next_firsts;
        }
        BPlusTree {
            root: level.pop().expect("non-empty by construction"),
            len,
        }
    }

    /// Iterate all entries in ascending key order.
    pub fn iter(&self) -> RangeIter<'_, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Iterate entries whose keys fall within `(lo, hi)` bounds, ascending.
    ///
    /// This is the search primitive behind MET/MER processing: the paper's
    /// "binary search" over a pivot's B-tree is `range(Excluded(τ'),
    /// Unbounded)` for a greater-than threshold query, etc.
    pub fn range(&self, lo: Bound<f64>, hi: Bound<f64>) -> RangeIter<'_, V> {
        RangeIter::new(&self.root, lo, hi)
    }

    /// Count entries in the given key range without materializing them.
    pub fn count_range(&self, lo: Bound<f64>, hi: Bound<f64>) -> usize {
        self.range(lo, hi).count()
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<f64> {
        self.iter().next().map(|(k, _)| k)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => return entries.last().map(|(k, _)| *k),
                Node::Internal { children, .. } => {
                    node = children.last().expect("internal node has children");
                }
            }
        }
    }
}

/// Recursive insert; returns `Some((separator, new_right_sibling))` when
/// the child split.
fn insert_rec<V>(node: &mut Node<V>, key: f64, value: V) -> Option<(f64, Node<V>)> {
    match node {
        Node::Leaf { entries } => {
            // Upper bound: after existing duplicates, preserving insertion
            // order among equal keys.
            let pos = entries.partition_point(|(k, _)| *k <= key);
            entries.insert(pos, (key, value));
            if entries.len() > ORDER {
                let right_entries = entries.split_off(HALF);
                let sep = right_entries[0].0;
                Some((
                    sep,
                    Node::Leaf {
                        entries: right_entries,
                    },
                ))
            } else {
                None
            }
        }
        Node::Internal { keys, children } => {
            let idx = keys.partition_point(|k| *k <= key);
            let split = insert_rec(&mut children[idx], key, value);
            if let Some((sep, right)) = split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                if children.len() > ORDER {
                    let right_children = children.split_off(HALF + 1);
                    let mut right_keys = keys.split_off(HALF);
                    let sep_up = right_keys.remove(0);
                    return Some((
                        sep_up,
                        Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    ));
                }
            }
            None
        }
    }
}

/// Ascending in-order iterator over a key range.
///
/// Holds an explicit descent stack of `(node, next_child_or_entry)`
/// cursors instead of leaf sibling links, which keeps the tree purely
/// owned (no `Rc`/pointers) at identical asymptotics.
pub struct RangeIter<'a, V> {
    /// Stack of internal nodes with the next child index to visit.
    stack: Vec<(&'a Node<V>, usize)>,
    /// Current leaf and position within it.
    leaf: Option<(&'a [(f64, V)], usize)>,
    lo: Bound<f64>,
    hi: Bound<f64>,
    started: bool,
}

impl<'a, V> RangeIter<'a, V> {
    fn new(root: &'a Node<V>, lo: Bound<f64>, hi: Bound<f64>) -> Self {
        RangeIter {
            stack: vec![(root, 0)],
            leaf: None,
            lo,
            hi,
            started: false,
        }
    }

    fn key_below_lo(&self, k: f64) -> bool {
        match self.lo {
            Bound::Unbounded => false,
            Bound::Included(b) => k < b,
            Bound::Excluded(b) => k <= b,
        }
    }

    fn key_above_hi(&self, k: f64) -> bool {
        match self.hi {
            Bound::Unbounded => false,
            Bound::Included(b) => k > b,
            Bound::Excluded(b) => k >= b,
        }
    }

    /// Descend to the first leaf that can contain keys ≥ lo.
    fn seek(&mut self) {
        let (mut node, _) = self.stack.pop().expect("seek on fresh iterator");
        self.stack.clear();
        loop {
            match node {
                Node::Leaf { entries } => {
                    let start = match self.lo {
                        Bound::Unbounded => 0,
                        Bound::Included(b) => entries.partition_point(|(k, _)| *k < b),
                        Bound::Excluded(b) => entries.partition_point(|(k, _)| *k <= b),
                    };
                    self.leaf = Some((entries.as_slice(), start));
                    return;
                }
                Node::Internal { keys, children } => {
                    let idx = match self.lo {
                        Bound::Unbounded => 0,
                        Bound::Included(b) | Bound::Excluded(b) => {
                            keys.partition_point(|k| *k <= b)
                        }
                    };
                    self.stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
    }

    /// Advance to the next leaf after the current one is exhausted.
    fn next_leaf(&mut self) -> bool {
        while let Some((node, idx)) = self.stack.pop() {
            if let Node::Internal { children, .. } = node {
                if idx < children.len() {
                    self.stack.push((node, idx + 1));
                    // Descend leftmost from children[idx].
                    let mut n = &children[idx];
                    loop {
                        match n {
                            Node::Leaf { entries } => {
                                self.leaf = Some((entries.as_slice(), 0));
                                return true;
                            }
                            Node::Internal { children, .. } => {
                                self.stack.push((n, 1));
                                n = &children[0];
                            }
                        }
                    }
                }
            }
        }
        false
    }
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (f64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.started {
            self.started = true;
            self.seek();
        }
        loop {
            let (entries, pos) = self.leaf?;
            if pos < entries.len() {
                let (k, v) = &entries[pos];
                if self.key_below_lo(*k) {
                    // Only possible at the very start boundary; skip.
                    self.leaf = Some((entries, pos + 1));
                    continue;
                }
                if self.key_above_hi(*k) {
                    self.leaf = None;
                    return None;
                }
                self.leaf = Some((entries, pos + 1));
                return Some((*k, v));
            }
            if !self.next_leaf() {
                self.leaf = None;
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree_behaves() {
        let t: BPlusTree<u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn insert_and_iterate_sorted() {
        let mut t = BPlusTree::new();
        let keys = [5.0, 1.0, 3.0, 2.0, 4.0, -1.0, 0.0];
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, i);
        }
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
        assert_eq!(t.min_key(), Some(-1.0));
        assert_eq!(t.max_key(), Some(5.0));
    }

    #[test]
    fn duplicates_preserved_in_insertion_order() {
        let mut t = BPlusTree::new();
        t.insert(1.0, "a");
        t.insert(1.0, "b");
        t.insert(1.0, "c");
        let vals: Vec<&str> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec!["a", "b", "c"]);
    }

    #[test]
    fn large_insert_matches_btreemap_oracle() {
        let mut t = BPlusTree::new();
        let mut oracle: Vec<(i64, usize)> = Vec::new();
        // Deterministic pseudo-random sequence.
        let mut x: u64 = 0x12345678;
        for i in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) as i64) - (1 << 30);
            t.insert(k as f64, i);
            oracle.push((k, i));
        }
        oracle.sort_by_key(|(k, _)| *k);
        assert_eq!(t.len(), 5000);
        assert!(t.height() > 1, "tree should have split");
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        let want: Vec<f64> = oracle.iter().map(|(k, _)| *k as f64).collect();
        assert_eq!(got, want);
    }

    fn range_oracle(entries: &[(f64, usize)], lo: Bound<f64>, hi: Bound<f64>) -> Vec<(f64, usize)> {
        let mut v: Vec<(f64, usize)> = entries
            .iter()
            .filter(|(k, _)| {
                let above = match lo {
                    Bound::Unbounded => true,
                    Bound::Included(b) => *k >= b,
                    Bound::Excluded(b) => *k > b,
                };
                let below = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(b) => *k <= b,
                    Bound::Excluded(b) => *k < b,
                };
                above && below
            })
            .cloned()
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v
    }

    #[test]
    fn range_queries_match_oracle() {
        let mut t = BPlusTree::new();
        let mut entries = Vec::new();
        let mut x: u64 = 42;
        for i in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 40) as f64) / 256.0; // many duplicates
            t.insert(k, i);
            entries.push((k, i));
        }
        let bounds = [
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(100.0), Bound::Unbounded),
            (Bound::Excluded(100.0), Bound::Included(5000.0)),
            (Bound::Included(0.0), Bound::Excluded(0.0)),
            (Bound::Excluded(-1e9), Bound::Excluded(1e9)),
            (Bound::Included(3000.0), Bound::Included(3000.0)),
        ];
        for (lo, hi) in bounds {
            let got: Vec<f64> = t.range(lo, hi).map(|(k, _)| k).collect();
            let want: Vec<f64> = range_oracle(&entries, lo, hi)
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(got, want, "bounds {lo:?}..{hi:?}");
            assert_eq!(t.count_range(lo, hi), want.len());
        }
    }

    #[test]
    fn bulk_build_equals_incremental() {
        let entries: Vec<(f64, usize)> = (0..1000).map(|i| (i as f64 * 0.5, i)).collect();
        let bulk = BPlusTree::bulk_build(entries.clone());
        let mut inc = BPlusTree::new();
        for (k, v) in &entries {
            inc.insert(*k, *v);
        }
        assert_eq!(bulk.len(), inc.len());
        let a: Vec<(f64, usize)> = bulk.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(f64, usize)> = inc.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_build_empty_and_single() {
        let t: BPlusTree<u8> = BPlusTree::bulk_build(vec![]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_build(vec![(1.5, 7u8)]);
        assert_eq!(
            t.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>(),
            vec![(1.5, 7)]
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_build_rejects_unsorted() {
        BPlusTree::bulk_build(vec![(2.0, 0u8), (1.0, 1u8)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_key_rejected() {
        BPlusTree::new().insert(f64::NAN, 0u8);
    }

    #[test]
    fn negative_and_special_floats() {
        let mut t = BPlusTree::new();
        t.insert(f64::NEG_INFINITY, 0);
        t.insert(-0.0, 1);
        t.insert(0.0, 2);
        t.insert(f64::INFINITY, 3);
        let got: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let finite: Vec<i32> = t
            .range(Bound::Included(-1.0), Bound::Included(1.0))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(finite, vec![1, 2]);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::new();
        for i in 0..10_000 {
            t.insert(i as f64, ());
        }
        // With ORDER=32 and 10k entries, height should be small.
        assert!(t.height() <= 4, "height {} too tall", t.height());
        // BTreeMap cross-check on ascending insert.
        let oracle: BTreeMap<i64, ()> = (0..10_000).map(|i| (i, ())).collect();
        assert_eq!(t.len(), oracle.len());
    }

    #[test]
    fn descending_insert_order_still_sorted() {
        let mut t = BPlusTree::new();
        for i in (0..3000).rev() {
            t.insert(i as f64, i);
        }
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        let want: Vec<f64> = (0..3000).map(|i| i as f64).collect();
        assert_eq!(got, want);
    }
}

//! B+ tree implementation.

use std::ops::Bound;

/// Maximum number of entries in a leaf / children in an internal node.
/// 32 keeps nodes within a couple of cache lines while staying shallow.
const ORDER: usize = 32;
/// Minimum fill after a split.
const HALF: usize = ORDER / 2;

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        /// Sorted by key; duplicates allowed and kept in insertion order.
        entries: Vec<(f64, V)>,
    },
    Internal {
        /// `keys[i]` bounds the split between `children[i]` and
        /// `children[i+1]`: every key in `children[i]` is `<= keys[i]`
        /// and every key in `children[i+1]` is `>= keys[i]`. A run of
        /// duplicates may span the separator (live on **both** sides),
        /// so descents for a lower bound must go left of an equal
        /// separator — see [`RangeIter::seek`].
        keys: Vec<f64>,
        children: Vec<Node<V>>,
        /// Total entries stored in this subtree; answers
        /// [`BPlusTree::count_range`] rank descents in `O(log n)`.
        count: usize,
    },
}

/// Entries stored under `node`.
#[inline]
fn subtree_count<V>(node: &Node<V>) -> usize {
    match node {
        Node::Leaf { entries } => entries.len(),
        Node::Internal { count, .. } => *count,
    }
}

/// Append-only B+ tree with `f64` keys and arbitrary values.
///
/// See the crate docs for the design rationale. All keys must be finite;
/// inserting NaN panics (a NaN scalar projection would poison the
/// ordering guarantees the SCAPE proofs rely on).
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BPlusTree<V> {
    /// Empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 for a lone leaf); exposed for tests and
    /// diagnostics.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Insert a key/value pair. Duplicate keys are allowed.
    ///
    /// # Panics
    /// Panics if `key` is NaN.
    pub fn insert(&mut self, key: f64, value: V) {
        assert!(!key.is_nan(), "B+ tree keys must not be NaN");
        self.len += 1;
        if let Some((sep, right)) = insert_rec(&mut self.root, key, value) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    entries: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
                count: self.len,
            };
        }
    }

    /// Remove and return the first entry (in stored order among
    /// duplicates) whose key equals `key` and whose value satisfies
    /// `pred`. Returns `None` when no such entry exists.
    ///
    /// Removal does not rebalance: a leaf may underflow (or empty out)
    /// and separators stay behind as bounds, which keeps every search
    /// correct. The SCAPE delta path pairs each removal with a
    /// reinsertion, so occupancy stays stable in the intended workload;
    /// unmatched heavy deletion merely degrades space, not correctness.
    ///
    /// # Panics
    /// Panics if `key` is NaN.
    pub fn remove<F: FnMut(&V) -> bool>(&mut self, key: f64, mut pred: F) -> Option<V> {
        assert!(!key.is_nan(), "B+ tree keys must not be NaN");
        let removed = remove_rec(&mut self.root, key, &mut pred);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Build a tree from entries already sorted by key, bottom-up.
    ///
    /// # Panics
    /// Panics if the keys are not sorted ascending or any key is NaN.
    pub fn bulk_build(entries: Vec<(f64, V)>) -> Self {
        for w in entries.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "bulk_build requires entries sorted by key"
            );
        }
        assert!(
            entries.iter().all(|(k, _)| !k.is_nan()),
            "B+ tree keys must not be NaN"
        );
        let len = entries.len();
        if len == 0 {
            return BPlusTree::new();
        }
        let fanout = HALF.max(2);
        // Leaf level.
        let mut level: Vec<Node<V>> = Vec::with_capacity(len.div_ceil(fanout));
        let mut firsts: Vec<f64> = Vec::with_capacity(len.div_ceil(fanout));
        let mut iter = entries.into_iter().peekable();
        while iter.peek().is_some() {
            let chunk: Vec<(f64, V)> = iter.by_ref().take(fanout).collect();
            firsts.push(chunk[0].0);
            level.push(Node::Leaf { entries: chunk });
        }
        // Internal levels: chunk by index (each node is moved exactly
        // once, so a level costs O(level), not the quadratic re-shift a
        // front drain would pay).
        while level.len() > 1 {
            let total = level.len();
            let groups = total.div_ceil(fanout);
            let mut next_level: Vec<Node<V>> = Vec::with_capacity(groups);
            let mut next_firsts: Vec<f64> = Vec::with_capacity(groups);
            let mut nodes = level.into_iter();
            let mut start = 0;
            while start < total {
                let take = (total - start).min(fanout);
                let children: Vec<Node<V>> = nodes.by_ref().take(take).collect();
                let count = children.iter().map(subtree_count).sum();
                let keys: Vec<f64> = firsts[start + 1..start + take].to_vec();
                next_firsts.push(firsts[start]);
                next_level.push(Node::Internal {
                    keys,
                    children,
                    count,
                });
                start += take;
            }
            level = next_level;
            firsts = next_firsts;
        }
        BPlusTree {
            root: level.pop().expect("non-empty by construction"),
            len,
        }
    }

    /// Iterate all entries in ascending key order.
    pub fn iter(&self) -> RangeIter<'_, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Iterate entries whose keys fall within `(lo, hi)` bounds, ascending.
    ///
    /// This is the search primitive behind MET/MER processing: the paper's
    /// "binary search" over a pivot's B-tree is `range(Excluded(τ'),
    /// Unbounded)` for a greater-than threshold query, etc.
    pub fn range(&self, lo: Bound<f64>, hi: Bound<f64>) -> RangeIter<'_, V> {
        RangeIter::new(&self.root, lo, hi)
    }

    /// Count entries in the given key range without materializing them:
    /// two rank descents over the per-node subtree counts, `O(log n)`
    /// regardless of how many entries fall inside the range.
    ///
    /// NaN bounds are rejected in debug builds; keys themselves can
    /// never be NaN.
    pub fn count_range(&self, lo: Bound<f64>, hi: Bound<f64>) -> usize {
        debug_assert!(
            !matches!(lo, Bound::Included(b) | Bound::Excluded(b) if b.is_nan())
                && !matches!(hi, Bound::Included(b) | Bound::Excluded(b) if b.is_nan()),
            "count_range bounds must not be NaN"
        );
        let below_lo = match lo {
            Bound::Unbounded => 0,
            Bound::Included(b) => rank(&self.root, b, true),
            Bound::Excluded(b) => rank(&self.root, b, false),
        };
        let upto_hi = match hi {
            Bound::Unbounded => self.len,
            Bound::Included(b) => rank(&self.root, b, false),
            Bound::Excluded(b) => rank(&self.root, b, true),
        };
        upto_hi.saturating_sub(below_lo)
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<f64> {
        self.iter().next().map(|(k, _)| k)
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<f64> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => return entries.last().map(|(k, _)| *k),
                Node::Internal { children, .. } => {
                    node = children.last().expect("internal node has children");
                }
            }
        }
    }
}

/// Number of entries under `node` with key `< bound` (`strict`) or
/// `<= bound` (`!strict`). A single root-to-leaf descent: at each
/// internal node every child left of the descent index is fully below
/// the bound (its keys are `<=` its right separator, which is below the
/// bound) and every child right of it is fully above (its keys are `>=`
/// its left separator), so only one child needs recursion.
fn rank<V>(mut node: &Node<V>, bound: f64, strict: bool) -> usize {
    let mut acc = 0;
    loop {
        match node {
            Node::Leaf { entries } => {
                return acc
                    + if strict {
                        entries.partition_point(|(k, _)| *k < bound)
                    } else {
                        entries.partition_point(|(k, _)| *k <= bound)
                    };
            }
            Node::Internal { keys, children, .. } => {
                let idx = if strict {
                    keys.partition_point(|k| *k < bound)
                } else {
                    keys.partition_point(|k| *k <= bound)
                };
                acc += children[..idx].iter().map(subtree_count).sum::<usize>();
                node = &children[idx];
            }
        }
    }
}

/// Recursive insert; returns `Some((separator, new_right_sibling))` when
/// the child split.
fn insert_rec<V>(node: &mut Node<V>, key: f64, value: V) -> Option<(f64, Node<V>)> {
    match node {
        Node::Leaf { entries } => {
            // Upper bound: after existing duplicates, preserving insertion
            // order among equal keys.
            let pos = entries.partition_point(|(k, _)| *k <= key);
            entries.insert(pos, (key, value));
            if entries.len() > ORDER {
                let right_entries = entries.split_off(HALF);
                let sep = right_entries[0].0;
                Some((
                    sep,
                    Node::Leaf {
                        entries: right_entries,
                    },
                ))
            } else {
                None
            }
        }
        Node::Internal {
            keys,
            children,
            count,
        } => {
            // The new entry lands somewhere in this subtree either way.
            *count += 1;
            let idx = keys.partition_point(|k| *k <= key);
            let split = insert_rec(&mut children[idx], key, value);
            if let Some((sep, right)) = split {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                if children.len() > ORDER {
                    let right_children = children.split_off(HALF + 1);
                    let mut right_keys = keys.split_off(HALF);
                    let sep_up = right_keys.remove(0);
                    let right_count: usize = right_children.iter().map(subtree_count).sum();
                    *count -= right_count;
                    return Some((
                        sep_up,
                        Node::Internal {
                            keys: right_keys,
                            children: right_children,
                            count: right_count,
                        },
                    ));
                }
            }
            None
        }
    }
}

/// Recursive remove: duplicates of `key` may span several children (a
/// run can straddle separators), so every child between the first and
/// last separator position that can hold `key` is probed in order.
fn remove_rec<V, F: FnMut(&V) -> bool>(node: &mut Node<V>, key: f64, pred: &mut F) -> Option<V> {
    match node {
        Node::Leaf { entries } => {
            let start = entries.partition_point(|(k, _)| *k < key);
            for i in start..entries.len() {
                if entries[i].0 != key {
                    break;
                }
                if pred(&entries[i].1) {
                    return Some(entries.remove(i).1);
                }
            }
            None
        }
        Node::Internal {
            keys,
            children,
            count,
        } => {
            let lo = keys.partition_point(|k| *k < key);
            let hi = keys.partition_point(|k| *k <= key).min(children.len() - 1);
            for child in &mut children[lo..=hi] {
                if let Some(v) = remove_rec(child, key, pred) {
                    *count -= 1;
                    return Some(v);
                }
            }
            None
        }
    }
}

/// Ascending in-order iterator over a key range.
///
/// Holds an explicit descent stack of `(node, next_child_or_entry)`
/// cursors instead of leaf sibling links, which keeps the tree purely
/// owned (no `Rc`/pointers) at identical asymptotics.
pub struct RangeIter<'a, V> {
    /// Stack of internal nodes with the next child index to visit.
    stack: Vec<(&'a Node<V>, usize)>,
    /// Current leaf and position within it.
    leaf: Option<(&'a [(f64, V)], usize)>,
    lo: Bound<f64>,
    hi: Bound<f64>,
    started: bool,
}

impl<'a, V> RangeIter<'a, V> {
    fn new(root: &'a Node<V>, lo: Bound<f64>, hi: Bound<f64>) -> Self {
        RangeIter {
            stack: vec![(root, 0)],
            leaf: None,
            lo,
            hi,
            started: false,
        }
    }

    fn key_below_lo(&self, k: f64) -> bool {
        match self.lo {
            Bound::Unbounded => false,
            Bound::Included(b) => k < b,
            Bound::Excluded(b) => k <= b,
        }
    }

    fn key_above_hi(&self, k: f64) -> bool {
        match self.hi {
            Bound::Unbounded => false,
            Bound::Included(b) => k > b,
            Bound::Excluded(b) => k >= b,
        }
    }

    /// Descend to the first leaf that can contain keys ≥ lo.
    fn seek(&mut self) {
        let (mut node, _) = self.stack.pop().expect("seek on fresh iterator");
        self.stack.clear();
        loop {
            match node {
                Node::Leaf { entries } => {
                    let start = match self.lo {
                        Bound::Unbounded => 0,
                        Bound::Included(b) => entries.partition_point(|(k, _)| *k < b),
                        Bound::Excluded(b) => entries.partition_point(|(k, _)| *k <= b),
                    };
                    self.leaf = Some((entries.as_slice(), start));
                    return;
                }
                Node::Internal { keys, children, .. } => {
                    // Duplicate-aware descent: a run of keys equal to a
                    // separator may extend *left* of it (both insert
                    // splits and bulk-load chunk boundaries can land
                    // inside a run), so descend at the first separator
                    // `>=` the bound — never skip past an equal one.
                    // Landing a leaf early is fine: the iterator skips
                    // below-bound prefixes and advances across leaves.
                    let idx = match self.lo {
                        Bound::Unbounded => 0,
                        Bound::Included(b) | Bound::Excluded(b) => keys.partition_point(|k| *k < b),
                    };
                    self.stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
    }

    /// Advance to the next leaf after the current one is exhausted.
    fn next_leaf(&mut self) -> bool {
        while let Some((node, idx)) = self.stack.pop() {
            if let Node::Internal { children, .. } = node {
                if idx < children.len() {
                    self.stack.push((node, idx + 1));
                    // Descend leftmost from children[idx].
                    let mut n = &children[idx];
                    loop {
                        match n {
                            Node::Leaf { entries } => {
                                self.leaf = Some((entries.as_slice(), 0));
                                return true;
                            }
                            Node::Internal { children, .. } => {
                                self.stack.push((n, 1));
                                n = &children[0];
                            }
                        }
                    }
                }
            }
        }
        false
    }
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (f64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if !self.started {
            self.started = true;
            self.seek();
        }
        loop {
            let (entries, pos) = self.leaf?;
            if pos < entries.len() {
                let (k, v) = &entries[pos];
                if self.key_below_lo(*k) {
                    // Only possible at the start boundary (the
                    // duplicate-aware descent may land left of the
                    // bound); binary-search past the below-bound prefix
                    // instead of stepping entry by entry.
                    let lo = self.lo;
                    let skip = entries[pos..].partition_point(|(k2, _)| match lo {
                        Bound::Unbounded => false,
                        Bound::Included(b) => *k2 < b,
                        Bound::Excluded(b) => *k2 <= b,
                    });
                    self.leaf = Some((entries, pos + skip.max(1)));
                    continue;
                }
                if self.key_above_hi(*k) {
                    self.leaf = None;
                    return None;
                }
                self.leaf = Some((entries, pos + 1));
                return Some((*k, v));
            }
            if !self.next_leaf() {
                self.leaf = None;
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree_behaves() {
        let t: BPlusTree<u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn insert_and_iterate_sorted() {
        let mut t = BPlusTree::new();
        let keys = [5.0, 1.0, 3.0, 2.0, 4.0, -1.0, 0.0];
        for (i, k) in keys.iter().enumerate() {
            t.insert(*k, i);
        }
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, want);
        assert_eq!(t.min_key(), Some(-1.0));
        assert_eq!(t.max_key(), Some(5.0));
    }

    #[test]
    fn duplicates_preserved_in_insertion_order() {
        let mut t = BPlusTree::new();
        t.insert(1.0, "a");
        t.insert(1.0, "b");
        t.insert(1.0, "c");
        let vals: Vec<&str> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec!["a", "b", "c"]);
    }

    #[test]
    fn large_insert_matches_btreemap_oracle() {
        let mut t = BPlusTree::new();
        let mut oracle: Vec<(i64, usize)> = Vec::new();
        // Deterministic pseudo-random sequence.
        let mut x: u64 = 0x12345678;
        for i in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 33) as i64) - (1 << 30);
            t.insert(k as f64, i);
            oracle.push((k, i));
        }
        oracle.sort_by_key(|(k, _)| *k);
        assert_eq!(t.len(), 5000);
        assert!(t.height() > 1, "tree should have split");
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        let want: Vec<f64> = oracle.iter().map(|(k, _)| *k as f64).collect();
        assert_eq!(got, want);
    }

    fn range_oracle(entries: &[(f64, usize)], lo: Bound<f64>, hi: Bound<f64>) -> Vec<(f64, usize)> {
        let mut v: Vec<(f64, usize)> = entries
            .iter()
            .filter(|(k, _)| {
                let above = match lo {
                    Bound::Unbounded => true,
                    Bound::Included(b) => *k >= b,
                    Bound::Excluded(b) => *k > b,
                };
                let below = match hi {
                    Bound::Unbounded => true,
                    Bound::Included(b) => *k <= b,
                    Bound::Excluded(b) => *k < b,
                };
                above && below
            })
            .cloned()
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        v
    }

    #[test]
    fn range_queries_match_oracle() {
        let mut t = BPlusTree::new();
        let mut entries = Vec::new();
        let mut x: u64 = 42;
        for i in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((x >> 40) as f64) / 256.0; // many duplicates
            t.insert(k, i);
            entries.push((k, i));
        }
        let bounds = [
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(100.0), Bound::Unbounded),
            (Bound::Excluded(100.0), Bound::Included(5000.0)),
            (Bound::Included(0.0), Bound::Excluded(0.0)),
            (Bound::Excluded(-1e9), Bound::Excluded(1e9)),
            (Bound::Included(3000.0), Bound::Included(3000.0)),
        ];
        for (lo, hi) in bounds {
            let got: Vec<f64> = t.range(lo, hi).map(|(k, _)| k).collect();
            let want: Vec<f64> = range_oracle(&entries, lo, hi)
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            assert_eq!(got, want, "bounds {lo:?}..{hi:?}");
            assert_eq!(t.count_range(lo, hi), want.len());
        }
    }

    #[test]
    fn bulk_build_equals_incremental() {
        let entries: Vec<(f64, usize)> = (0..1000).map(|i| (i as f64 * 0.5, i)).collect();
        let bulk = BPlusTree::bulk_build(entries.clone());
        let mut inc = BPlusTree::new();
        for (k, v) in &entries {
            inc.insert(*k, *v);
        }
        assert_eq!(bulk.len(), inc.len());
        let a: Vec<(f64, usize)> = bulk.iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(f64, usize)> = inc.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_build_keeps_duplicate_run_spanning_chunks() {
        // The original bug: 20 copies of one key span a leaf-chunk
        // boundary, the separator equals the key, and an Included range
        // silently dropped the left chunk's copies.
        let entries: Vec<(f64, usize)> = (0..20).map(|i| (1.0, i)).collect();
        let t = BPlusTree::bulk_build(entries);
        assert_eq!(t.range(Bound::Included(1.0), Bound::Unbounded).count(), 20);
        assert_eq!(
            t.range(Bound::Included(1.0), Bound::Included(1.0)).count(),
            20
        );
        assert_eq!(
            t.count_range(Bound::Included(1.0), Bound::Included(1.0)),
            20
        );
        // Insertion order of duplicates survives the bulk load.
        let vals: Vec<usize> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, (0..20).collect::<Vec<_>>());
    }

    /// Randomized duplicate-heavy oracle: bulk-built and insert-built
    /// trees answer every range/count query identically, and both match
    /// a brute-force filter — including bounds placed exactly on
    /// duplicated keys.
    #[test]
    fn bulk_build_equals_incremental_randomized_duplicates() {
        let mut x: u64 = 0xDEC0DE;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for trial in 0..20 {
            let n = 1 + (step() % 700) as usize;
            let distinct = 1 + (step() % 12) as usize; // heavy duplication
            let mut entries: Vec<(f64, usize)> = (0..n)
                .map(|i| (((step() % distinct as u64) as f64) * 0.25 - 1.0, i))
                .collect();
            entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let bulk = BPlusTree::bulk_build(entries.clone());
            let mut inc = BPlusTree::new();
            for (k, v) in &entries {
                inc.insert(*k, *v);
            }
            assert_eq!(bulk.len(), inc.len());
            // Bounds at every distinct key plus off-key probes.
            let mut probes: Vec<f64> = entries.iter().map(|(k, _)| *k).collect();
            probes.dedup();
            probes.extend([-10.0, 10.0, 0.125]);
            for &a in &probes {
                for &b in &probes {
                    for (lo, hi) in [
                        (Bound::Included(a), Bound::Included(b)),
                        (Bound::Excluded(a), Bound::Included(b)),
                        (Bound::Included(a), Bound::Excluded(b)),
                        (Bound::Excluded(a), Bound::Excluded(b)),
                        (Bound::Unbounded, Bound::Included(b)),
                        (Bound::Included(a), Bound::Unbounded),
                    ] {
                        let want = range_oracle(&entries, lo, hi);
                        let got_bulk: Vec<(f64, usize)> =
                            bulk.range(lo, hi).map(|(k, v)| (k, *v)).collect();
                        let got_inc: Vec<(f64, usize)> =
                            inc.range(lo, hi).map(|(k, v)| (k, *v)).collect();
                        assert_eq!(got_bulk, want, "trial {trial} bulk {lo:?}..{hi:?}");
                        assert_eq!(got_inc, want, "trial {trial} inc {lo:?}..{hi:?}");
                        assert_eq!(bulk.count_range(lo, hi), want.len());
                        assert_eq!(inc.count_range(lo, hi), want.len());
                    }
                }
            }
        }
    }

    #[test]
    fn remove_respects_predicate_and_duplicate_order() {
        let mut t = BPlusTree::new();
        for i in 0..50 {
            t.insert(2.0, i);
        }
        t.insert(1.0, 100);
        t.insert(3.0, 200);
        // First duplicate matching the predicate goes, others stay.
        assert_eq!(t.remove(2.0, |v| *v % 10 == 7), Some(7));
        assert_eq!(t.remove(2.0, |v| *v % 10 == 7), Some(17));
        assert_eq!(t.remove(9.0, |_| true), None);
        assert_eq!(t.remove(2.0, |v| *v == 7), None);
        assert_eq!(t.len(), 50);
        assert_eq!(
            t.count_range(Bound::Included(2.0), Bound::Included(2.0)),
            48
        );
        let vals: Vec<i32> = t
            .range(Bound::Included(2.0), Bound::Included(2.0))
            .map(|(_, v)| *v)
            .collect();
        assert!(!vals.contains(&7) && !vals.contains(&17));
        assert_eq!(vals.len(), 48);
    }

    #[test]
    fn remove_reinsert_matches_oracle() {
        // Interleaved removes + reinserts (the SCAPE delta pattern) stay
        // consistent with a vector oracle, counts included.
        let mut t = BPlusTree::new();
        let mut oracle: Vec<(f64, usize)> = Vec::new();
        let mut x: u64 = 99;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..2000 {
            let k = (step() % 40) as f64 * 0.5;
            t.insert(k, i);
            oracle.push((k, i));
        }
        for _ in 0..1200 {
            let k = (step() % 40) as f64 * 0.5;
            let v = (step() % 2000) as usize;
            let got = t.remove(k, |x| *x == v);
            let pos = oracle.iter().position(|&(ok, ov)| ok == k && ov == v);
            assert_eq!(got, pos.map(|p| oracle.remove(p).1));
            if got.is_some() {
                // Reinsert under a fresh key half the time.
                if step() % 2 == 0 {
                    let nk = (step() % 40) as f64 * 0.5;
                    t.insert(nk, v);
                    oracle.push((nk, v));
                }
            }
            assert_eq!(t.len(), oracle.len());
        }
        let mut want: Vec<f64> = oracle.iter().map(|(k, _)| *k).collect();
        want.sort_by(f64::total_cmp);
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(got, want);
        for probe in 0..40 {
            let b = probe as f64 * 0.5;
            let want = oracle.iter().filter(|(k, _)| *k <= b).count();
            assert_eq!(t.count_range(Bound::Unbounded, Bound::Included(b)), want);
        }
    }

    #[test]
    fn counts_stay_consistent_through_splits() {
        let mut t = BPlusTree::new();
        for i in 0..10_000 {
            t.insert((i % 257) as f64, i);
            if i % 1013 == 0 {
                assert_eq!(t.count_range(Bound::Unbounded, Bound::Unbounded), t.len());
            }
        }
        assert_eq!(t.count_range(Bound::Unbounded, Bound::Unbounded), 10_000);
        assert_eq!(
            t.count_range(Bound::Included(0.0), Bound::Excluded(10.0)),
            t.range(Bound::Included(0.0), Bound::Excluded(10.0)).count()
        );
    }

    #[test]
    fn bulk_build_empty_and_single() {
        let t: BPlusTree<u8> = BPlusTree::bulk_build(vec![]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_build(vec![(1.5, 7u8)]);
        assert_eq!(
            t.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>(),
            vec![(1.5, 7)]
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_build_rejects_unsorted() {
        BPlusTree::bulk_build(vec![(2.0, 0u8), (1.0, 1u8)]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_key_rejected() {
        BPlusTree::new().insert(f64::NAN, 0u8);
    }

    #[test]
    fn negative_and_special_floats() {
        let mut t = BPlusTree::new();
        t.insert(f64::NEG_INFINITY, 0);
        t.insert(-0.0, 1);
        t.insert(0.0, 2);
        t.insert(f64::INFINITY, 3);
        let got: Vec<i32> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let finite: Vec<i32> = t
            .range(Bound::Included(-1.0), Bound::Included(1.0))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(finite, vec![1, 2]);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::new();
        for i in 0..10_000 {
            t.insert(i as f64, ());
        }
        // With ORDER=32 and 10k entries, height should be small.
        assert!(t.height() <= 4, "height {} too tall", t.height());
        // BTreeMap cross-check on ascending insert.
        let oracle: BTreeMap<i64, ()> = (0..10_000).map(|i| (i, ())).collect();
        assert_eq!(t.len(), oracle.len());
    }

    #[test]
    fn descending_insert_order_still_sorted() {
        let mut t = BPlusTree::new();
        for i in (0..3000).rev() {
            t.insert(i as f64, i);
        }
        let got: Vec<f64> = t.iter().map(|(k, _)| k).collect();
        let want: Vec<f64> = (0..3000).map(|i| i as f64).collect();
        assert_eq!(got, want);
    }
}

//! # affinity-index
//!
//! An in-memory B+ tree — the "sorted container, like a B-tree" that backs
//! every pivot node of the SCAPE index (paper Sec. 5.1).
//!
//! Design points:
//!
//! * keys are `f64` scalar projections (`ξ`); NaN keys are rejected,
//!   duplicate keys are allowed (distinct sequence pairs can share a
//!   projection value — zero-α pivots store ξ = 0 for *every* pair) and
//!   runs of equal keys may span node boundaries, so every descent is
//!   duplicate-aware;
//! * values live only in leaves; internal nodes hold copies of separator
//!   keys plus subtree entry counts, classic B+-tree style — the counts
//!   answer `count_range` in `O(log n)` without materializing a scan;
//! * the SCAPE workload is *build once, search many, patch rarely*:
//!   `insert`, ordered iteration, range scans over arbitrary
//!   [`std::ops::Bound`]s (the MET/MER binary-search step of the paper),
//!   and predicate-targeted `remove` for delta maintenance (removals
//!   don't rebalance; the delta path pairs each with a reinsertion);
//! * `bulk_build` constructs a tree from pre-sorted entries bottom-up in
//!   `O(n)` — used when the relationship set is known up front.
//!
//! ```
//! use affinity_index::BPlusTree;
//! use std::ops::Bound;
//!
//! let mut t = BPlusTree::new();
//! for (i, k) in [0.5_f64, -1.0, 2.25, 0.5].iter().enumerate() {
//!     t.insert(*k, i);
//! }
//! let hits: Vec<usize> = t
//!     .range(Bound::Included(0.0), Bound::Unbounded)
//!     .map(|(_, v)| *v)
//!     .collect();
//! assert_eq!(hits.len(), 3); // both 0.5s and 2.25
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod tree;

pub use tree::{BPlusTree, RangeIter};

//! Property tests: the B+ tree agrees with a sorted-vector oracle on
//! arbitrary insert sequences and range bounds.

use affinity_index::BPlusTree;
use proptest::prelude::*;
use std::ops::Bound;

fn bound_strategy() -> impl Strategy<Value = Bound<f64>> {
    prop_oneof![
        Just(Bound::Unbounded),
        (-1000.0f64..1000.0).prop_map(Bound::Included),
        (-1000.0f64..1000.0).prop_map(Bound::Excluded),
    ]
}

fn in_range(k: f64, lo: &Bound<f64>, hi: &Bound<f64>) -> bool {
    let above = match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => k >= *b,
        Bound::Excluded(b) => k > *b,
    };
    let below = match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => k <= *b,
        Bound::Excluded(b) => k < *b,
    };
    above && below
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_scan_matches_oracle(
        keys in proptest::collection::vec(-1000.0f64..1000.0, 0..600),
        lo in bound_strategy(),
        hi in bound_strategy(),
    ) {
        let mut tree = BPlusTree::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i);
        }
        prop_assert_eq!(tree.len(), keys.len());

        let got: Vec<f64> = tree.range(lo, hi).map(|(k, _)| k).collect();
        let mut want: Vec<f64> = keys
            .iter()
            .copied()
            .filter(|k| in_range(*k, &lo, &hi))
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn full_iteration_is_sorted_and_complete(
        keys in proptest::collection::vec(-1e6f64..1e6, 0..500),
    ) {
        let mut tree = BPlusTree::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i);
        }
        let got: Vec<f64> = tree.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(got.len(), keys.len());
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
        if !keys.is_empty() {
            let min = keys.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = keys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(tree.min_key(), Some(min));
            prop_assert_eq!(tree.max_key(), Some(max));
        }
    }

    #[test]
    fn bulk_build_matches_incremental(
        mut keys in proptest::collection::vec(-100.0f64..100.0, 0..400),
    ) {
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let entries: Vec<(f64, usize)> = keys.iter().copied().enumerate()
            .map(|(i, k)| (k, i)).collect();
        let bulk = BPlusTree::bulk_build(entries.clone());
        let mut inc = BPlusTree::new();
        for (k, v) in &entries {
            inc.insert(*k, *v);
        }
        let a: Vec<f64> = bulk.iter().map(|(k, _)| k).collect();
        let b: Vec<f64> = inc.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(a, b);
    }
}

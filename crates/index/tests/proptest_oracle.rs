//! Property tests: the B+ tree agrees with a sorted-vector oracle on
//! arbitrary insert sequences and range bounds.

use affinity_index::BPlusTree;
use proptest::prelude::*;
use std::ops::Bound;

fn bound_strategy() -> impl Strategy<Value = Bound<f64>> {
    prop_oneof![
        Just(Bound::Unbounded),
        (-1000.0f64..1000.0).prop_map(Bound::Included),
        (-1000.0f64..1000.0).prop_map(Bound::Excluded),
    ]
}

fn in_range(k: f64, lo: &Bound<f64>, hi: &Bound<f64>) -> bool {
    let above = match lo {
        Bound::Unbounded => true,
        Bound::Included(b) => k >= *b,
        Bound::Excluded(b) => k > *b,
    };
    let below = match hi {
        Bound::Unbounded => true,
        Bound::Included(b) => k <= *b,
        Bound::Excluded(b) => k < *b,
    };
    above && below
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_scan_matches_oracle(
        keys in proptest::collection::vec(-1000.0f64..1000.0, 0..600),
        lo in bound_strategy(),
        hi in bound_strategy(),
    ) {
        let mut tree = BPlusTree::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i);
        }
        prop_assert_eq!(tree.len(), keys.len());

        let got: Vec<f64> = tree.range(lo, hi).map(|(k, _)| k).collect();
        let mut want: Vec<f64> = keys
            .iter()
            .copied()
            .filter(|k| in_range(*k, &lo, &hi))
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got, want);
    }

    #[test]
    fn full_iteration_is_sorted_and_complete(
        keys in proptest::collection::vec(-1e6f64..1e6, 0..500),
    ) {
        let mut tree = BPlusTree::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i);
        }
        let got: Vec<f64> = tree.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(got.len(), keys.len());
        prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
        if !keys.is_empty() {
            let min = keys.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = keys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(tree.min_key(), Some(min));
            prop_assert_eq!(tree.max_key(), Some(max));
        }
    }

    #[test]
    fn bulk_build_matches_incremental(
        mut keys in proptest::collection::vec(-100.0f64..100.0, 0..400),
    ) {
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let entries: Vec<(f64, usize)> = keys.iter().copied().enumerate()
            .map(|(i, k)| (k, i)).collect();
        let bulk = BPlusTree::bulk_build(entries.clone());
        let mut inc = BPlusTree::new();
        for (k, v) in &entries {
            inc.insert(*k, *v);
        }
        let a: Vec<f64> = bulk.iter().map(|(k, _)| k).collect();
        let b: Vec<f64> = inc.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(a, b);
    }

    /// Duplicate-heavy keys (quantized to a handful of values, so runs
    /// routinely span leaf chunks) with bounds drawn from the same grid:
    /// bulk-built and insert-built trees must agree with the oracle on
    /// every range scan and count.
    #[test]
    fn duplicate_heavy_bulk_and_insert_match_oracle(
        raw in proptest::collection::vec(0u8..8, 1..500),
        lo_q in 0u8..10,
        hi_q in 0u8..10,
        lo_incl in 0u8..2,
        hi_incl in 0u8..2,
    ) {
        let mut entries: Vec<(f64, usize)> = raw
            .iter()
            .enumerate()
            .map(|(i, &q)| (q as f64 * 0.5 - 2.0, i))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let bulk = BPlusTree::bulk_build(entries.clone());
        let mut inc = BPlusTree::new();
        for (k, v) in &entries {
            inc.insert(*k, *v);
        }
        let lo_b = lo_q as f64 * 0.5 - 2.5;
        let hi_b = hi_q as f64 * 0.5 - 2.5;
        let lo = if lo_incl == 0 { Bound::Included(lo_b) } else { Bound::Excluded(lo_b) };
        let hi = if hi_incl == 0 { Bound::Included(hi_b) } else { Bound::Excluded(hi_b) };
        let want: Vec<(f64, usize)> = entries
            .iter()
            .filter(|(k, _)| in_range(*k, &lo, &hi))
            .cloned()
            .collect();
        let got_bulk: Vec<(f64, usize)> = bulk.range(lo, hi).map(|(k, v)| (k, *v)).collect();
        let got_inc: Vec<(f64, usize)> = inc.range(lo, hi).map(|(k, v)| (k, *v)).collect();
        prop_assert_eq!(&got_bulk, &want);
        prop_assert_eq!(&got_inc, &want);
        prop_assert_eq!(bulk.count_range(lo, hi), want.len());
        prop_assert_eq!(inc.count_range(lo, hi), want.len());
    }

    /// Removal oracle: targeted removes (by key + value predicate) take
    /// out exactly the first stored match, and counts/scans stay
    /// consistent afterwards.
    #[test]
    fn remove_matches_oracle(
        raw in proptest::collection::vec(0u8..6, 0..300),
        picks in proptest::collection::vec((0u8..6, 0usize..300), 0..80),
    ) {
        let mut tree = BPlusTree::new();
        let mut oracle: Vec<(f64, usize)> = Vec::new();
        for (i, &q) in raw.iter().enumerate() {
            let k = q as f64;
            tree.insert(k, i);
            oracle.push((k, i));
        }
        for &(q, v) in &picks {
            let k = q as f64;
            let got = tree.remove(k, |x| *x == v);
            let pos = oracle.iter().position(|&(ok, ov)| ok == k && ov == v);
            prop_assert_eq!(got, pos.map(|p| oracle.remove(p).1));
            prop_assert_eq!(tree.len(), oracle.len());
        }
        let got: Vec<f64> = tree.iter().map(|(k, _)| k).collect();
        let mut want: Vec<f64> = oracle.iter().map(|(k, _)| *k).collect();
        want.sort_by(f64::total_cmp);
        prop_assert_eq!(got, want);
        for q in 0..6 {
            let b = q as f64;
            prop_assert_eq!(
                tree.count_range(Bound::Included(b), Bound::Included(b)),
                oracle.iter().filter(|(k, _)| *k == b).count()
            );
        }
    }
}

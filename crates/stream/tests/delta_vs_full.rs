//! Delta-vs-full equivalence: after any sequence of ticks, a
//! delta-maintained model answers every MET/MER/count query identically
//! (within 1e-12; in fact bit-for-bit) to a from-scratch
//! `ScapeIndex::build` over the same model inputs — on both the sensor
//! and stock generators, with both a full-refit policy (zero tolerance)
//! and a partial-drift policy.

use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity_data::DataMatrix;
use affinity_scape::{ScapeIndex, ThresholdOp};
use affinity_stream::{DeltaPolicy, StreamingConfig, StreamingEngine};

fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
    v.sort();
    v
}

/// Compare the live (delta-maintained) index against a from-scratch
/// rebuild over the model's own `(data, affine)` inputs.
fn assert_equivalent(eng: &StreamingEngine, ctx: &str) {
    let model = eng.model().expect("model");
    let rebuilt = ScapeIndex::build(model.data(), model.affine(), &Measure::ALL).expect("rebuild");
    let live = model.index();
    for measure in [
        PairwiseMeasure::Covariance,
        PairwiseMeasure::DotProduct,
        PairwiseMeasure::Correlation,
    ] {
        for tau in [-0.5, -0.01, 0.0, 0.1, 0.9, 10.0] {
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let a = sorted(live.threshold_pairs(measure, op, tau).unwrap());
                let b = sorted(rebuilt.threshold_pairs(measure, op, tau).unwrap());
                assert_eq!(a, b, "{ctx}: MET {} tau {tau} {op:?}", measure.name());
                assert_eq!(
                    live.count_threshold_pairs(measure, op, tau).unwrap(),
                    b.len(),
                    "{ctx}: count MET {} tau {tau} {op:?}",
                    measure.name()
                );
            }
        }
        for (lo, hi) in [(-1.0, 1.0), (0.0, 0.5), (-0.2, 0.01)] {
            let a = sorted(live.range_pairs(measure, lo, hi).unwrap());
            let b = sorted(rebuilt.range_pairs(measure, lo, hi).unwrap());
            assert_eq!(a, b, "{ctx}: MER {} ({lo}, {hi})", measure.name());
            assert_eq!(
                live.count_range_pairs(measure, lo, hi).unwrap(),
                b.len(),
                "{ctx}: count MER {} ({lo}, {hi})",
                measure.name()
            );
        }
    }
    for measure in LocationMeasure::ALL {
        for tau in [-1e6, 0.0, 15.0, 1e6] {
            for op in [ThresholdOp::Greater, ThresholdOp::Less] {
                let a = sorted(live.threshold_series(measure, op, tau).unwrap());
                let b = sorted(rebuilt.threshold_series(measure, op, tau).unwrap());
                assert_eq!(a, b, "{ctx}: MET {} tau {tau} {op:?}", measure.name());
                assert_eq!(
                    live.count_threshold_series(measure, op, tau).unwrap(),
                    b.len()
                );
            }
        }
        let a = sorted(live.range_series(measure, -100.0, 100.0).unwrap());
        let b = sorted(rebuilt.range_series(measure, -100.0, 100.0).unwrap());
        assert_eq!(a, b, "{ctx}: MER {}", measure.name());
    }
}

fn drive(data: &DataMatrix, policy: DeltaPolicy, ctx: &str) -> StreamingEngine {
    let n = data.series_count();
    let mut cfg = StreamingConfig::new(24);
    cfg.refresh_every = 6;
    cfg.delta = Some(policy);
    let mut eng = StreamingEngine::new(n, cfg);
    let mut checks = 0;
    for t in 0..data.samples() {
        let tick: Vec<f64> = (0..n).map(|v| data.series(v)[t]).collect();
        if eng.push(&tick).unwrap() && eng.refreshes().is_multiple_of(3) {
            assert_equivalent(&eng, ctx);
            checks += 1;
        }
    }
    assert_equivalent(&eng, ctx);
    assert!(checks > 0, "{ctx}: no refreshes were checked");
    eng
}

#[test]
fn delta_matches_full_rebuild_sensor() {
    let data = sensor_dataset(&SensorConfig::reduced(10, 140));
    // Zero tolerance: every series counts as drifted on every due
    // refresh, the whole relationship set is re-fitted through the
    // delta path each time.
    let eng = drive(
        &data,
        DeltaPolicy {
            drift_tolerance: 0.0,
            max_drift_fraction: 1.1,
            full_every: u64::MAX,
        },
        "sensor full-refit",
    );
    assert!(eng.delta_refreshes() > 0);
    assert_eq!(eng.full_rebuilds(), 1, "only the warm-up build is full");

    // Moderate tolerance: a subset of series drifts, partial re-fits.
    let eng = drive(
        &data,
        DeltaPolicy {
            drift_tolerance: 0.02,
            max_drift_fraction: 0.6,
            ..DeltaPolicy::default()
        },
        "sensor partial",
    );
    assert!(eng.refreshes() > 1);
}

#[test]
fn delta_matches_full_rebuild_stock() {
    let data = stock_dataset(&StockConfig::reduced(9, 140));
    let eng = drive(
        &data,
        DeltaPolicy {
            drift_tolerance: 0.0,
            max_drift_fraction: 1.1,
            full_every: u64::MAX,
        },
        "stock full-refit",
    );
    assert!(eng.delta_refreshes() > 0);

    let eng = drive(
        &data,
        DeltaPolicy {
            drift_tolerance: 0.05,
            max_drift_fraction: 0.5,
            ..DeltaPolicy::default()
        },
        "stock partial",
    );
    // Stock windows drift; both kinds of refresh should appear over a
    // long run, and equivalence must hold across the alternation.
    assert!(eng.refreshes() > 1);
}

#[test]
fn delta_disabled_rebuilds_every_refresh() {
    let data = sensor_dataset(&SensorConfig::reduced(8, 60));
    let n = data.series_count();
    let mut cfg = StreamingConfig::new(16);
    cfg.refresh_every = 8;
    cfg.delta = None;
    let mut eng = StreamingEngine::new(n, cfg);
    for t in 0..data.samples() {
        let tick: Vec<f64> = (0..n).map(|v| data.series(v)[t]).collect();
        eng.push(&tick).unwrap();
    }
    assert_eq!(eng.delta_refreshes(), 0);
    assert_eq!(eng.full_rebuilds(), eng.refreshes());
}

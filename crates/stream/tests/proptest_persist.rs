//! Properties of the snapshot + journal recovery path, over randomized
//! engine shapes and tick streams:
//!
//! * **Replay = direct application.** An engine that persists, then
//!   runs a random number of journaled delta refreshes, recovers —
//!   via both [`StreamingEngine::resume`] and the read-only
//!   [`open_model`] — to the *same model the live engine holds*,
//!   bit-for-bit: replaying the journal is equivalent to having
//!   applied each delta directly.
//! * **Resume is idempotent.** Recovering twice from the same
//!   directory yields byte-identical models and a clean second report.
//!
//! Tick streams are generated deterministically from a proptest-drawn
//! seed (splitmix-style), so failures shrink and reproduce.

use affinity_core::measures::PairwiseMeasure;
use affinity_scape::ThresholdOp;
use affinity_stream::{open_model, Model, StreamingConfig, StreamingEngine};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "affinity-proptest-persist-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn tick(n: usize, rng: &mut u64) -> Vec<f64> {
    (0..n)
        .map(|v| {
            let r = splitmix(rng);
            // Smooth-ish per-series level + bounded noise in [0, 1).
            10.0 + v as f64 + (r >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn cfg(window: usize, refresh_every: u64) -> StreamingConfig {
    let mut c = StreamingConfig::new(window);
    c.refresh_every = refresh_every;
    if let Some(d) = c.delta.as_mut() {
        d.drift_tolerance = 1e-9; // every refresh drifts ⇒ journaled deltas
        d.max_drift_fraction = 1.0;
        d.full_every = 1000; // keep the run on the journal, no checkpoints
    }
    c
}

fn assert_models_bit_equal(a: &Model, b: &Model) {
    assert_eq!(a.built_at, b.built_at);
    assert_eq!(a.full_built_at, b.full_built_at);
    assert_eq!(
        a.affine().to_bytes(),
        b.affine().to_bytes(),
        "affine sets diverge"
    );
    assert_eq!(
        a.index().to_bytes(),
        b.index().to_bytes(),
        "indexes diverge"
    );
    for v in 0..a.data().series_count() {
        for (x, y) in a.data().series(v).iter().zip(b.data().series(v)) {
            assert_eq!(x.to_bits(), y.to_bits(), "reference data diverges");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn journal_replay_equals_direct_application(
        n in 4usize..9,
        window in 12usize..24,
        refresh_every in 3u64..7,
        extra_ticks in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let dir = tmp_dir(&format!("replay-{n}-{window}-{refresh_every}-{extra_ticks}-{seed}"));
        let mut rng = seed;
        let mut live = StreamingEngine::new(n, cfg(window, refresh_every));
        for _ in 0..window {
            live.push(&tick(n, &mut rng)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        let journaled_from = live.delta_refreshes();

        // A random number of post-snapshot ticks ⇒ a random-length
        // journaled delta sequence (possibly empty).
        for _ in 0..extra_ticks {
            live.push(&tick(n, &mut rng)).unwrap();
        }
        let journaled = live.delta_refreshes() - journaled_from;

        // Crash (drop) and recover: the recovered model must equal the
        // live one — every applied delta was durable before it ran.
        let live_model = live.model().unwrap();
        let (resumed, report) = StreamingEngine::resume(cfg(window, refresh_every), &dir).unwrap();
        prop_assert_eq!(report.replayed_records as u64, journaled);
        prop_assert_eq!(report.torn_bytes_dropped, 0);
        assert_models_bit_equal(live_model, resumed.model().unwrap());

        // The read-only open agrees with the resumed engine, and both
        // answer index queries exactly like the live engine.
        let (opened, report2) = open_model(&dir).unwrap();
        prop_assert_eq!(report2.replayed_records as u64, journaled);
        prop_assert_eq!(opened.index.to_bytes(), live_model.index().to_bytes());
        let q = |m: &Model| {
            m.index()
                .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.2)
                .unwrap()
        };
        prop_assert_eq!(q(live_model), q(resumed.model().unwrap()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_is_idempotent(
        n in 4usize..8,
        extra_ticks in 0usize..24,
        seed in 0u64..1_000_000,
    ) {
        let dir = tmp_dir(&format!("idem-{n}-{extra_ticks}-{seed}"));
        let mut rng = seed;
        let mut live = StreamingEngine::new(n, cfg(16, 4));
        for _ in 0..16 {
            live.push(&tick(n, &mut rng)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        for _ in 0..extra_ticks {
            live.push(&tick(n, &mut rng)).unwrap();
        }
        drop(live);
        let (a, ra) = StreamingEngine::resume(cfg(16, 4), &dir).unwrap();
        let (b, rb) = StreamingEngine::resume(cfg(16, 4), &dir).unwrap();
        prop_assert_eq!(ra.replayed_records, rb.replayed_records);
        prop_assert_eq!(rb.torn_bytes_dropped, 0);
        prop_assert!(!rb.stale_journal_discarded);
        assert_models_bit_equal(a.model().unwrap(), b.model().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

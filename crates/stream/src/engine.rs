//! The streaming engine: ingestion + periodic model refresh.
//!
//! AFFINITY's relationships are computed once and amortized over many
//! queries (paper Sec. 3: "the affine transformations need to be computed
//! only once"). In a streaming setting the window drifts, so the model
//! (clusters → relationships → SCAPE index) is refreshed every
//! `refresh_every` ticks; between refreshes the rolling statistics stay
//! exact tick by tick and queries run against the last snapshot.

use crate::rolling::RollingStats;
use crate::window::SlidingWindow;
use affinity_core::error::CoreError;
use affinity_core::measures::Measure;
use affinity_core::mec::MecEngine;
use affinity_core::symex::{AffineSet, Symex, SymexParams};
use affinity_data::DataMatrix;
use affinity_par::ThreadPool;
use affinity_scape::ScapeIndex;
use std::sync::Arc;

/// Streaming configuration.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Window width `m`.
    pub window: usize,
    /// Refresh the model every this many ticks (after warm-up).
    pub refresh_every: u64,
    /// SYMEX parameters for each refresh.
    pub symex: SymexParams,
    /// Measures to index at each refresh.
    pub indexed: Vec<Measure>,
}

impl StreamingConfig {
    /// A sensible default: window of `m`, refresh every `m/2` ticks, the
    /// paper's six measures indexed.
    pub fn new(window: usize) -> Self {
        StreamingConfig {
            window,
            refresh_every: (window as u64 / 2).max(1),
            symex: SymexParams::default(),
            indexed: Measure::ALL.to_vec(),
        }
    }
}

/// A refreshed model snapshot: the window contents at refresh time, the
/// affine relationships over them, and the SCAPE index.
///
/// MET/MER queries can go straight to [`Model::index`]; MEC batches
/// construct a [`MecEngine`] via [`Model::mec_engine`] (one `O(n·k·m)`
/// pre-processing pass, amortize it over a batch).
#[derive(Debug)]
pub struct Model {
    data: DataMatrix,
    affine: AffineSet,
    index: ScapeIndex,
    /// The streaming engine's shared worker pool, so per-snapshot MEC
    /// engines reuse one set of lanes.
    pool: Arc<ThreadPool>,
    /// Tick count at which this model was built.
    pub built_at: u64,
}

impl Model {
    /// The window snapshot the model was built from.
    pub fn data(&self) -> &DataMatrix {
        &self.data
    }

    /// The affine relationships.
    pub fn affine(&self) -> &AffineSet {
        &self.affine
    }

    /// The SCAPE index for MET/MER queries.
    pub fn index(&self) -> &ScapeIndex {
        &self.index
    }

    /// Build a MEC engine over this snapshot, sharing the streaming
    /// engine's worker pool.
    pub fn mec_engine(&self) -> MecEngine<'_> {
        MecEngine::with_pool(&self.data, &self.affine, Arc::clone(&self.pool))
    }
}

/// Streaming ingestion with periodic model refresh.
#[derive(Debug)]
pub struct StreamingEngine {
    cfg: StreamingConfig,
    window: SlidingWindow,
    rolling: RollingStats,
    model: Option<Model>,
    /// One worker pool for the engine's lifetime, shared by every
    /// refresh's SYMEX run and every snapshot's MEC engine.
    pool: Arc<ThreadPool>,
    ticks_at_last_refresh: u64,
    refreshes: u64,
}

impl StreamingEngine {
    /// Create an engine for `series` series.
    ///
    /// # Panics
    /// Panics if `series` or the configured window is zero.
    pub fn new(series: usize, cfg: StreamingConfig) -> Self {
        let window = SlidingWindow::new(series, cfg.window);
        let rolling = RollingStats::new(series, cfg.window);
        let pool = Arc::new(ThreadPool::new(cfg.symex.threads));
        StreamingEngine {
            cfg,
            window,
            rolling,
            model: None,
            pool,
            ticks_at_last_refresh: 0,
            refreshes: 0,
        }
    }

    /// Ingest one tick (one sample per series). Returns `true` if the
    /// model was refreshed as a result.
    ///
    /// # Errors
    /// Propagates clustering/relationship errors from a refresh attempt.
    ///
    /// # Panics
    /// Panics on tick arity mismatch.
    pub fn push(&mut self, tick: &[f64]) -> Result<bool, CoreError> {
        self.rolling.on_tick(&self.window, tick);
        self.window.push(tick);
        if !self.window.is_warm() {
            return Ok(false);
        }
        let due = match self.model {
            None => true,
            Some(_) => self.window.ticks() - self.ticks_at_last_refresh >= self.cfg.refresh_every,
        };
        if due {
            self.refresh()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Force a model refresh from the current window.
    ///
    /// # Errors
    /// Propagates clustering/relationship errors.
    ///
    /// # Panics
    /// Panics if the window is not warm yet.
    pub fn refresh(&mut self) -> Result<(), CoreError> {
        assert!(self.window.is_warm(), "cannot refresh before warm-up");
        let data = self.window.snapshot();
        let mut params = self.cfg.symex.clone();
        // Clamp k to the series count (small deployments).
        params.afclst.k = params
            .afclst
            .k
            .min(data.series_count().saturating_sub(1))
            .max(1);
        let affine = Symex::with_pool(params, Arc::clone(&self.pool)).run(&data)?;
        let index = ScapeIndex::build(&data, &affine, &self.cfg.indexed);
        self.model = Some(Model {
            data,
            affine,
            index,
            pool: Arc::clone(&self.pool),
            built_at: self.window.ticks(),
        });
        self.ticks_at_last_refresh = self.window.ticks();
        self.refreshes += 1;
        Ok(())
    }

    /// The current model snapshot, if the warm-up has completed.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Live (per-tick exact) rolling statistics.
    pub fn rolling(&self) -> &RollingStats {
        &self.rolling
    }

    /// The live window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Number of model refreshes so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Ticks since the current model was built (staleness metric).
    pub fn model_age(&self) -> Option<u64> {
        self.model
            .as_ref()
            .map(|m| self.window.ticks() - m.built_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::measures::PairwiseMeasure;
    use affinity_scape::ThresholdOp;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tick_source(n: usize, seed: u64) -> impl FnMut() -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0usize;
        move || {
            t += 1;
            (0..n)
                .map(|v| {
                    let base = ((t as f64) * 0.12 + v as f64).sin();
                    base * (1.0 + v as f64 * 0.2) + 10.0 + rng.gen_range(-0.05..0.05)
                })
                .collect()
        }
    }

    #[test]
    fn warms_up_then_refreshes_on_schedule() {
        let n = 8;
        let mut cfg = StreamingConfig::new(32);
        cfg.refresh_every = 16;
        let mut eng = StreamingEngine::new(n, cfg);
        let mut next = tick_source(n, 1);
        let mut refreshed_at = Vec::new();
        for i in 1..=96u64 {
            if eng.push(&next()).unwrap() {
                refreshed_at.push(i);
            }
        }
        // First refresh at warm-up (tick 32), then every 16 ticks.
        assert_eq!(refreshed_at[0], 32);
        assert!(refreshed_at.windows(2).all(|w| w[1] - w[0] == 16));
        assert_eq!(eng.refreshes() as usize, refreshed_at.len());
        assert!(eng.model_age().unwrap() < 16);
    }

    #[test]
    fn model_answers_queries_on_window_data() {
        let n = 10;
        let mut eng = StreamingEngine::new(n, StreamingConfig::new(48));
        let mut next = tick_source(n, 2);
        for _ in 0..60 {
            eng.push(&next()).unwrap();
        }
        let model = eng.model().expect("model after warm-up");
        assert_eq!(model.data().series_count(), n);
        assert_eq!(model.data().samples(), 48);
        let hot = model
            .index()
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.5)
            .unwrap();
        // Shared sinusoid phase: plenty of correlated pairs.
        assert!(!hot.is_empty());
        // MEC through a fresh engine over the snapshot.
        let engine = model.mec_engine();
        let rho = engine
            .pairwise(PairwiseMeasure::Correlation, &[0, 1, 2])
            .unwrap();
        assert_eq!(rho.rows(), 3);
    }

    #[test]
    fn rolling_stats_track_window_exactly_between_refreshes() {
        let n = 4;
        let mut eng = StreamingEngine::new(n, StreamingConfig::new(24));
        let mut next = tick_source(n, 3);
        for _ in 0..100 {
            eng.push(&next()).unwrap();
        }
        for v in 0..n {
            let s = eng.window().series(v);
            let exact = affinity_linalg::vector::variance(s);
            assert!(
                (eng.rolling().variance(v) - exact).abs() < 1e-9,
                "series {v}"
            );
        }
    }

    #[test]
    fn model_is_stale_until_refresh_and_updates_after() {
        let n = 6;
        let mut cfg = StreamingConfig::new(16);
        cfg.refresh_every = 1000; // effectively never
        let mut eng = StreamingEngine::new(n, cfg);
        let mut next = tick_source(n, 4);
        for _ in 0..40 {
            eng.push(&next()).unwrap();
        }
        let built = eng.model().unwrap().built_at;
        assert_eq!(built, 16, "built at warm-up");
        assert_eq!(eng.model_age(), Some(40 - 16));
        eng.refresh().unwrap();
        assert_eq!(eng.model_age(), Some(0));
        assert_eq!(eng.refreshes(), 2);
    }

    #[test]
    fn small_deployments_clamp_k() {
        // 3 series with default k = 6 must not error.
        let mut eng = StreamingEngine::new(3, StreamingConfig::new(8));
        let mut next = tick_source(3, 5);
        for _ in 0..12 {
            eng.push(&next()).unwrap();
        }
        assert!(eng.model().is_some());
    }
}

//! The streaming engine: ingestion + periodic model refresh.
//!
//! AFFINITY's relationships are computed once and amortized over many
//! queries (paper Sec. 3: "the affine transformations need to be computed
//! only once"). In a streaming setting the window drifts, so the model
//! (clusters → relationships → SCAPE index) is refreshed every
//! `refresh_every` ticks; between refreshes the rolling statistics stay
//! exact tick by tick and queries run against the last snapshot.
//!
//! With a [`DeltaPolicy`] configured (the default), a due refresh first
//! checks the exact rolling statistics against the reference snapshot of
//! the last *full* rebuild. Series whose mean/variance stayed within the
//! drift tolerance keep their relationships; drifted series get their
//! relationships **re-fitted against the retained pivots** (one cached
//! pseudo-inverse per touched pivot) and the SCAPE index is patched in
//! place via [`ScapeIndex::apply_delta`] — clustering, pivot selection,
//! and the untouched fits are never re-paid. Only when too many series
//! drift does the engine fall back to a full AFCLST + SYMEX rebuild.

use crate::persist::Persistence;
use crate::rolling::RollingStats;
use crate::window::SlidingWindow;
use affinity_core::affine::{
    fit_series, solve_relationship_pinv, AffineRelationship, PivotPair, SeriesRelationship,
};
use affinity_core::error::CoreError;
use affinity_core::hash::FxHashMap;
use affinity_core::measures::Measure;
use affinity_core::mec::MecEngine;
use affinity_core::symex::{pivot_pseudo_inverse, AffineSet, Symex, SymexParams};
use affinity_data::{DataMatrix, SeriesId, SeriesSource};
use affinity_linalg::{vector, Matrix};
use affinity_par::ThreadPool;
use affinity_scape::{PairDelta, ScapeDelta, ScapeIndex, SeriesDelta};
use std::fmt;
use std::sync::Arc;

/// Errors raised by streaming ingestion and refresh.
#[derive(Debug)]
pub enum StreamError {
    /// Clustering / relationship computation failed.
    Core(CoreError),
    /// Index construction or delta application failed.
    Scape(affinity_scape::ScapeError),
    /// A column fetch failed while warm-starting from a
    /// [`SeriesSource`].
    Source(affinity_data::SourceError),
    /// Snapshot/journal I/O or validation failed (atomic-commit
    /// protocol, CRC framing, injected faults).
    Persist(affinity_storage::PersistError),
    /// Persisted model bytes failed structural decoding.
    Decode(affinity_core::persist::DecodeError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Core(e) => write!(f, "model refresh failed: {e}"),
            StreamError::Scape(e) => write!(f, "index maintenance failed: {e}"),
            StreamError::Source(e) => write!(f, "warm-start fetch failed: {e}"),
            StreamError::Persist(e) => write!(f, "persistence failed: {e}"),
            StreamError::Decode(e) => write!(f, "persisted model corrupt: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            StreamError::Scape(e) => Some(e),
            StreamError::Source(e) => Some(e),
            StreamError::Persist(e) => Some(e),
            StreamError::Decode(e) => Some(e),
        }
    }
}

impl From<affinity_data::SourceError> for StreamError {
    fn from(e: affinity_data::SourceError) -> Self {
        StreamError::Source(e)
    }
}

impl From<CoreError> for StreamError {
    fn from(e: CoreError) -> Self {
        StreamError::Core(e)
    }
}

impl From<affinity_scape::ScapeError> for StreamError {
    fn from(e: affinity_scape::ScapeError) -> Self {
        StreamError::Scape(e)
    }
}

impl From<affinity_storage::PersistError> for StreamError {
    fn from(e: affinity_storage::PersistError) -> Self {
        StreamError::Persist(e)
    }
}

impl From<affinity_core::persist::DecodeError> for StreamError {
    fn from(e: affinity_core::persist::DecodeError) -> Self {
        StreamError::Decode(e)
    }
}

/// When to patch the model instead of rebuilding it from scratch.
#[derive(Debug, Clone)]
pub struct DeltaPolicy {
    /// A series counts as drifted when its in-window mean moved by more
    /// than `drift_tolerance` standard deviations (of the reference
    /// window), or its variance changed by more than that relative
    /// fraction.
    pub drift_tolerance: f64,
    /// Fall back to a full AFCLST + SYMEX rebuild when more than this
    /// fraction of series drifted — the retained clustering (pivot
    /// membership / fit quality) is assumed decayed at that point.
    pub max_drift_fraction: f64,
    /// Force a full rebuild once this many consecutive delta refreshes
    /// have run since the last full one. Marginal statistics cannot see
    /// *pairwise*-structure drift (two series can keep their means and
    /// variances while their relative phase — and correlation — swings),
    /// so delta maintenance alone could serve stale answers forever;
    /// this caps that staleness. `0` disables the delta path entirely.
    pub full_every: u64,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        DeltaPolicy {
            drift_tolerance: 0.05,
            max_drift_fraction: 0.25,
            full_every: 8,
        }
    }
}

/// What a policy-driven refresh actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshKind {
    /// Full AFCLST + SYMEX rebuild and a fresh index.
    Full,
    /// Delta maintenance against retained pivots.
    Delta {
        /// Series whose statistics left the tolerance band.
        drifted_series: usize,
        /// Pairwise relationships re-fitted (pairs touching a drifted
        /// series).
        refit_pairs: usize,
    },
}

/// Streaming configuration.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Window width `m`.
    pub window: usize,
    /// Refresh the model every this many ticks (after warm-up).
    pub refresh_every: u64,
    /// SYMEX parameters for each refresh.
    pub symex: SymexParams,
    /// Measures to index at each refresh.
    pub indexed: Vec<Measure>,
    /// Delta-refresh policy; `None` rebuilds from scratch on every due
    /// refresh (the pre-delta behavior).
    pub delta: Option<DeltaPolicy>,
}

impl StreamingConfig {
    /// A sensible default: window of `m`, refresh every `m/2` ticks, the
    /// paper's six measures indexed, delta maintenance on.
    pub fn new(window: usize) -> Self {
        StreamingConfig {
            window,
            refresh_every: (window as u64 / 2).max(1),
            symex: SymexParams::default(),
            indexed: Measure::ALL.to_vec(),
            delta: Some(DeltaPolicy::default()),
        }
    }
}

/// A refreshed model snapshot: the reference window contents (captured
/// at the last **full** rebuild), the affine relationships over them —
/// possibly delta-patched since — and the SCAPE index, kept in exact
/// sync with the relationships.
///
/// MET/MER queries can go straight to [`Model::index`]; MEC batches
/// construct a [`MecEngine`] via [`Model::mec_engine`] (one `O(n·k·m)`
/// pre-processing pass, amortize it over a batch).
#[derive(Debug)]
pub struct Model {
    pub(crate) data: DataMatrix,
    pub(crate) affine: AffineSet,
    pub(crate) index: ScapeIndex,
    /// The streaming engine's shared worker pool, so per-snapshot MEC
    /// engines reuse one set of lanes.
    pub(crate) pool: Arc<ThreadPool>,
    /// Per-series reference statistics of `data`, the drift baseline.
    pub(crate) ref_means: Vec<f64>,
    pub(crate) ref_vars: Vec<f64>,
    /// Tick count of the last refresh of any kind (full or delta).
    pub built_at: u64,
    /// Tick count of the last full rebuild (reference snapshot age).
    pub full_built_at: u64,
}

impl Model {
    /// The reference window snapshot (captured at the last full
    /// rebuild; delta refreshes re-fit relationships but keep this
    /// anchor, so pivot statistics and the index stay consistent).
    pub fn data(&self) -> &DataMatrix {
        &self.data
    }

    /// The affine relationships (delta-patched in place between full
    /// rebuilds).
    pub fn affine(&self) -> &AffineSet {
        &self.affine
    }

    /// The SCAPE index for MET/MER queries.
    pub fn index(&self) -> &ScapeIndex {
        &self.index
    }

    /// Build a MEC engine over this snapshot, sharing the streaming
    /// engine's worker pool.
    pub fn mec_engine(&self) -> MecEngine<'_> {
        MecEngine::with_pool(&self.data, &self.affine, Arc::clone(&self.pool))
    }

    /// Assemble a model from restored parts, recomputing the derived
    /// drift baseline from `data` (bit-identical to the original: the
    /// same bytes feed the same expressions).
    pub(crate) fn assemble(
        data: DataMatrix,
        affine: AffineSet,
        index: ScapeIndex,
        pool: Arc<ThreadPool>,
        built_at: u64,
        full_built_at: u64,
    ) -> Model {
        let n = data.series_count();
        let ref_means = (0..n).map(|v| vector::mean(data.series(v))).collect();
        let ref_vars = (0..n).map(|v| vector::variance(data.series(v))).collect();
        Model {
            data,
            affine,
            index,
            pool,
            ref_means,
            ref_vars,
            built_at,
            full_built_at,
        }
    }
}

/// Streaming ingestion with periodic model refresh.
#[derive(Debug)]
pub struct StreamingEngine {
    pub(crate) cfg: StreamingConfig,
    pub(crate) window: SlidingWindow,
    pub(crate) rolling: RollingStats,
    pub(crate) model: Option<Model>,
    /// One worker pool for the engine's lifetime, shared by every
    /// refresh's SYMEX run and every snapshot's MEC engine.
    pub(crate) pool: Arc<ThreadPool>,
    pub(crate) ticks_at_last_refresh: u64,
    pub(crate) refreshes: u64,
    pub(crate) full_rebuilds: u64,
    pub(crate) delta_refreshes: u64,
    pub(crate) deltas_since_full: u64,
    /// Crash-safe persistence, armed by
    /// [`StreamingEngine::persist_to`]: every delta refresh is
    /// journaled *before* it is applied, every full rebuild writes a
    /// fresh snapshot.
    pub(crate) persistence: Option<Persistence>,
}

impl StreamingEngine {
    /// Create an engine for `series` series.
    ///
    /// # Panics
    /// Panics if `series` or the configured window is zero.
    pub fn new(series: usize, cfg: StreamingConfig) -> Self {
        let window = SlidingWindow::new(series, cfg.window);
        let rolling = RollingStats::new(series, cfg.window);
        let pool = Arc::new(ThreadPool::new(cfg.symex.threads));
        StreamingEngine {
            cfg,
            window,
            rolling,
            model: None,
            pool,
            ticks_at_last_refresh: 0,
            refreshes: 0,
            full_rebuilds: 0,
            delta_refreshes: 0,
            deltas_since_full: 0,
            persistence: None,
        }
    }

    /// Boot an engine from the trailing `cfg.window` samples of any
    /// [`SeriesSource`] — e.g. an on-disk `MatrixStore` holding more
    /// history than fits in memory. Columns are fetched one at a time
    /// (only the window itself is materialized), the rolling statistics
    /// are recomputed exactly, and a full model (AFCLST + SYMEX + SCAPE
    /// index) is built immediately, so [`StreamingEngine::model`] is
    /// `Some` on return and live ticks can be pushed from there.
    ///
    /// The resulting model is bit-for-bit the model a resident engine
    /// would build after ingesting the same trailing window tick by
    /// tick.
    ///
    /// # Errors
    /// Propagates fetch failures and model-construction errors.
    pub fn from_source<S: SeriesSource + ?Sized>(
        cfg: StreamingConfig,
        source: &S,
    ) -> Result<Self, StreamError> {
        let window = SlidingWindow::warm_from_source(cfg.window, source)?;
        let rolling = RollingStats::from_window(&window);
        let pool = Arc::new(ThreadPool::new(cfg.symex.threads));
        let mut engine = StreamingEngine {
            cfg,
            window,
            rolling,
            model: None,
            pool,
            ticks_at_last_refresh: 0,
            refreshes: 0,
            full_rebuilds: 0,
            delta_refreshes: 0,
            deltas_since_full: 0,
            persistence: None,
        };
        engine.refresh()?;
        Ok(engine)
    }

    /// Ingest one tick (one sample per series). Returns `true` if the
    /// model was refreshed as a result (fully rebuilt or delta-patched,
    /// per the configured [`DeltaPolicy`]).
    ///
    /// # Errors
    /// Propagates clustering/relationship/index errors from a refresh
    /// attempt.
    ///
    /// # Panics
    /// Panics on tick arity mismatch.
    pub fn push(&mut self, tick: &[f64]) -> Result<bool, StreamError> {
        self.rolling.on_tick(&self.window, tick);
        self.window.push(tick);
        if !self.window.is_warm() {
            return Ok(false);
        }
        let due = match self.model {
            None => true,
            // Saturating: a resumed engine's last-refresh tick can sit
            // ahead of the restored window (journaled refreshes outlive
            // unpersisted ticks).
            Some(_) => {
                self.window
                    .ticks()
                    .saturating_sub(self.ticks_at_last_refresh)
                    >= self.cfg.refresh_every
            }
        };
        if due {
            self.refresh_auto()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Refresh the model per the configured policy: delta-patch against
    /// retained pivots when drift is within tolerance, full rebuild
    /// otherwise (or when no [`DeltaPolicy`] / no model exists yet).
    ///
    /// # Errors
    /// Propagates clustering/relationship/index errors.
    ///
    /// # Panics
    /// Panics if the window is not warm yet.
    pub fn refresh_auto(&mut self) -> Result<RefreshKind, StreamError> {
        if let (Some(_), Some(policy)) = (&self.model, &self.cfg.delta) {
            let policy = policy.clone();
            if self.deltas_since_full < policy.full_every {
                let drifted = self.drifted_series(&policy);
                let n = self.window.series_count();
                if (drifted.len() as f64) <= policy.max_drift_fraction * n as f64 {
                    match self.refresh_delta(&drifted) {
                        Ok(refit_pairs) => {
                            return Ok(RefreshKind::Delta {
                                drifted_series: drifted.len(),
                                refit_pairs,
                            });
                        }
                        // A failed patch can leave affine set and index
                        // desynced; a full rebuild re-derives both, so
                        // recover instead of wedging every future
                        // refresh on the same mismatch.
                        Err(StreamError::Scape(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        self.refresh()?;
        Ok(RefreshKind::Full)
    }

    /// Force a full model rebuild from the current window: AFCLST +
    /// SYMEX, a freshly bulk-loaded SCAPE index, and a new drift
    /// reference snapshot.
    ///
    /// # Errors
    /// Propagates clustering/relationship/index errors.
    ///
    /// # Panics
    /// Panics if the window is not warm yet.
    pub fn refresh(&mut self) -> Result<(), StreamError> {
        assert!(self.window.is_warm(), "cannot refresh before warm-up");
        let data = self.window.snapshot();
        let mut params = self.cfg.symex.clone();
        // Clamp k to the series count (small deployments).
        params.afclst.k = params
            .afclst
            .k
            .min(data.series_count().saturating_sub(1))
            .max(1);
        let affine = Symex::with_pool(params, Arc::clone(&self.pool)).run(&data)?;
        let index = ScapeIndex::build_with_pool(&data, &affine, &self.cfg.indexed, &self.pool)?;
        let n = data.series_count();
        let ref_means = (0..n).map(|v| vector::mean(data.series(v))).collect();
        let ref_vars = (0..n).map(|v| vector::variance(data.series(v))).collect();
        self.model = Some(Model {
            data,
            affine,
            index,
            pool: Arc::clone(&self.pool),
            ref_means,
            ref_vars,
            built_at: self.window.ticks(),
            full_built_at: self.window.ticks(),
        });
        self.ticks_at_last_refresh = self.window.ticks();
        self.refreshes += 1;
        self.full_rebuilds += 1;
        self.deltas_since_full = 0;
        // A full rebuild obsoletes the journal: checkpoint the new
        // model and bind a fresh journal to it. On failure the
        // in-memory model is already rebuilt; resume falls back to the
        // previous snapshot + journal (the pre-rebuild state).
        if self.persistence.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Series whose exact rolling statistics left the policy's tolerance
    /// band relative to the model's reference snapshot.
    fn drifted_series(&self, policy: &DeltaPolicy) -> Vec<SeriesId> {
        let model = self.model.as_ref().expect("drift check requires a model");
        (0..self.window.series_count())
            .filter(|&v| {
                let mean0 = model.ref_means[v];
                let var0 = model.ref_vars[v];
                let sd0 = var0.sqrt().max(1e-12);
                let mean_shift = (self.rolling.mean(v) - mean0).abs() / sd0;
                let var_shift = (self.rolling.variance(v) - var0).abs() / var0.max(1e-12);
                mean_shift > policy.drift_tolerance || var_shift > policy.drift_tolerance
            })
            .collect()
    }

    /// Delta refresh: re-fit the relationships of `drifted` series
    /// against the retained pivots (one cached pseudo-inverse per
    /// touched pivot, solved over the **current** window) and patch the
    /// affine set + SCAPE index in lockstep. Returns the number of
    /// pairwise relationships re-fitted.
    ///
    /// After this call the index still answers every query identically
    /// to `ScapeIndex::build(model.data(), model.affine(), ..)` — the
    /// delta-vs-full equivalence the tests pin down.
    ///
    /// # Errors
    /// Propagates index patch errors (a [`ScapeError::DeltaMismatch`]
    /// here would indicate a model/index desync and is a bug). On error
    /// the affine set may already hold the re-fitted relationships while
    /// the index does not — call [`StreamingEngine::refresh`] to restore
    /// consistency; [`StreamingEngine::refresh_auto`] does exactly that
    /// automatically.
    ///
    /// [`ScapeError::DeltaMismatch`]: affinity_scape::ScapeError
    ///
    /// # Panics
    /// Panics if no model exists yet.
    pub fn refresh_delta(&mut self, drifted: &[SeriesId]) -> Result<usize, StreamError> {
        let plan = self.plan_delta(drifted);
        // Write-ahead: the journal record must be durable before any
        // in-memory state changes, so a crash at any later instant
        // replays this refresh instead of losing it. On append failure
        // nothing has been applied — engine and disk stay consistent.
        self.journal_plan(&plan)?;
        let refit_pairs = plan.new_rels.len();
        self.apply_delta_plan(&plan)?;
        Ok(refit_pairs)
    }

    /// Compute a delta refresh against the current window without
    /// mutating anything: the [`ScapeDelta`] plus the full re-fitted
    /// relationships it implies (a delta's `β` values alone do not
    /// determine the whole affine map, so replay needs the
    /// replacements verbatim).
    pub(crate) fn plan_delta(&self, drifted: &[SeriesId]) -> DeltaPlan {
        let model = self.model.as_ref().expect("delta refresh requires a model");
        let mut plan = DeltaPlan {
            at_tick: self.window.ticks(),
            delta: ScapeDelta::default(),
            new_rels: Vec::new(),
            new_series: Vec::with_capacity(drifted.len()),
        };
        if drifted.is_empty() {
            return plan;
        }
        let current = self.window.snapshot();
        let mut is_drifted = vec![false; current.series_count()];
        for &v in drifted {
            is_drifted[v] = true;
        }
        // Per-series relationships (L-measure trees).
        for &v in drifted {
            let old = *model.affine.series_relationship(v);
            let center = model.affine.clusters().center(old.cluster);
            let (c, d) = fit_series(center, current.series(v));
            plan.delta.series.push(SeriesDelta {
                series: v,
                cluster: old.cluster,
                old: (old.c, old.d),
                new: (c, d),
            });
            plan.new_series.push(SeriesRelationship {
                series: v,
                cluster: old.cluster,
                c,
                d,
            });
        }
        // Pairwise relationships touching a drifted series, re-fit
        // against their retained pivot over the current window.
        let mut pinv_cache: FxHashMap<PivotPair, Matrix> = FxHashMap::default();
        for rel in model.affine.relationships() {
            if !(is_drifted[rel.pair.u] || is_drifted[rel.pair.v]) {
                continue;
            }
            let pivot = rel.pivot;
            let pinv = pinv_cache.entry(pivot).or_insert_with(|| {
                pivot_pseudo_inverse(
                    current.series(pivot.common),
                    model.affine.clusters().center(pivot.cluster),
                )
            });
            let (a, b) = solve_relationship_pinv(
                pinv,
                current.series(rel.common),
                current.series(rel.pair.other(rel.common)),
            );
            plan.delta.pairs.push(PairDelta {
                pair: rel.pair,
                pivot,
                old_beta: rel.beta(),
                new_beta: [a[0][1], a[1][1], b[1]],
            });
            plan.new_rels.push(AffineRelationship {
                pair: rel.pair,
                pivot,
                common: rel.common,
                a,
                b,
            });
        }
        plan
    }

    /// Apply a planned delta refresh: patch the affine set and the
    /// SCAPE index in lockstep, then advance the refresh bookkeeping.
    /// Replay after a crash funnels through this same method, so a
    /// resumed engine ends in exactly the state the live one was in.
    pub(crate) fn apply_delta_plan(&mut self, plan: &DeltaPlan) -> Result<(), StreamError> {
        let model = self.model.as_mut().expect("delta refresh requires a model");
        for rel in &plan.new_rels {
            model
                .affine
                .replace_relationship(rel.clone())
                .expect("refit keeps pair and pivot");
        }
        for sr in &plan.new_series {
            model
                .affine
                .replace_series_relationship(*sr)
                .expect("refit keeps series and cluster");
        }
        if !plan.delta.is_empty() {
            model.index.apply_delta(&plan.delta)?;
        }
        model.built_at = plan.at_tick;
        self.ticks_at_last_refresh = plan.at_tick;
        self.refreshes += 1;
        self.delta_refreshes += 1;
        self.deltas_since_full += 1;
        Ok(())
    }

    /// The current model snapshot, if the warm-up has completed.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Live (per-tick exact) rolling statistics.
    pub fn rolling(&self) -> &RollingStats {
        &self.rolling
    }

    /// The live window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Number of model refreshes so far (full + delta).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Number of full AFCLST + SYMEX rebuilds so far.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// Number of delta refreshes (retained-pivot re-fits) so far.
    pub fn delta_refreshes(&self) -> u64 {
        self.delta_refreshes
    }

    /// Ticks since the current model was built (staleness metric).
    /// Saturating: a just-resumed engine's model can postdate the
    /// restored window.
    pub fn model_age(&self) -> Option<u64> {
        self.model
            .as_ref()
            .map(|m| self.window.ticks().saturating_sub(m.built_at))
    }
}

/// A planned (not yet applied) delta refresh: the index delta plus the
/// full affine replacements it implies, exactly what one journal
/// record carries.
#[derive(Debug, Clone)]
pub(crate) struct DeltaPlan {
    /// Window tick count the plan was computed at.
    pub at_tick: u64,
    /// Node relocations for [`ScapeIndex::apply_delta`].
    pub delta: ScapeDelta,
    /// Re-fitted pairwise relationships, replacing same-pair entries.
    pub new_rels: Vec<AffineRelationship>,
    /// Re-fitted per-series relationships.
    pub new_series: Vec<SeriesRelationship>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::measures::PairwiseMeasure;
    use affinity_scape::ThresholdOp;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tick_source(n: usize, seed: u64) -> impl FnMut() -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0usize;
        move || {
            t += 1;
            (0..n)
                .map(|v| {
                    let base = ((t as f64) * 0.12 + v as f64).sin();
                    base * (1.0 + v as f64 * 0.2) + 10.0 + rng.gen_range(-0.05..0.05)
                })
                .collect()
        }
    }

    #[test]
    fn warms_up_then_refreshes_on_schedule() {
        let n = 8;
        let mut cfg = StreamingConfig::new(32);
        cfg.refresh_every = 16;
        let mut eng = StreamingEngine::new(n, cfg);
        let mut next = tick_source(n, 1);
        let mut refreshed_at = Vec::new();
        for i in 1..=96u64 {
            if eng.push(&next()).unwrap() {
                refreshed_at.push(i);
            }
        }
        // First refresh at warm-up (tick 32), then every 16 ticks.
        assert_eq!(refreshed_at[0], 32);
        assert!(refreshed_at.windows(2).all(|w| w[1] - w[0] == 16));
        assert_eq!(eng.refreshes() as usize, refreshed_at.len());
        assert!(eng.model_age().unwrap() < 16);
    }

    #[test]
    fn model_answers_queries_on_window_data() {
        let n = 10;
        let mut eng = StreamingEngine::new(n, StreamingConfig::new(48));
        let mut next = tick_source(n, 2);
        for _ in 0..60 {
            eng.push(&next()).unwrap();
        }
        let model = eng.model().expect("model after warm-up");
        assert_eq!(model.data().series_count(), n);
        assert_eq!(model.data().samples(), 48);
        let hot = model
            .index()
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.5)
            .unwrap();
        // Shared sinusoid phase: plenty of correlated pairs.
        assert!(!hot.is_empty());
        // MEC through a fresh engine over the snapshot.
        let engine = model.mec_engine();
        let rho = engine
            .pairwise(PairwiseMeasure::Correlation, &[0, 1, 2])
            .unwrap();
        assert_eq!(rho.rows(), 3);
    }

    #[test]
    fn rolling_stats_track_window_exactly_between_refreshes() {
        let n = 4;
        let mut eng = StreamingEngine::new(n, StreamingConfig::new(24));
        let mut next = tick_source(n, 3);
        for _ in 0..100 {
            eng.push(&next()).unwrap();
        }
        for v in 0..n {
            let s = eng.window().series(v);
            let exact = affinity_linalg::vector::variance(s);
            assert!(
                (eng.rolling().variance(v) - exact).abs() < 1e-9,
                "series {v}"
            );
        }
    }

    #[test]
    fn model_is_stale_until_refresh_and_updates_after() {
        let n = 6;
        let mut cfg = StreamingConfig::new(16);
        cfg.refresh_every = 1000; // effectively never
        let mut eng = StreamingEngine::new(n, cfg);
        let mut next = tick_source(n, 4);
        for _ in 0..40 {
            eng.push(&next()).unwrap();
        }
        let built = eng.model().unwrap().built_at;
        assert_eq!(built, 16, "built at warm-up");
        assert_eq!(eng.model_age(), Some(40 - 16));
        eng.refresh().unwrap();
        assert_eq!(eng.model_age(), Some(0));
        assert_eq!(eng.refreshes(), 2);
    }

    #[test]
    fn staleness_cap_forces_periodic_full_rebuilds() {
        // Marginal stats cannot see pairwise drift, so `full_every`
        // bounds how long delta refreshes may run back to back.
        let n = 6;
        let mut cfg = StreamingConfig::new(16);
        cfg.refresh_every = 4;
        cfg.delta = Some(DeltaPolicy {
            drift_tolerance: f64::INFINITY, // nothing ever drifts
            max_drift_fraction: 1.0,
            full_every: 2,
        });
        let mut eng = StreamingEngine::new(n, cfg);
        let mut next = tick_source(n, 6);
        for _ in 0..64 {
            eng.push(&next()).unwrap();
        }
        // Warm-up full, then the pattern delta, delta, full, repeating.
        assert!(eng.delta_refreshes() > 0);
        assert!(
            eng.full_rebuilds() >= eng.refreshes() / 3,
            "{} fulls of {} refreshes",
            eng.full_rebuilds(),
            eng.refreshes()
        );
        assert!(eng.full_rebuilds() > 1, "cap must force later fulls");
    }

    #[test]
    fn small_deployments_clamp_k() {
        // 3 series with default k = 6 must not error.
        let mut eng = StreamingEngine::new(3, StreamingConfig::new(8));
        let mut next = tick_source(3, 5);
        for _ in 0..12 {
            eng.push(&next()).unwrap();
        }
        assert!(eng.model().is_some());
    }
}

//! Fixed-width sliding windows with contiguous views.
//!
//! Each series keeps a `2m` buffer and every sample is written twice, at
//! `pos` and `pos + m`. The live window is then always the contiguous
//! slice `&buf[pos+1 .. pos+1+m]`, so the batch kernels (AFCLST, SYMEX,
//! measures) run on streaming data with zero copies and no branchy ring
//! arithmetic in inner loops — the standard double-write ring-buffer
//! trick, paid for with 2× memory.

use affinity_data::{DataMatrix, SeriesSource, SourceError};

/// Per-series sliding windows over a fixed number of series.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    series: usize,
    width: usize,
    /// `bufs[v]` has `2·width` slots; see module docs.
    bufs: Vec<Vec<f64>>,
    /// Next write position in `0..width`.
    pos: usize,
    /// Total samples ingested.
    ticks: u64,
}

impl SlidingWindow {
    /// Create windows for `series` series of `width` samples each.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(series: usize, width: usize) -> Self {
        assert!(
            series > 0 && width > 0,
            "window dimensions must be positive"
        );
        SlidingWindow {
            series,
            width,
            bufs: vec![vec![0.0; 2 * width]; series],
            pos: 0,
            ticks: 0,
        }
    }

    /// Pre-fill from the trailing `width` samples of a data matrix.
    ///
    /// # Panics
    /// Panics if the matrix has fewer samples than the window width or a
    /// different series count.
    pub fn from_matrix(data: &DataMatrix, width: usize) -> Self {
        assert!(
            data.samples() >= width,
            "matrix has {} samples, window needs {width}",
            data.samples()
        );
        let mut w = SlidingWindow::new(data.series_count(), width);
        let start = data.samples() - width;
        for i in start..data.samples() {
            let tick: Vec<f64> = (0..data.series_count())
                .map(|v| data.series(v)[i])
                .collect();
            w.push(&tick);
        }
        w
    }

    /// Warm-start a window from the trailing `width` samples of any
    /// [`SeriesSource`], one column at a time — so a streaming engine
    /// can boot from an on-disk store whose full history never fits in
    /// memory: only the window itself (the engine's working set anyway)
    /// is materialized. The result is exactly the state `width` pushes
    /// of the trailing ticks would have produced.
    ///
    /// # Errors
    /// Propagates fetch failures; rejects sources with fewer than
    /// `width` samples (as a [`SourceError::Backend`]).
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn warm_from_source<S: SeriesSource + ?Sized>(
        width: usize,
        source: &S,
    ) -> Result<Self, SourceError> {
        let m = source.samples();
        if m < width {
            return Err(SourceError::Backend(format!(
                "source has {m} samples, window needs {width}"
            )));
        }
        let n = source.series_count();
        let mut w = SlidingWindow::new(n, width);
        let mut buf = Vec::new();
        // One strictly sequential sweep over every column — announce it
        // a sliding window ahead so a prefetching cache batches the
        // contiguous trailing region while this loop copies.
        let scan = affinity_data::source::scan_sequence(n);
        for v in 0..n {
            affinity_data::source::prefetch_window(source, &scan, v);
            let s = source.read_into(v, &mut buf)?;
            let tail = &s[m - width..];
            w.bufs[v][..width].copy_from_slice(tail);
            w.bufs[v][width..].copy_from_slice(tail);
        }
        // Equivalent to `width` pushes from a fresh window: pos wrapped
        // back to 0, every slot double-written, tick count = width.
        w.pos = 0;
        w.ticks = width as u64;
        Ok(w)
    }

    /// Overwrite the tick counter after restoring contents from a
    /// snapshot ([`SlidingWindow::from_matrix`] leaves it at `width`;
    /// the persisted engine had ingested more). Public so downstream
    /// resume paths (e.g. the sharded streaming engine) can rebuild the
    /// exact pre-crash window state from their own snapshot formats.
    pub fn restore_ticks(&mut self, ticks: u64) {
        debug_assert!(ticks >= self.width as u64, "restored window must be warm");
        self.ticks = ticks;
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series
    }

    /// Window width `m`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total ticks ingested since creation.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// `true` once at least `width` ticks have been ingested (the window
    /// holds only real data).
    pub fn is_warm(&self) -> bool {
        self.ticks >= self.width as u64
    }

    /// Ingest one sample per series.
    ///
    /// # Panics
    /// Panics if `tick.len() != series_count()`.
    pub fn push(&mut self, tick: &[f64]) {
        assert_eq!(tick.len(), self.series, "tick arity mismatch");
        for (buf, &x) in self.bufs.iter_mut().zip(tick) {
            buf[self.pos] = x;
            buf[self.pos + self.width] = x;
        }
        self.pos = (self.pos + 1) % self.width;
        self.ticks += 1;
    }

    /// The value evicted by the *next* push for series `v` (the oldest
    /// in-window sample) — what rolling statistics must subtract.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn oldest(&self, v: usize) -> f64 {
        self.bufs[v][self.pos + self.width]
    }

    /// Contiguous view of the current window of series `v`, oldest first.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn series(&self, v: usize) -> &[f64] {
        &self.bufs[v][self.pos..self.pos + self.width]
    }

    /// Snapshot the whole window as a [`DataMatrix`] (copies; used at
    /// model-refresh time).
    pub fn snapshot(&self) -> DataMatrix {
        DataMatrix::from_series((0..self.series).map(|v| self.series(v).to_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_contains_last_m_samples_in_order() {
        let mut w = SlidingWindow::new(2, 4);
        for i in 0..10 {
            w.push(&[i as f64, -(i as f64)]);
        }
        assert_eq!(w.series(0), &[6.0, 7.0, 8.0, 9.0]);
        assert_eq!(w.series(1), &[-6.0, -7.0, -8.0, -9.0]);
        assert_eq!(w.ticks(), 10);
        assert!(w.is_warm());
    }

    #[test]
    fn window_is_contiguous_at_every_phase() {
        let m = 5;
        let mut w = SlidingWindow::new(1, m);
        for i in 0..23 {
            w.push(&[i as f64]);
            if w.is_warm() {
                let s = w.series(0);
                assert_eq!(s.len(), m);
                // Strictly increasing by construction.
                assert!(s.windows(2).all(|p| p[1] == p[0] + 1.0), "{s:?}");
                assert_eq!(s[m - 1], i as f64);
            }
        }
    }

    #[test]
    fn oldest_tracks_eviction() {
        let mut w = SlidingWindow::new(1, 3);
        for i in 0..5 {
            w.push(&[i as f64]);
        }
        // Window is [2, 3, 4]; the next push evicts 2.
        assert_eq!(w.oldest(0), 2.0);
        w.push(&[5.0]);
        assert_eq!(w.series(0), &[3.0, 4.0, 5.0]);
        assert_eq!(w.oldest(0), 3.0);
    }

    #[test]
    fn from_matrix_takes_trailing_window() {
        let dm = DataMatrix::from_series(vec![(0..8).map(|i| i as f64).collect()]);
        let w = SlidingWindow::from_matrix(&dm, 3);
        assert_eq!(w.series(0), &[5.0, 6.0, 7.0]);
        assert!(w.is_warm());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut w = SlidingWindow::new(3, 4);
        for i in 0..7 {
            w.push(&[i as f64, 2.0 * i as f64, 0.5]);
        }
        let dm = w.snapshot();
        assert_eq!(dm.series_count(), 3);
        assert_eq!(dm.samples(), 4);
        assert_eq!(dm.series(0), w.series(0));
        assert_eq!(dm.series(1), w.series(1));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        SlidingWindow::new(2, 4).push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        SlidingWindow::new(1, 0);
    }
}

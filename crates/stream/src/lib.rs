//! # affinity-stream
//!
//! Sliding-window streaming support for the AFFINITY framework.
//!
//! The paper motivates AFFINITY with *"efficient querying and analysis of
//! large amounts of time-series data in real-time and archival settings"*
//! (Sec. 1) and its `W_F` baseline descends from StatStream, a streaming
//! system. This crate supplies the streaming half:
//!
//! * [`window::SlidingWindow`] — fixed-width per-series ring buffers with
//!   always-contiguous window slices (double-write trick), so the batch
//!   kernels run on the live window without copies;
//! * [`rolling::RollingStats`] — exact O(1)-per-tick maintenance of the
//!   separable normalizer components (sum, sum of squares ⇒ mean,
//!   variance, self dot product) with periodic renormalization against
//!   drift;
//! * [`engine::StreamingEngine`] — ingestion plus a refresh policy:
//!   every `refresh_every` ticks the model is either **delta-patched**
//!   (drifted relationships re-fitted against retained pivots, the SCAPE
//!   index updated in place — the default, see [`engine::DeltaPolicy`])
//!   or fully rebuilt (AFCLST + SYMEX+ + a bulk-loaded index) when drift
//!   exceeds tolerance. This carries the paper's observation that
//!   relationships are computed once and reused while queries run
//!   continuously into the windowed setting.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod persist;
pub mod rolling;
pub mod window;

pub use engine::{DeltaPolicy, Model, RefreshKind, StreamError, StreamingConfig, StreamingEngine};
pub use persist::{open_model, PersistedModel, RecoveryReport, JOURNAL_FILE, SNAPSHOT_FILE};
pub use rolling::RollingStats;
pub use window::SlidingWindow;

//! Crash-safe persistence for the streaming engine.
//!
//! Two files per persisted engine, both under one directory:
//!
//! * `model.snap` — an atomic [`SnapshotWriter`] snapshot holding the
//!   live window, the model's reference data, the affine set and the
//!   SCAPE index (sections below), committed via staged-write → fsync →
//!   rename so no crash instant exposes a torn file;
//! * `model.journal` — an append-only [`JournalWriter`] bound to the
//!   snapshot's content id, carrying one CRC'd record per delta
//!   refresh, fsync'd **before** the refresh mutates memory.
//!
//! The commit protocol (ARIES in miniature):
//!
//! ```text
//!            persist_to / full refresh            delta refresh
//!          ┌──────────────────────────┐      ┌─────────────────────┐
//!          │ write model.snap.tmp     │      │ append record       │
//!          │ fsync; rename; fsync dir │      │ fsync               │
//!          │ create journal(bound_id) │      │ apply to affine     │
//!          └──────────────────────────┘      │ apply to index      │
//!                                            └─────────────────────┘
//! ```
//!
//! Recovery ([`StreamingEngine::resume`]) is a state machine over what
//! the crash left behind:
//!
//! ```text
//! model.snap missing/corrupt ──────────────→ typed error (no model)
//! model.snap ok, journal missing ──────────→ fresh journal  (crashed
//!                                            between snapshot commit
//!                                            and journal creation)
//! journal header unusable ─────────────────→ fresh journal  (crashed
//!                                            during creation)
//! journal bound to another snapshot id ────→ discard (stale: its
//!                                            deltas are folded into
//!                                            the newer snapshot)
//! journal ok ──────────────────────────────→ replay valid prefix,
//!                                            truncate torn tail
//! ```
//!
//! Every branch is reported in a [`RecoveryReport`] — loss is bounded
//! (ticks since the snapshot, a torn tail's bytes) and never silent.

use crate::engine::{DeltaPlan, Model, StreamError, StreamingConfig, StreamingEngine};
use crate::rolling::RollingStats;
use crate::window::SlidingWindow;
use affinity_core::affine::{AffineRelationship, SeriesRelationship};
use affinity_core::persist::{
    get_relationship, get_series_relationship, put_relationship, put_series_relationship,
    ByteReader, ByteWriter, DecodeError, RELATIONSHIP_BYTES, SERIES_RELATIONSHIP_BYTES,
};
use affinity_core::symex::AffineSet;
use affinity_data::DataMatrix;
use affinity_par::ThreadPool;
use affinity_scape::{measure_from_tag, measure_tag, ScapeDelta, ScapeIndex};
use affinity_storage::{
    replay, staged_path, CommitFault, FailMode, JournalWriter, PersistError, Snapshot,
    SnapshotWriter,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot section: engine metadata (counters, shape, measure list).
const SEC_META: u32 = 1;
/// Snapshot section: live window contents.
const SEC_WINDOW: u32 = 2;
/// Snapshot section: the model's reference data matrix.
const SEC_DATA: u32 = 3;
/// Snapshot section: the affine set ([`AffineSet::to_bytes`]).
const SEC_AFFINE: u32 = 4;
/// Snapshot section: the SCAPE index ([`ScapeIndex::to_bytes`]).
const SEC_INDEX: u32 = 5;

/// Version byte of the META section payload.
const META_VERSION: u8 = 1;
/// Version byte of each journal record payload.
const RECORD_VERSION: u8 = 1;

/// Snapshot filename inside a persistence directory.
pub const SNAPSHOT_FILE: &str = "model.snap";
/// Journal filename inside a persistence directory.
pub const JOURNAL_FILE: &str = "model.journal";

fn snapshot_file(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

fn journal_file(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Active persistence state of a [`StreamingEngine`].
#[derive(Debug)]
pub(crate) struct Persistence {
    dir: PathBuf,
    journal: JournalWriter,
    generation: u64,
    /// Scripted fault consumed by the next snapshot commit
    /// (fault-injection harness).
    next_commit_fault: Option<CommitFault>,
    /// Scripted fault consumed by the next journal append.
    next_journal_fault: Option<FailMode>,
}

/// What recovery found on disk and what it did about it. Loss is
/// reported, never silent: `torn_bytes_dropped` and
/// `stale_journal_discarded` bound exactly what a crash cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation counter of the snapshot that anchored recovery.
    pub generation: u64,
    /// Content id of that snapshot (journal binding).
    pub snapshot_id: u64,
    /// Journal records replayed on top of the snapshot.
    pub replayed_records: usize,
    /// Torn/bit-rotted journal tail bytes dropped by truncation.
    pub torn_bytes_dropped: u64,
    /// The journal belonged to an older snapshot and was discarded
    /// (crash between a checkpoint's snapshot commit and its journal
    /// reset — those deltas are already folded into the snapshot).
    pub stale_journal_discarded: bool,
    /// The journal was missing or its header unusable; a fresh one was
    /// created (read-only opens only note it).
    pub journal_reset: bool,
    /// A leftover staged `model.snap.tmp` from an interrupted commit
    /// was found (and removed when resuming).
    pub staged_file_removed: bool,
}

/// A model restored from disk, independent of any live engine — what a
/// query session (`affinity_ql`) opens to serve MET/MER/MEC answers
/// without rebuilding.
#[derive(Debug)]
pub struct PersistedModel {
    /// The model's reference data (captured at the last full rebuild).
    pub data: DataMatrix,
    /// The affine set, journal deltas already applied.
    pub affine: AffineSet,
    /// The SCAPE index, journal deltas already applied.
    pub index: ScapeIndex,
    /// The live window at snapshot time.
    pub window: DataMatrix,
    /// Tick count of the model's last refresh (after replay).
    pub built_at: u64,
    /// Tick count of the last full rebuild.
    pub full_built_at: u64,
    /// Snapshot generation the model came from.
    pub generation: u64,
}

fn matrix_to_bytes(m: &DataMatrix) -> Vec<u8> {
    let (n, s) = (m.series_count(), m.samples());
    let mut w = ByteWriter::with_capacity(16 + n * s * 8);
    w.put_len(n);
    w.put_len(s);
    for v in 0..n {
        w.put_f64_slice(m.series(v));
    }
    w.into_vec()
}

fn matrix_from_bytes(bytes: &[u8]) -> Result<DataMatrix, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let n = r.len()?;
    let samples = r.len()?;
    if n == 0 || samples == 0 {
        return Err(DecodeError::Corrupt(format!(
            "empty matrix ({n} × {samples})"
        )));
    }
    let per = samples
        .checked_mul(8)
        .ok_or_else(|| DecodeError::Corrupt(format!("sample count {samples} overflows")))?;
    let promised = n
        .checked_mul(per)
        .ok_or_else(|| DecodeError::Corrupt(format!("matrix {n} × {samples} overflows")))?;
    if promised > r.remaining() {
        return Err(DecodeError::Truncated {
            needed: promised,
            available: r.remaining(),
        });
    }
    let mut series = Vec::with_capacity(n);
    for _ in 0..n {
        series.push(r.f64_vec(samples)?);
    }
    r.finish()?;
    Ok(DataMatrix::from_series(series))
}

/// Decoded META section plus replay-time bookkeeping updates.
#[derive(Debug, Clone)]
struct Meta {
    series: usize,
    width: usize,
    ticks: u64,
    ticks_at_last_refresh: u64,
    refreshes: u64,
    full_rebuilds: u64,
    delta_refreshes: u64,
    deltas_since_full: u64,
    built_at: u64,
    full_built_at: u64,
    measure_tags: Vec<u8>,
}

fn meta_to_bytes(engine: &StreamingEngine, model: &Model) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(96 + engine.cfg.indexed.len());
    w.put_u8(META_VERSION);
    w.put_len(engine.window.series_count());
    w.put_len(engine.window.width());
    w.put_u64(engine.window.ticks());
    w.put_u64(engine.ticks_at_last_refresh);
    w.put_u64(engine.refreshes);
    w.put_u64(engine.full_rebuilds);
    w.put_u64(engine.delta_refreshes);
    w.put_u64(engine.deltas_since_full);
    w.put_u64(model.built_at);
    w.put_u64(model.full_built_at);
    w.put_len(engine.cfg.indexed.len());
    for &m in &engine.cfg.indexed {
        w.put_u8(measure_tag(m));
    }
    w.into_vec()
}

fn meta_from_bytes(bytes: &[u8]) -> Result<Meta, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8()?;
    if version != META_VERSION {
        return Err(DecodeError::Corrupt(format!(
            "unsupported meta version {version}"
        )));
    }
    let series = r.len()?;
    let width = r.len()?;
    let ticks = r.u64()?;
    let ticks_at_last_refresh = r.u64()?;
    let refreshes = r.u64()?;
    let full_rebuilds = r.u64()?;
    let delta_refreshes = r.u64()?;
    let deltas_since_full = r.u64()?;
    let built_at = r.u64()?;
    let full_built_at = r.u64()?;
    let tag_count = r.checked_count(1, "measure tag")?;
    let mut measure_tags = Vec::with_capacity(tag_count);
    for _ in 0..tag_count {
        let tag = r.u8()?;
        measure_from_tag(tag)?; // must name a real measure
        measure_tags.push(tag);
    }
    r.finish()?;
    Ok(Meta {
        series,
        width,
        ticks,
        ticks_at_last_refresh,
        refreshes,
        full_rebuilds,
        delta_refreshes,
        deltas_since_full,
        built_at,
        full_built_at,
        measure_tags,
    })
}

fn record_to_bytes(plan: &DeltaPlan) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(
        // afflint: allow(len-arith) -- encoder-side capacity hint over a live in-memory delta plan, not header-declared sizes
        32 + plan.delta.len() * 80
            // afflint: allow(len-arith) -- encoder-side capacity hint continued
            + plan.new_rels.len() * RELATIONSHIP_BYTES
            // afflint: allow(len-arith) -- encoder-side capacity hint continued
            + plan.new_series.len() * SERIES_RELATIONSHIP_BYTES,
    );
    w.put_u8(RECORD_VERSION);
    w.put_u64(plan.at_tick);
    plan.delta.encode_into(&mut w);
    w.put_len(plan.new_rels.len());
    for rel in &plan.new_rels {
        put_relationship(&mut w, rel);
    }
    w.put_len(plan.new_series.len());
    for sr in &plan.new_series {
        put_series_relationship(&mut w, sr);
    }
    w.into_vec()
}

fn record_from_bytes(bytes: &[u8]) -> Result<DeltaPlan, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8()?;
    if version != RECORD_VERSION {
        return Err(DecodeError::Corrupt(format!(
            "unsupported journal record version {version}"
        )));
    }
    let at_tick = r.u64()?;
    let delta = ScapeDelta::decode_from(&mut r)?;
    let rel_count = r.checked_count(RELATIONSHIP_BYTES, "journal relationship")?;
    let mut new_rels: Vec<AffineRelationship> = Vec::with_capacity(rel_count);
    for _ in 0..rel_count {
        new_rels.push(get_relationship(&mut r)?);
    }
    let sr_count = r.checked_count(SERIES_RELATIONSHIP_BYTES, "journal series relationship")?;
    let mut new_series: Vec<SeriesRelationship> = Vec::with_capacity(sr_count);
    for _ in 0..sr_count {
        new_series.push(get_series_relationship(&mut r)?);
    }
    r.finish()?;
    Ok(DeltaPlan {
        at_tick,
        delta,
        new_rels,
        new_series,
    })
}

fn corrupt(msg: impl Into<String>) -> StreamError {
    StreamError::Persist(PersistError::Corrupt(msg.into()))
}

/// Everything recovered from disk before an engine (or a read-only
/// session) is assembled around it.
struct Loaded {
    meta: Meta,
    window: DataMatrix,
    data: DataMatrix,
    affine: AffineSet,
    index: ScapeIndex,
    snapshot_id: u64,
    generation: u64,
    /// `Some(valid_len)` when the on-disk journal is the snapshot's own
    /// and can be reopened; `None` when it must be recreated.
    journal_keep: Option<u64>,
    report: RecoveryReport,
}

/// Open the snapshot, classify the journal, and replay its valid
/// prefix onto the decoded model. Pure read — no disk mutation — so
/// both [`StreamingEngine::resume`] and [`open_model`] share it.
fn load(dir: &Path) -> Result<Loaded, StreamError> {
    let snap_path = snapshot_file(dir);
    let staged = staged_path(&snap_path);
    let staged_present = staged.exists();

    let snapshot = Snapshot::open(&snap_path)?;
    let section = |id: u32, name: &str| {
        snapshot
            .section(id)
            .ok_or_else(|| corrupt(format!("snapshot missing {name} section")))
    };
    let meta = meta_from_bytes(section(SEC_META, "meta")?)?;
    let window = matrix_from_bytes(section(SEC_WINDOW, "window")?)?;
    let data = matrix_from_bytes(section(SEC_DATA, "data")?)?;
    let mut affine = AffineSet::from_bytes(section(SEC_AFFINE, "affine")?)?;
    let mut index = ScapeIndex::from_bytes(section(SEC_INDEX, "index")?)?;

    // Cross-section consistency: the sections passed their CRCs
    // individually; now they must also agree with each other.
    if window.series_count() != meta.series || window.samples() != meta.width {
        return Err(corrupt("window section disagrees with meta"));
    }
    if data.series_count() != meta.series {
        return Err(corrupt("data section disagrees with meta"));
    }
    if affine.series_count() != data.series_count() || affine.samples() != data.samples() {
        return Err(corrupt("affine section disagrees with data section"));
    }

    let mut report = RecoveryReport {
        generation: snapshot.generation(),
        snapshot_id: snapshot.snapshot_id(),
        staged_file_removed: staged_present,
        ..RecoveryReport::default()
    };
    let mut meta = meta;

    let journal_keep = match replay(journal_file(dir)) {
        Ok(rep) if rep.bound_id == snapshot.snapshot_id() => {
            report.torn_bytes_dropped = rep.torn_bytes;
            for payload in &rep.records {
                let plan = record_from_bytes(payload)?;
                for rel in &plan.new_rels {
                    if affine.replace_relationship(rel.clone()).is_none() {
                        return Err(corrupt(format!(
                            "journal record re-fits unknown pair ({}, {})",
                            rel.pair.u, rel.pair.v
                        )));
                    }
                }
                for sr in &plan.new_series {
                    if affine.replace_series_relationship(*sr).is_none() {
                        return Err(corrupt(format!(
                            "journal record re-fits unknown series {}",
                            sr.series
                        )));
                    }
                }
                if !plan.delta.is_empty() {
                    index.apply_delta(&plan.delta).map_err(StreamError::Scape)?;
                }
                meta.built_at = plan.at_tick;
                meta.ticks_at_last_refresh = plan.at_tick;
                meta.refreshes += 1;
                meta.delta_refreshes += 1;
                meta.deltas_since_full += 1;
                report.replayed_records += 1;
            }
            Some(rep.valid_len)
        }
        Ok(_) => {
            // Bound to an older snapshot: a crash hit the window between
            // a checkpoint's snapshot commit and its journal reset.
            // Those deltas are already folded into this snapshot.
            report.stale_journal_discarded = true;
            None
        }
        Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            report.journal_reset = true;
            None
        }
        Err(PersistError::Io(e)) => return Err(StreamError::Persist(PersistError::Io(e))),
        Err(_) => {
            // Header unusable — the crash interrupted journal creation.
            report.journal_reset = true;
            None
        }
    };

    Ok(Loaded {
        meta,
        window,
        data,
        affine,
        index,
        snapshot_id: snapshot.snapshot_id(),
        generation: snapshot.generation(),
        journal_keep,
        report,
    })
}

/// Open a persisted model read-only: snapshot + journal replay, no
/// disk mutation (torn tails are *reported*, not truncated). This is
/// the query-session entry point (`affinity snapshot` / `--snapshot`).
///
/// # Errors
/// Typed [`StreamError`] on any corruption; never panics.
pub fn open_model(dir: impl AsRef<Path>) -> Result<(PersistedModel, RecoveryReport), StreamError> {
    let loaded = load(dir.as_ref())?;
    Ok((
        PersistedModel {
            data: loaded.data,
            affine: loaded.affine,
            index: loaded.index,
            window: loaded.window,
            built_at: loaded.meta.built_at,
            full_built_at: loaded.meta.full_built_at,
            generation: loaded.generation,
        },
        loaded.report,
    ))
}

impl StreamingEngine {
    /// Arm crash-safe persistence: write an initial snapshot of the
    /// current model + window into `dir` (created if needed) and bind a
    /// fresh journal to it. From here on every delta refresh is
    /// journaled before it is applied and every full rebuild writes a
    /// new snapshot generation. Returns the snapshot's content id.
    ///
    /// # Errors
    /// [`StreamError::Persist`] if no model exists yet or the commit
    /// protocol fails.
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> Result<u64, StreamError> {
        let dir = dir.as_ref().to_path_buf();
        if self.model.is_none() {
            return Err(corrupt("cannot persist before the first model build"));
        }
        fs::create_dir_all(&dir).map_err(PersistError::Io)?;
        let generation = self
            .persistence
            .as_ref()
            .map(|p| p.generation + 1)
            .unwrap_or(1);
        let (id, journal) = self.write_checkpoint(&dir, generation, None)?;
        self.persistence = Some(Persistence {
            dir,
            journal,
            generation,
            next_commit_fault: None,
            next_journal_fault: None,
        });
        Ok(id)
    }

    /// Write a fresh snapshot generation and bind a new journal to it
    /// (called automatically after every full rebuild while persistence
    /// is armed). Returns the new snapshot id.
    ///
    /// # Errors
    /// [`StreamError::Persist`] if persistence is not armed or the
    /// commit protocol fails. After a failed commit the previous
    /// snapshot + journal remain the recovery anchor; after a failed
    /// journal reset the old journal is stale and recovery will
    /// discard it (reported, bounded loss).
    pub fn checkpoint(&mut self) -> Result<u64, StreamError> {
        let Some(p) = self.persistence.as_mut() else {
            return Err(corrupt("checkpoint without persist_to"));
        };
        let dir = p.dir.clone();
        let generation = p.generation + 1;
        let fault = p.next_commit_fault.take();
        let (id, journal) = self.write_checkpoint(&dir, generation, fault)?;
        let Some(p) = self.persistence.as_mut() else {
            return Err(corrupt("persistence disarmed during checkpoint"));
        };
        p.journal = journal;
        p.generation = generation;
        Ok(id)
    }

    fn write_checkpoint(
        &self,
        dir: &Path,
        generation: u64,
        fault: Option<CommitFault>,
    ) -> Result<(u64, JournalWriter), StreamError> {
        let Some(model) = self.model.as_ref() else {
            return Err(corrupt("checkpoint requires a built model"));
        };
        let mut writer = SnapshotWriter::new(generation);
        writer
            .section(SEC_META, meta_to_bytes(self, model))
            .section(SEC_WINDOW, matrix_to_bytes(&self.window.snapshot()))
            .section(SEC_DATA, matrix_to_bytes(&model.data))
            .section(SEC_AFFINE, model.affine.to_bytes())
            .section(SEC_INDEX, model.index.to_bytes());
        let id = writer.commit_with(snapshot_file(dir), fault)?;
        // Snapshot durable ⇒ the old journal is obsolete; bind a fresh
        // one. A crash landing exactly here leaves a journal bound to
        // the previous id — recovery classifies it as stale.
        let journal = JournalWriter::create(journal_file(dir), id)?;
        Ok((id, journal))
    }

    /// Append a planned delta refresh to the journal (no-op when
    /// persistence is not armed). Called by `refresh_delta` *before*
    /// any in-memory mutation — the write-ahead contract.
    pub(crate) fn journal_plan(&mut self, plan: &DeltaPlan) -> Result<(), StreamError> {
        if let Some(p) = self.persistence.as_mut() {
            let fault = p.next_journal_fault.take();
            p.journal.append_with(&record_to_bytes(plan), fault)?;
        }
        Ok(())
    }

    /// Script a [`CommitFault`] into the next snapshot checkpoint
    /// (fault-injection test harness; no effect unless persistence is
    /// armed).
    pub fn inject_commit_fault(&mut self, fault: CommitFault) {
        if let Some(p) = self.persistence.as_mut() {
            p.next_commit_fault = Some(fault);
        }
    }

    /// Script a [`FailMode`] into the next journal append
    /// (fault-injection test harness; no effect unless persistence is
    /// armed).
    pub fn inject_journal_fault(&mut self, fault: FailMode) {
        if let Some(p) = self.persistence.as_mut() {
            p.next_journal_fault = Some(fault);
        }
    }

    /// Current snapshot generation, if persistence is armed.
    pub fn snapshot_generation(&self) -> Option<u64> {
        self.persistence.as_ref().map(|p| p.generation)
    }

    /// Warm-restart an engine from a persistence directory: open the
    /// last durable snapshot, replay the journal's valid prefix,
    /// truncate any torn tail, and re-arm persistence on the same
    /// files. O(model bytes) — no clustering, fitting, or index
    /// construction is re-run; the restored model is bit-identical to
    /// the state the journal proves durable.
    ///
    /// `cfg` must structurally match the persisted engine (window
    /// width, indexed measures); ticks pushed after the last snapshot
    /// are not persisted, so the restored window is the snapshot-time
    /// window (the journal protects the *model*, which may postdate
    /// it).
    ///
    /// # Errors
    /// Typed [`StreamError`] on any corruption or mismatch; never
    /// panics, never silently accepts a damaged file.
    pub fn resume(
        cfg: StreamingConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), StreamError> {
        let dir = dir.as_ref().to_path_buf();
        let loaded = load(&dir)?;

        if cfg.window != loaded.meta.width {
            return Err(corrupt(format!(
                "config window {} != persisted window {}",
                cfg.window, loaded.meta.width
            )));
        }
        let mut want: Vec<u8> = cfg.indexed.iter().map(|&m| measure_tag(m)).collect();
        let mut have = loaded.meta.measure_tags.clone();
        want.sort_unstable();
        want.dedup();
        have.sort_unstable();
        have.dedup();
        if want != have {
            return Err(corrupt(
                "config indexed measures differ from the persisted index",
            ));
        }

        // Disk fix-ups resume is allowed to make (read-only opens are
        // not): drop a leftover staged temp file, truncate the torn
        // journal tail or recreate an unusable/stale journal.
        let snap_path = snapshot_file(&dir);
        let staged = staged_path(&snap_path);
        if loaded.report.staged_file_removed {
            fs::remove_file(&staged).map_err(PersistError::Io)?;
        }
        let journal = match loaded.journal_keep {
            Some(valid_len) => {
                JournalWriter::open_append(journal_file(&dir), loaded.snapshot_id, valid_len)?
            }
            None => JournalWriter::create(journal_file(&dir), loaded.snapshot_id)?,
        };

        let pool = Arc::new(ThreadPool::new(cfg.symex.threads));
        let mut window = SlidingWindow::from_matrix(&loaded.window, loaded.meta.width);
        window.restore_ticks(loaded.meta.ticks);
        let rolling = RollingStats::from_window(&window);
        let model = Model::assemble(
            loaded.data,
            loaded.affine,
            loaded.index,
            Arc::clone(&pool),
            loaded.meta.built_at,
            loaded.meta.full_built_at,
        );
        let engine = StreamingEngine {
            cfg,
            window,
            rolling,
            model: Some(model),
            pool,
            ticks_at_last_refresh: loaded.meta.ticks_at_last_refresh,
            refreshes: loaded.meta.refreshes,
            full_rebuilds: loaded.meta.full_rebuilds,
            delta_refreshes: loaded.meta.delta_refreshes,
            deltas_since_full: loaded.meta.deltas_since_full,
            persistence: Some(Persistence {
                dir,
                journal,
                generation: loaded.generation,
                next_commit_fault: None,
                next_journal_fault: None,
            }),
        };
        Ok((engine, loaded.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::measures::PairwiseMeasure;
    use affinity_scape::ThresholdOp;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "affinity-stream-persist-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tick(n: usize, t: u64) -> Vec<f64> {
        (0..n)
            .map(|v| {
                let base = ((t as f64) * 0.12 + v as f64).sin();
                base * (1.0 + v as f64 * 0.2) + 10.0 + ((t * 31 + v as u64 * 7) % 13) as f64 * 0.01
            })
            .collect()
    }

    fn cfg(window: usize, refresh_every: u64) -> StreamingConfig {
        let mut c = StreamingConfig::new(window);
        c.refresh_every = refresh_every;
        if let Some(d) = c.delta.as_mut() {
            // Make drift certain so delta refreshes touch real nodes.
            d.drift_tolerance = 1e-9;
            d.max_drift_fraction = 1.0;
            d.full_every = 100;
        }
        c
    }

    fn assert_models_equal(a: &Model, b: &Model) {
        assert_eq!(a.built_at, b.built_at);
        assert_eq!(a.full_built_at, b.full_built_at);
        for v in 0..a.data().series_count() {
            let (sa, sb) = (a.data().series(v), b.data().series(v));
            assert_eq!(sa.len(), sb.len());
            for (x, y) in sa.iter().zip(sb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let (ba, bb) = (a.affine().to_bytes(), b.affine().to_bytes());
        assert_eq!(ba, bb, "affine sets diverge");
        assert_eq!(
            a.index().to_bytes(),
            b.index().to_bytes(),
            "indexes diverge"
        );
    }

    #[test]
    fn resume_equals_live_engine_after_journaled_refreshes() {
        let n = 8;
        let dir = tmp_dir("equiv");
        let mut live = StreamingEngine::new(n, cfg(24, 8));
        let mut t = 0;
        for _ in 0..24 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        // Journaled delta refreshes (no full rebuild: full_every=100).
        for _ in 0..20 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        assert!(live.delta_refreshes() > 0);
        let (resumed, report) = StreamingEngine::resume(cfg(24, 8), &dir).unwrap();
        assert_eq!(report.replayed_records as u64, live.delta_refreshes());
        assert_eq!(report.torn_bytes_dropped, 0);
        assert!(!report.stale_journal_discarded);
        assert_models_equal(live.model().unwrap(), resumed.model().unwrap());
        // Query answers agree bit-for-bit.
        let q = |m: &Model| {
            m.index()
                .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.4)
                .unwrap()
        };
        assert_eq!(q(live.model().unwrap()), q(resumed.model().unwrap()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_on_full_rebuild_discards_old_journal() {
        let n = 6;
        let dir = tmp_dir("ckpt");
        let mut live = StreamingEngine::new(n, cfg(16, 4));
        let mut t = 0;
        for _ in 0..16 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        assert_eq!(live.snapshot_generation(), Some(1));
        live.refresh().unwrap(); // full rebuild → generation 2
        assert_eq!(live.snapshot_generation(), Some(2));
        let (resumed, report) = StreamingEngine::resume(cfg(16, 4), &dir).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(report.replayed_records, 0);
        assert_models_equal(live.model().unwrap(), resumed.model().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_reported() {
        let n = 6;
        let dir = tmp_dir("torn");
        let mut live = StreamingEngine::new(n, cfg(16, 4));
        let mut t = 0;
        for _ in 0..16 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        for _ in 0..8 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        let good = live.delta_refreshes();
        assert!(good >= 2);
        // Cut power 9 bytes into the next journal record.
        live.inject_journal_fault(FailMode::CutAt(9));
        let drifted: Vec<usize> = (0..n).collect();
        match live.refresh_delta(&drifted) {
            Err(StreamError::Persist(PersistError::Injected)) => {}
            other => panic!("expected injected fault, got {other:?}"),
        }
        drop(live);
        let (resumed, report) = StreamingEngine::resume(cfg(16, 4), &dir).unwrap();
        assert_eq!(report.replayed_records as u64, good);
        assert_eq!(report.torn_bytes_dropped, 9);
        assert!(resumed.model().is_some());
        // The journal is usable again after truncation.
        let journal_len = fs::metadata(journal_file(&dir)).unwrap().len();
        let (resumed2, report2) = StreamingEngine::resume(cfg(16, 4), &dir).unwrap();
        assert_eq!(report2.torn_bytes_dropped, 0);
        assert_eq!(fs::metadata(journal_file(&dir)).unwrap().len(), journal_len);
        assert_models_equal(resumed.model().unwrap(), resumed2.model().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let n = 6;
        let dir = tmp_dir("cfgmismatch");
        let mut live = StreamingEngine::new(n, cfg(16, 4));
        for t in 1..=16 {
            live.push(&tick(n, t)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        assert!(matches!(
            StreamingEngine::resume(cfg(32, 4), &dir),
            Err(StreamError::Persist(PersistError::Corrupt(_)))
        ));
        let mut wrong = cfg(16, 4);
        wrong.indexed = vec![affinity_core::measures::Measure::Pairwise(
            PairwiseMeasure::Covariance,
        )];
        assert!(matches!(
            StreamingEngine::resume(wrong, &dir),
            Err(StreamError::Persist(PersistError::Corrupt(_)))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_model_is_read_only() {
        let n = 6;
        let dir = tmp_dir("readonly");
        let mut live = StreamingEngine::new(n, cfg(16, 4));
        let mut t = 0;
        for _ in 0..24 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        live.persist_to(&dir).unwrap();
        let journaled_from = live.delta_refreshes();
        for _ in 0..8 {
            t += 1;
            live.push(&tick(n, t)).unwrap();
        }
        let snap_before = fs::read(snapshot_file(&dir)).unwrap();
        let journal_before = fs::read(journal_file(&dir)).unwrap();
        let (model, report) = open_model(&dir).unwrap();
        assert_eq!(
            report.replayed_records as u64,
            live.delta_refreshes() - journaled_from
        );
        assert_eq!(
            model.affine.to_bytes(),
            live.model().unwrap().affine().to_bytes()
        );
        assert_eq!(fs::read(snapshot_file(&dir)).unwrap(), snap_before);
        assert_eq!(fs::read(journal_file(&dir)).unwrap(), journal_before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_a_typed_error() {
        let dir = tmp_dir("missing");
        assert!(matches!(
            StreamingEngine::resume(cfg(16, 4), &dir),
            Err(StreamError::Persist(PersistError::Io(_)))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}

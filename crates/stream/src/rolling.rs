//! Exact rolling statistics over sliding windows.
//!
//! Maintains, per series, the running *shifted* moments
//! `Σ (x − c)` and `Σ (x − c)²` around a per-series reference point `c`.
//! Shifting is what makes the classic sum-of-squares variance formula
//! numerically safe: with `c` near the data, the `E[x*x] - E[x]*E[x]` cancellation
//! that destroys precision for large-offset series (think stock prices in
//! the hundreds or sensor baselines in the tens) never materializes.
//!
//! These moments answer mean, population variance, and self dot product —
//! the separable normalizer components of correlation, cosine and Dice —
//! in O(1) per tick. The reference point and the accumulated drift from
//! the add/subtract cycle are reset by a full recompute every
//! `renorm_every` ticks.

use crate::window::SlidingWindow;

/// Rolling per-series moments over a sliding window.
#[derive(Debug, Clone)]
pub struct RollingStats {
    /// Samples currently accounted for (< width during warm-up).
    filled: usize,
    /// Per-series reference points `c`.
    refs: Vec<f64>,
    /// `Σ (x − c)` over the window.
    sums: Vec<f64>,
    /// `Σ (x − c)²` over the window.
    sum_sqs: Vec<f64>,
    /// Whether `refs[v]` has been initialized from data.
    initialized: Vec<bool>,
    ticks_since_renorm: u64,
    renorm_every: u64,
}

/// Default renormalization period (ticks).
pub const DEFAULT_RENORM_EVERY: u64 = 4096;

impl RollingStats {
    /// Fresh statistics for `series` series over windows of `width`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(series: usize, width: usize) -> Self {
        assert!(series > 0 && width > 0);
        RollingStats {
            filled: 0,
            refs: vec![0.0; series],
            sums: vec![0.0; series],
            sum_sqs: vec![0.0; series],
            initialized: vec![false; series],
            ticks_since_renorm: 0,
            renorm_every: DEFAULT_RENORM_EVERY,
        }
    }

    /// Override the renormalization period (mostly for tests).
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn with_renorm_every(mut self, every: u64) -> Self {
        assert!(every > 0);
        self.renorm_every = every;
        self
    }

    /// Exact statistics recomputed from a warm window's contents —
    /// the warm-start counterpart of ticking [`RollingStats::on_tick`]
    /// through every sample: references anchor at the in-window means
    /// (as a renormalization would) and the shifted moments are summed
    /// fresh, so subsequent ticks continue incrementally from an
    /// exact state.
    ///
    /// # Panics
    /// Panics if the window is not warm.
    pub fn from_window(window: &SlidingWindow) -> Self {
        assert!(window.is_warm(), "warm-start requires a full window");
        let n = window.series_count();
        let width = window.width();
        let mut stats = RollingStats::new(n, width);
        stats.filled = width;
        for v in 0..n {
            let s = window.series(v);
            let c = s.iter().sum::<f64>() / width as f64;
            let mut sum = 0.0;
            let mut sq = 0.0;
            for &x in s {
                let d = x - c;
                sum += d;
                sq += d * d;
            }
            stats.refs[v] = c;
            stats.sums[v] = sum;
            stats.sum_sqs[v] = sq;
            stats.initialized[v] = true;
        }
        stats
    }

    /// Account one tick: `incoming[v]` enters every window, `window`
    /// provides the evicted samples. Call **before** pushing the tick
    /// into the window (so `oldest()` still refers to the evicted value).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn on_tick(&mut self, window: &SlidingWindow, incoming: &[f64]) {
        assert_eq!(incoming.len(), self.sums.len(), "tick arity mismatch");
        let evicting = window.is_warm();
        if !evicting {
            self.filled += 1;
        }
        for (v, &inc) in incoming.iter().enumerate() {
            if !self.initialized[v] {
                // Anchor the reference at the first observed value.
                self.refs[v] = inc;
                self.initialized[v] = true;
            }
            let c = self.refs[v];
            let x = inc - c;
            self.sums[v] += x;
            self.sum_sqs[v] += x * x;
            if evicting {
                let old = window.oldest(v) - c;
                self.sums[v] -= old;
                self.sum_sqs[v] -= old * old;
            }
        }
        self.ticks_since_renorm += 1;
        if self.ticks_since_renorm >= self.renorm_every {
            self.renormalize_from(window, incoming);
        }
    }

    /// Full recompute from the window contents plus the not-yet-pushed
    /// incoming tick: re-anchors the reference at the current mean and
    /// zeroes accumulated drift.
    fn renormalize_from(&mut self, window: &SlidingWindow, incoming: &[f64]) {
        for (v, &inc) in incoming.iter().enumerate().take(self.sums.len()) {
            let s = window.series(v);
            let skip = usize::from(window.is_warm());
            let live = &s[skip..];
            // New reference: the mean of the post-push window.
            let count = (live.len() + 1) as f64;
            let c = (inc + live.iter().sum::<f64>()) / count;
            let mut sum = inc - c;
            let mut sq = (inc - c) * (inc - c);
            for &x in live {
                let d = x - c;
                sum += d;
                sq += d * d;
            }
            self.refs[v] = c;
            self.sums[v] = sum;
            self.sum_sqs[v] = sq;
        }
        self.ticks_since_renorm = 0;
    }

    /// Samples currently accounted for (`width` once warm).
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// In-window mean of series `v` (partial sums during warm-up).
    pub fn mean(&self, v: usize) -> f64 {
        self.refs[v] + self.sums[v] / self.filled.max(1) as f64
    }

    /// In-window population variance of series `v`.
    pub fn variance(&self, v: usize) -> f64 {
        let n = self.filled.max(1) as f64;
        let m = self.sums[v] / n;
        (self.sum_sqs[v] / n - m * m).max(0.0)
    }

    /// In-window self dot product `Σ x²` of series `v`, reconstructed
    /// from the shifted moments:
    /// `Σ x² = Σ(x−c)² + 2c·Σ(x−c) + n·c²`.
    pub fn self_dot(&self, v: usize) -> f64 {
        let c = self.refs[v];
        self.sum_sqs[v] + 2.0 * c * self.sums[v] + self.filled as f64 * c * c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_linalg::vector;

    fn drive(values: &[Vec<f64>], width: usize, renorm: u64) -> (SlidingWindow, RollingStats) {
        let n = values.len();
        let mut w = SlidingWindow::new(n, width);
        let mut r = RollingStats::new(n, width).with_renorm_every(renorm);
        let ticks = values[0].len();
        for i in 0..ticks {
            let tick: Vec<f64> = values.iter().map(|s| s[i]).collect();
            r.on_tick(&w, &tick);
            w.push(&tick);
        }
        (w, r)
    }

    #[test]
    fn rolling_matches_batch_recompute() {
        let series: Vec<Vec<f64>> = (0..3)
            .map(|v| {
                (0..200)
                    .map(|i| ((i + v * 37) as f64 * 0.21).sin() * 3.0 + v as f64)
                    .collect()
            })
            .collect();
        let (w, r) = drive(&series, 16, u64::MAX);
        for v in 0..3 {
            let s = w.series(v);
            assert!((r.mean(v) - vector::mean(s)).abs() < 1e-10, "mean v={v}");
            assert!(
                (r.variance(v) - vector::variance(s)).abs() < 1e-9,
                "variance v={v}"
            );
            assert!(
                (r.self_dot(v) - vector::dot(s, s)).abs() < 1e-8,
                "self dot v={v}"
            );
        }
    }

    #[test]
    fn large_offsets_stay_accurate() {
        // Offsets of 1e9 destroy the unshifted E[x²]−E[x]² formula; the
        // shifted moments keep full relative precision.
        let series: Vec<Vec<f64>> =
            vec![(0..5000).map(|i| 1e9 + (i as f64 * 0.37).sin()).collect()];
        let (w, r) = drive(&series, 32, 64);
        let s = w.series(0);
        let exact_var = vector::variance(s);
        assert!(
            (r.variance(0) - exact_var).abs() <= 1e-6 * exact_var.max(1.0),
            "variance drifted: {} vs {}",
            r.variance(0),
            exact_var
        );
        let exact_mean = vector::mean(s);
        assert!((r.mean(0) - exact_mean).abs() < 1e-5);
        let exact_dot = vector::dot(s, s);
        assert!((r.self_dot(0) - exact_dot).abs() <= 1e-9 * exact_dot);
    }

    #[test]
    fn long_run_without_renorm_still_tracks() {
        // The shifted form alone (renorm effectively off) should hold
        // tight tolerances over a long, drifting stream.
        let series: Vec<Vec<f64>> = vec![(0..20_000)
            .map(|i| 100.0 + 0.001 * i as f64 + (i as f64 * 0.7).sin())
            .collect()];
        let (w, r) = drive(&series, 64, u64::MAX);
        let s = w.series(0);
        let exact = vector::variance(s);
        assert!(
            (r.variance(0) - exact).abs() <= 1e-6 * exact.max(1.0),
            "{} vs {exact}",
            r.variance(0)
        );
    }

    #[test]
    fn warmup_phase_counts_partial_sums() {
        let series: Vec<Vec<f64>> = vec![vec![2.0, 4.0]];
        let n = series[0].len();
        let mut w = SlidingWindow::new(1, 4);
        let mut r = RollingStats::new(1, 4);
        for &x in series[0].iter().take(n) {
            r.on_tick(&w, &[x]);
            w.push(&[x]);
        }
        assert!(!w.is_warm());
        assert!((r.self_dot(0) - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let w = SlidingWindow::new(2, 4);
        RollingStats::new(2, 4).on_tick(&w, &[1.0]);
    }
}

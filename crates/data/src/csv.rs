//! CSV import/export for data matrices.
//!
//! The architecture figure of the paper (Fig. 2) feeds the framework from
//! a `data_matrix` table; CSV is the interchange format our examples use
//! to get external data in and experiment output out.

use crate::matrix::DataMatrix;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A cell failed to parse as `f64`; carries (line, column).
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
    },
    /// Rows have inconsistent arity; carries the offending 1-based line.
    Ragged {
        /// 1-based line number.
        line: usize,
    },
    /// No data rows were found.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::BadNumber { line, column } => {
                write!(f, "csv parse error at line {line}, column {column}")
            }
            CsvError::Ragged { line } => write!(f, "csv row at line {line} has wrong arity"),
            CsvError::Empty => write!(f, "csv contained no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Serialize a matrix as CSV: a header of series labels, then one row per
/// sample (series are columns, matching the paper's `data_matrix` layout).
pub fn write_csv<W: Write>(dm: &DataMatrix, mut w: W) -> io::Result<()> {
    let mut line = String::new();
    for v in 0..dm.series_count() {
        if v > 0 {
            line.push(',');
        }
        line.push_str(dm.label(v));
    }
    line.push('\n');
    w.write_all(line.as_bytes())?;
    for i in 0..dm.samples() {
        line.clear();
        for v in 0..dm.series_count() {
            if v > 0 {
                line.push(',');
            }
            // `{}` on f64 round-trips exactly for finite values.
            let _ = write!(line, "{}", dm.series(v)[i]);
        }
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Write a matrix to a file path.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_csv<P: AsRef<Path>>(dm: &DataMatrix, path: P) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_csv(dm, io::BufWriter::new(f))
}

/// Parse a matrix from CSV with a label header row.
///
/// # Errors
/// See [`CsvError`].
pub fn read_csv<R: Read>(r: R) -> Result<DataMatrix, CsvError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => return Err(CsvError::Empty),
    };
    let labels: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let n = labels.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n];
    for (idx, line) in lines.enumerate() {
        let line = line?;
        let lineno = idx + 2; // 1-based, after the header
        if line.trim().is_empty() {
            continue;
        }
        let mut count = 0;
        for (c, cell) in line.split(',').enumerate() {
            if c >= n {
                return Err(CsvError::Ragged { line: lineno });
            }
            let v: f64 = cell.trim().parse().map_err(|_| CsvError::BadNumber {
                line: lineno,
                column: c,
            })?;
            columns[c].push(v);
            count += 1;
        }
        if count != n {
            return Err(CsvError::Ragged { line: lineno });
        }
    }
    if columns[0].is_empty() {
        return Err(CsvError::Empty);
    }
    let mut dm = DataMatrix::from_series(columns);
    dm.set_labels(labels);
    Ok(dm)
}

/// Read a matrix from a file path.
///
/// # Errors
/// See [`CsvError`].
pub fn load_csv<P: AsRef<Path>>(path: P) -> Result<DataMatrix, CsvError> {
    let f = std::fs::File::open(path)?;
    read_csv(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> DataMatrix {
        let mut dm = DataMatrix::from_series(vec![vec![1.0, 2.5, -3.0], vec![0.125, 1e-9, 4.0]]);
        dm.set_labels(vec!["INTC".into(), "AMD".into()]);
        dm
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dm = sample_matrix();
        let mut buf = Vec::new();
        write_csv(&dm, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, dm);
        assert_eq!(back.label(1), "AMD");
    }

    #[test]
    fn file_roundtrip() {
        let dm = sample_matrix();
        let dir = std::env::temp_dir().join("affinity-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        save_csv(&dm, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back, dm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_number() {
        let text = "a,b\n1.0,2.0\n1.0,oops\n";
        match read_csv(text.as_bytes()) {
            Err(CsvError::BadNumber { line: 3, column: 1 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "a,b\n1.0,2.0\n1.0\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(CsvError::Ragged { line: 3 })
        ));
        let text = "a,b\n1.0,2.0,3.0\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(CsvError::Ragged { line: 2 })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(read_csv(&b""[..]), Err(CsvError::Empty)));
        assert!(matches!(read_csv(&b"a,b\n"[..]), Err(CsvError::Empty)));
    }

    #[test]
    fn skips_blank_lines() {
        let text = "a\n1.0\n\n2.0\n";
        let dm = read_csv(text.as_bytes()).unwrap();
        assert_eq!(dm.samples(), 2);
    }

    #[test]
    fn error_display_is_helpful() {
        let e = CsvError::BadNumber { line: 4, column: 2 };
        assert!(e.to_string().contains("line 4"));
        assert!(CsvError::Empty.to_string().contains("no data"));
    }
}

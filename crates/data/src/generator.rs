//! Seeded synthetic equivalents of the paper's two evaluation datasets.
//!
//! The originals (EPFL campus sensors; S&P 500 intraday quotes) are not
//! public. These generators reproduce the *structure* the AFFINITY
//! framework exploits — groups of series that are approximately affine
//! images of a small set of latent signals — at exactly the Table 3
//! shapes. See DESIGN.md §4 for the substitution rationale.

use crate::matrix::DataMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Configuration for the synthetic **sensor-data** set.
///
/// Defaults mirror Table 3: 670 daily series of 720 samples (134 sensors ×
/// 5 days at a 2-minute sampling interval).
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of series (`n`).
    pub series: usize,
    /// Samples per series (`m`).
    pub samples: usize,
    /// Number of latent sensor classes (temperature, humidity, …).
    pub classes: usize,
    /// Standard deviation of the AR(1) measurement noise.
    pub noise: f64,
    /// AR(1) coefficient of the measurement noise.
    pub noise_ar: f64,
    /// RNG seed; equal seeds give bitwise-identical datasets.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            series: 670,
            samples: 720,
            classes: 8,
            noise: 0.05,
            noise_ar: 0.7,
            seed: 0xAFF1_0001,
        }
    }
}

impl SensorConfig {
    /// A small configuration for unit tests and quick demos.
    pub fn reduced(series: usize, samples: usize) -> Self {
        SensorConfig {
            series,
            samples,
            classes: 4.min(series.max(1)),
            ..SensorConfig::default()
        }
    }
}

/// Configuration for the synthetic **stock-data** set.
///
/// Defaults mirror Table 3: 996 series of 1950 samples (one trading week
/// of 1-minute quotes: 5 × 390 minutes).
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Number of series (`n`).
    pub series: usize,
    /// Samples per series (`m`).
    pub samples: usize,
    /// Number of sectors.
    pub sectors: usize,
    /// Per-minute volatility of the idiosyncratic return component.
    pub idio_vol: f64,
    /// Per-minute volatility of the market factor.
    pub market_vol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        StockConfig {
            series: 996,
            samples: 1950,
            sectors: 10,
            idio_vol: 0.0008,
            market_vol: 0.0012,
            seed: 0xAFF1_0002,
        }
    }
}

impl StockConfig {
    /// A small configuration for unit tests and quick demos.
    pub fn reduced(series: usize, samples: usize) -> Self {
        StockConfig {
            series,
            samples,
            sectors: 4.min(series.max(1)),
            ..StockConfig::default()
        }
    }
}

/// Standard normal draw via Box–Muller (keeps us independent of
/// `rand_distr`).
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Generate the synthetic sensor dataset.
///
/// Each latent class `c` has a diurnal base signal (one fundamental and
/// one harmonic of the daily cycle plus a slow trend). Series `v` belongs
/// to class `v mod classes` and is an affine image `g·base + o` of its
/// class signal, mixed with a small amount of a second class (cross-class
/// leakage) and AR(1) noise. Labels are `sensor<k>-day<d>`.
///
/// # Panics
/// Panics if `series`, `samples` or `classes` is zero.
pub fn sensor_dataset(cfg: &SensorConfig) -> DataMatrix {
    assert!(cfg.series > 0 && cfg.samples > 0 && cfg.classes > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = cfg.samples;

    // Latent class signals.
    let mut bases: Vec<Vec<f64>> = Vec::with_capacity(cfg.classes);
    for _ in 0..cfg.classes {
        let a1 = rng.gen_range(0.6..1.4);
        let a2 = rng.gen_range(0.1..0.5);
        let p1 = rng.gen_range(0.0..2.0 * PI);
        let p2 = rng.gen_range(0.0..2.0 * PI);
        let trend = rng.gen_range(-0.4..0.4);
        let base: Vec<f64> = (0..m)
            .map(|i| {
                let t = i as f64 / m as f64;
                a1 * (2.0 * PI * t + p1).sin() + a2 * (4.0 * PI * t + p2).sin() + trend * t
            })
            .collect();
        bases.push(base);
    }

    let mut columns = Vec::with_capacity(cfg.series);
    let mut labels = Vec::with_capacity(cfg.series);
    for v in 0..cfg.series {
        let class = v % cfg.classes;
        let alt = (v / cfg.classes) % cfg.classes;
        let gain = rng.gen_range(0.5..2.0);
        let offset = rng.gen_range(10.0..30.0);
        let leak = rng.gen_range(0.0..0.15);
        let mut noise_state = 0.0;
        let col: Vec<f64> = (0..m)
            .map(|i| {
                noise_state = cfg.noise_ar * noise_state + cfg.noise * randn(&mut rng);
                gain * bases[class][i] + leak * bases[alt][i] + offset + noise_state
            })
            .collect();
        columns.push(col);
        labels.push(format!("sensor{}-day{}", v % 134, v / 134));
    }
    let mut dm = DataMatrix::from_series(columns);
    dm.set_labels(labels);
    dm
}

/// Generate the synthetic stock dataset.
///
/// A CAPM-style factor model (the paper itself motivates correlation
/// queries with CAPM, refs [8, 10]): per-minute log-returns are
/// `β_m·market + β_s·sector + ε`, cumulated into log-prices and
/// exponentiated around a per-stock base price. Labels are `STK<v>`.
///
/// # Panics
/// Panics if `series`, `samples` or `sectors` is zero.
pub fn stock_dataset(cfg: &StockConfig) -> DataMatrix {
    assert!(cfg.series > 0 && cfg.samples > 0 && cfg.sectors > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = cfg.samples;

    // Market factor returns.
    let market: Vec<f64> = (0..m).map(|_| cfg.market_vol * randn(&mut rng)).collect();
    // Sector factor returns.
    let sectors: Vec<Vec<f64>> = (0..cfg.sectors)
        .map(|_| {
            (0..m)
                .map(|_| 0.7 * cfg.market_vol * randn(&mut rng))
                .collect()
        })
        .collect();

    let mut columns = Vec::with_capacity(cfg.series);
    let mut labels = Vec::with_capacity(cfg.series);
    for v in 0..cfg.series {
        let sector = v % cfg.sectors;
        let beta_m = rng.gen_range(0.5..1.5);
        let beta_s = rng.gen_range(0.3..1.2);
        let base_price: f64 = rng.gen_range(5.0..500.0);
        let mut log_price = base_price.ln();
        let sec = &sectors[sector];
        let col: Vec<f64> = (0..m)
            .map(|i| {
                let ret = beta_m * market[i] + beta_s * sec[i] + cfg.idio_vol * randn(&mut rng);
                log_price += ret;
                log_price.exp()
            })
            .collect();
        columns.push(col);
        labels.push(format!("STK{v}"));
    }
    let mut dm = DataMatrix::from_series(columns);
    dm.set_labels(labels);
    dm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(x: &[f64], y: &[f64]) -> f64 {
        let m = x.len() as f64;
        let mx = x.iter().sum::<f64>() / m;
        let my = y.iter().sum::<f64>() / m;
        let mut c = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (a, b) in x.iter().zip(y.iter()) {
            c += (a - mx) * (b - my);
            vx += (a - mx) * (a - mx);
            vy += (b - my) * (b - my);
        }
        c / (vx * vy).sqrt()
    }

    #[test]
    fn default_shapes_match_table3() {
        let s = SensorConfig::default();
        assert_eq!((s.series, s.samples), (670, 720));
        let k = StockConfig::default();
        assert_eq!((k.series, k.samples), (996, 1950));
    }

    #[test]
    fn sensor_generation_is_deterministic() {
        let cfg = SensorConfig::reduced(12, 64);
        let a = sensor_dataset(&cfg);
        let b = sensor_dataset(&cfg);
        assert_eq!(a, b);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        assert_ne!(sensor_dataset(&cfg2), a);
    }

    #[test]
    fn stock_generation_is_deterministic() {
        let cfg = StockConfig::reduced(10, 50);
        assert_eq!(stock_dataset(&cfg), stock_dataset(&cfg));
    }

    #[test]
    fn sensor_same_class_series_are_strongly_correlated() {
        let cfg = SensorConfig::reduced(16, 256);
        let dm = sensor_dataset(&cfg);
        // Series 0 and 4 share class 0 (classes = 4).
        let same = corr(dm.series(0), dm.series(4)).abs();
        assert!(same > 0.8, "same-class correlation {same}");
    }

    #[test]
    fn stock_prices_are_positive_and_correlated_within_sector() {
        let cfg = StockConfig::reduced(8, 400);
        let dm = stock_dataset(&cfg);
        for v in 0..8 {
            assert!(dm.series(v).iter().all(|p| *p > 0.0));
        }
        // 0 and 4 share sector 0 plus the market factor.
        let c = corr(dm.series(0), dm.series(4));
        assert!(c > 0.3, "within-sector correlation {c}");
    }

    #[test]
    fn labels_follow_conventions() {
        let dm = sensor_dataset(&SensorConfig::reduced(3, 16));
        assert!(dm.label(0).starts_with("sensor"));
        let dm = stock_dataset(&StockConfig::reduced(3, 16));
        assert_eq!(dm.label(2), "STK2");
    }

    #[test]
    fn series_are_not_constant() {
        let dm = sensor_dataset(&SensorConfig::reduced(5, 128));
        for v in 0..5 {
            let s = dm.series(v);
            let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(max - min > 1e-6);
        }
    }
}

//! # affinity-data
//!
//! Data model and dataset substrate for the AFFINITY framework.
//!
//! The paper evaluates on two proprietary datasets (Table 3):
//!
//! * **sensor-data** — 670 daily series (m = 720 samples at 2-minute
//!   intervals) from 134 campus environmental sensors;
//! * **stock-data** — 996 intraday series (m = 1950 samples at 1-minute
//!   intervals over one week) from S&P 500 stocks and ETFs.
//!
//! Neither is publicly available, so [`generator`] provides seeded
//! synthetic equivalents that preserve the structural property AFFINITY
//! exploits: *groups of series that are near-affine images of a small
//! number of latent signals* (sensor classes sharing diurnal patterns;
//! stocks loading on market/sector factors). Shapes match Table 3 exactly.
//!
//! [`matrix`] defines the [`DataMatrix`] (`m×n`, one series per column)
//! with the identifier conventions of paper Sec. 2 ([`SeriesId`],
//! [`SequencePair`]), [`source`] defines the [`SeriesSource`] column
//! access abstraction the out-of-core pipeline streams through, [`csv`]
//! round-trips matrices through CSV, and [`workload`] hosts the
//! power-law sampler behind the online experiment (Sec. 6.2).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod generator;
pub mod matrix;
pub mod slow;
pub mod source;
pub mod workload;

pub use generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
pub use matrix::{DataMatrix, SequencePair, SeriesId};
pub use slow::SlowSource;
pub use source::{ColumnRead, SeriesSource, SourceError};
pub use workload::ZipfSampler;

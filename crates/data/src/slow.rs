//! A latency-injecting column-read double for I/O-overlap experiments.
//!
//! On a developer box the OS page cache serves "cold" store reads in
//! microseconds, which hides exactly the latency an asynchronous
//! prefetcher exists to overlap (the honest-measurement gap recorded
//! for the first out-of-core benchmark run). [`SlowSource`] wraps any
//! [`ColumnRead`] backing and charges a configurable delay per read
//! *request* — one sleep per [`ColumnRead::read_column`] call and one
//! per [`ColumnRead::read_column_range`] call, mimicking
//! seek-dominated media where a contiguous batch costs about the same
//! as a single-column fetch. It also counts requests and watches for
//! two concurrent reads of the same column, so tests can assert that a
//! cache layer dedups in-flight fetches instead of decoding a column
//! twice.

use crate::matrix::SeriesId;
use crate::source::{ColumnRead, SeriesSource, SourceError};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// A [`ColumnRead`] (and [`SeriesSource`]) wrapper that sleeps for a
/// fixed delay on every read request, counting requests as it goes.
///
/// ```
/// use affinity_data::slow::SlowSource;
/// use affinity_data::source::ColumnRead;
/// use affinity_data::DataMatrix;
/// use std::time::Duration;
///
/// let dm = DataMatrix::from_series(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let slow = SlowSource::new(dm, Duration::from_micros(50));
/// let mut buf = Vec::new();
/// slow.read_column(1, &mut buf).unwrap();
/// assert_eq!(buf, &[3.0, 4.0]);
/// assert_eq!(slow.reads(), 1);
/// ```
#[derive(Debug)]
pub struct SlowSource<B> {
    inner: B,
    delay: Duration,
    reads: AtomicU64,
    columns_read: AtomicU64,
    /// Readers currently inside each column; used to detect overlapping
    /// same-column reads (a cache layer decoding one column twice).
    in_column: Vec<AtomicU32>,
    /// Cumulative reads per column — lets tests assert a pinned column
    /// never goes back to the medium while pinned.
    column_reads: Vec<AtomicU64>,
    overlap: AtomicBool,
}

impl<B: ColumnRead> SlowSource<B> {
    /// Wrap `inner`, charging `delay` per read request.
    pub fn new(inner: B, delay: Duration) -> Self {
        let n = inner.series_count();
        SlowSource {
            inner,
            delay,
            reads: AtomicU64::new(0),
            columns_read: AtomicU64::new(0),
            in_column: (0..n).map(|_| AtomicU32::new(0)).collect(),
            column_reads: (0..n).map(|_| AtomicU64::new(0)).collect(),
            overlap: AtomicBool::new(false),
        }
    }

    /// The wrapped backing.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Read *requests* served so far (a range read counts once — that
    /// is the point of batching).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Individual columns decoded so far (a range read counts once per
    /// column it covered).
    pub fn columns_read(&self) -> u64 {
        self.columns_read.load(Ordering::Relaxed)
    }

    /// `true` if two reads of the *same column* ever overlapped in time
    /// — evidence that a cache layer above failed to dedup an in-flight
    /// fetch and decoded the column twice.
    pub fn same_column_overlap(&self) -> bool {
        self.overlap.load(Ordering::Relaxed)
    }

    /// How many times column `v` has reached the medium (0 for columns
    /// that were always served from a cache above).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn reads_of(&self, v: SeriesId) -> u64 {
        self.column_reads[v].load(Ordering::SeqCst)
    }

    fn charge(&self, cols: std::ops::Range<usize>) -> ColumnGuard<'_> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.columns_read
            .fetch_add(cols.len() as u64, Ordering::Relaxed);
        for v in cols.clone() {
            self.column_reads[v].fetch_add(1, Ordering::SeqCst);
            if self.in_column[v].fetch_add(1, Ordering::SeqCst) > 0 {
                self.overlap.store(true, Ordering::SeqCst);
            }
        }
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        ColumnGuard {
            in_column: &self.in_column,
            cols,
        }
    }
}

/// Marks the wrapped columns as no-longer-being-read on drop, so error
/// paths unwind the occupancy counters too.
struct ColumnGuard<'a> {
    in_column: &'a [AtomicU32],
    cols: std::ops::Range<usize>,
}

impl Drop for ColumnGuard<'_> {
    fn drop(&mut self) {
        for v in self.cols.clone() {
            self.in_column[v].fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl<B: ColumnRead> ColumnRead for SlowSource<B> {
    fn samples(&self) -> usize {
        self.inner.samples()
    }

    fn series_count(&self) -> usize {
        self.inner.series_count()
    }

    fn read_column(&self, v: SeriesId, out: &mut Vec<f64>) -> Result<(), SourceError> {
        if v >= self.inner.series_count() {
            // Out-of-range requests don't reach the medium; don't charge.
            return self.inner.read_column(v, out);
        }
        let _guard = self.charge(v..v + 1);
        self.inner.read_column(v, out)
    }

    fn read_column_range(
        &self,
        first: usize,
        count: usize,
        sink: &mut dyn FnMut(SeriesId, &[f64]),
    ) -> Result<(), SourceError> {
        let end = first + count;
        if end > self.inner.series_count() {
            return self.inner.read_column_range(first, count, sink);
        }
        // One delay for the whole contiguous region: batched readahead
        // pays the latency once.
        let _guard = self.charge(first..end);
        self.inner.read_column_range(first, count, sink)
    }
}

/// Direct streamed access with the same delay accounting, so the double
/// can also stand in for an uncached on-disk source.
impl<B: ColumnRead> SeriesSource for SlowSource<B> {
    fn samples(&self) -> usize {
        self.inner.samples()
    }

    fn series_count(&self) -> usize {
        self.inner.series_count()
    }

    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError> {
        ColumnRead::read_column(self, v, buf)?;
        Ok(&buf[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DataMatrix;

    fn matrix() -> DataMatrix {
        DataMatrix::from_series(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn delegates_and_counts() {
        let slow = SlowSource::new(matrix(), Duration::ZERO);
        let mut buf = Vec::new();
        slow.read_column(0, &mut buf).unwrap();
        slow.read_column(1, &mut buf).unwrap();
        let mut cols = 0;
        slow.read_column_range(0, 2, &mut |_, _| cols += 1).unwrap();
        assert_eq!(cols, 2);
        assert_eq!(slow.reads(), 3, "range read charged once");
        assert_eq!(slow.columns_read(), 4);
        assert!(!slow.same_column_overlap());
        assert_eq!(ColumnRead::samples(&slow), 3);
        assert_eq!(ColumnRead::series_count(&slow), 2);
    }

    #[test]
    fn injects_the_configured_delay() {
        let slow = SlowSource::new(matrix(), Duration::from_millis(5));
        let mut buf = Vec::new();
        let t = std::time::Instant::now();
        slow.read_column(0, &mut buf).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn out_of_range_is_not_charged() {
        let slow = SlowSource::new(matrix(), Duration::ZERO);
        let mut buf = Vec::new();
        assert!(slow.read_column(9, &mut buf).is_err());
        assert!(slow.read_column_range(1, 9, &mut |_, _| {}).is_err());
        assert_eq!(slow.reads(), 0);
    }

    #[test]
    fn overlap_detector_fires_on_concurrent_same_column_reads() {
        let slow = SlowSource::new(matrix(), Duration::from_millis(10));
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut buf = Vec::new();
                    slow.read_column(0, &mut buf).unwrap();
                });
            }
        });
        assert!(slow.same_column_overlap());
    }

    #[test]
    fn is_a_series_source() {
        let dm = matrix();
        let slow = SlowSource::new(dm.clone(), Duration::ZERO);
        let mut buf = Vec::new();
        assert_eq!(slow.read_into(1, &mut buf).unwrap(), dm.series(1));
        assert_eq!(slow.inner().series(0), dm.series(0));
    }
}

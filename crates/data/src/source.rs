//! The [`SeriesSource`] abstraction: column access without residency.
//!
//! Every model-construction kernel in this workspace (AFCLST, SYMEX,
//! MEC preprocessing, SCAPE construction) touches the data matrix the
//! same way: *fetch one series, scan it, move on*. [`SeriesSource`]
//! captures exactly that contract, so the kernels can run unchanged
//! over
//!
//! * a fully resident [`DataMatrix`] (fetches are zero-copy borrows),
//! * an on-disk `affinity_storage::MatrixStore` (each fetch is one
//!   checksummed column read into a caller-provided buffer), or
//! * a bounded-memory `affinity_storage::CachedStore` (an LRU of
//!   recently fetched columns with pinning for hot pivot columns).
//!
//! The streamed and resident paths execute the same floating-point
//! operations in the same order, so a model built through any source
//! is **bit-for-bit identical** to the resident build — the workspace
//! equivalence suite (`tests/outofcore_equivalence.rs`) pins this.
//!
//! ```
//! use affinity_data::{DataMatrix, SeriesSource};
//!
//! let dm = DataMatrix::from_series(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let mut buf = Vec::new();
//! // The resident source hands back a borrow; `buf` stays untouched.
//! let col = dm.read_into(1, &mut buf).unwrap();
//! assert_eq!(col, &[3.0, 4.0]);
//! assert!(dm.read_into(2, &mut buf).is_err());
//! ```

use crate::matrix::{DataMatrix, SeriesId};
use std::cell::RefCell;
use std::fmt;

/// Errors raised while fetching series from a [`SeriesSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A series index outside `0..series_count()`.
    OutOfRange {
        /// Requested index.
        requested: usize,
        /// Number of series the source holds.
        available: usize,
    },
    /// A backend failure (I/O error, checksum mismatch, …); carries the
    /// backend's description.
    Backend(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::OutOfRange {
                requested,
                available,
            } => write!(f, "series {requested} out of range ({available} available)"),
            SourceError::Backend(msg) => write!(f, "series source backend: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Column access for the model-construction kernels: resident matrices,
/// on-disk stores, and caches all implement this.
///
/// Implementations must be [`Sync`]: the SYMEX fit phase and the SCAPE
/// pivot-statistics pass fetch columns from several worker lanes at
/// once (each lane with its own buffer).
pub trait SeriesSource: Sync {
    /// Samples per series (`m`).
    fn samples(&self) -> usize;

    /// Number of series (`n`).
    fn series_count(&self) -> usize;

    /// Fetch series `v`.
    ///
    /// Resident sources return a borrow of their own storage and leave
    /// `buf` untouched; streaming sources fill `buf` (reusing its
    /// allocation) and return a borrow of it. Either way the returned
    /// slice has [`SeriesSource::samples`] elements.
    ///
    /// # Errors
    /// [`SourceError::OutOfRange`] for bad indices,
    /// [`SourceError::Backend`] for backend failures.
    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError>;

    /// Advisory hint that series `v` is about to be fetched repeatedly
    /// (e.g. a pivot's common series during the SYMEX fit phase).
    /// Caching sources keep pinned columns resident; the default is a
    /// no-op. Pins nest: every `pin` should be paired with an
    /// [`SeriesSource::unpin`].
    fn pin(&self, _v: SeriesId) {}

    /// Advisory announcement that the caller is about to read `cols`,
    /// **in this order**. Resident sources ignore it (the default
    /// no-op); caching sources may start pulling the columns from their
    /// backing store ahead of the consumer so compute overlaps I/O.
    ///
    /// Purely a scheduling hint: it must not change what any fetch
    /// returns, and callers never need to announce to be correct. Every
    /// model-construction pass in this workspace knows its column
    /// sequence up front and announces it before iterating (see
    /// [`prefetch_range`]).
    fn prefetch(&self, _cols: &[u32]) {}

    /// Release one [`SeriesSource::pin`] of series `v`. No-op by default.
    fn unpin(&self, _v: SeriesId) {}

    /// Read every column and assemble a resident [`DataMatrix`]
    /// (generic fallback; prefer backend-specific bulk reads when
    /// available).
    ///
    /// # Errors
    /// Propagates fetch errors.
    fn materialize(&self) -> Result<DataMatrix, SourceError> {
        let mut buf = Vec::new();
        let columns = (0..self.series_count())
            .map(|v| self.read_into(v, &mut buf).map(<[f64]>::to_vec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DataMatrix::from_series(columns))
    }
}

impl SeriesSource for DataMatrix {
    fn samples(&self) -> usize {
        DataMatrix::samples(self)
    }

    fn series_count(&self) -> usize {
        DataMatrix::series_count(self)
    }

    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        _buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError> {
        if v >= DataMatrix::series_count(self) {
            return Err(SourceError::OutOfRange {
                requested: v,
                available: DataMatrix::series_count(self),
            });
        }
        Ok(self.series(v))
    }
}

impl<S: SeriesSource + ?Sized> SeriesSource for &S {
    fn samples(&self) -> usize {
        (**self).samples()
    }

    fn series_count(&self) -> usize {
        (**self).series_count()
    }

    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError> {
        (**self).read_into(v, buf)
    }

    fn pin(&self, v: SeriesId) {
        (**self).pin(v)
    }

    fn unpin(&self, v: SeriesId) {
        (**self).unpin(v)
    }

    fn prefetch(&self, cols: &[u32]) {
        (**self).prefetch(cols)
    }
}

/// Announce the column range `range` to `source` (ascending order) —
/// the one-shot announcement shape of scattered parallel passes (e.g.
/// per-series fits sharded across lanes), where no single consumer
/// walks the sequence in order.
pub fn prefetch_range<S: SeriesSource + ?Sized>(source: &S, range: std::ops::Range<usize>) {
    let cols: Vec<u32> = range.map(|v| v as u32).collect();
    source.prefetch(&cols);
}

/// The identity column sequence `0..n` as announcement entries — the
/// plan of every full sequential pass (AFCLST's fused
/// marginal/assignment sweeps, MEC/SCAPE normalizer scans, streaming
/// warm start), fed to [`prefetch_window`] one position at a time.
pub fn scan_sequence(n: usize) -> Vec<u32> {
    (0..n).map(|v| v as u32).collect()
}

/// How far ahead of the consumer's position [`prefetch_window`]
/// announces. Comfortably larger than any realistic readahead depth
/// *plus* one in-flight span (columns already prefetched are
/// deduplicated away, so only the window's tail past the resident
/// readahead actually feeds the queue) — the bounded queue, not the
/// window, is what limits readahead.
pub const PREFETCH_WINDOW: usize = 64;

/// Announce the next [`PREFETCH_WINDOW`] entries of a planned column
/// sequence, starting at the entry about to be consumed.
///
/// Sequential passes call this once per iteration, *before* fetching
/// `seq[pos]`. Caching sources dedup entries that are already queued,
/// cached, or in flight, so the repeated overlap costs a few hash
/// probes per column — and entries a bounded readahead queue had to
/// drop earlier are naturally re-announced as the window slides over
/// them, so queue pressure never punches permanent holes in coverage.
pub fn prefetch_window<S: SeriesSource + ?Sized>(source: &S, seq: &[u32], pos: usize) {
    let end = (pos + PREFETCH_WINDOW).min(seq.len());
    if pos < end {
        source.prefetch(&seq[pos..end]);
    }
}

/// Owned-buffer column access — the contract cache layers need from
/// their *backing* store.
///
/// [`SeriesSource::read_into`] lets resident sources hand out borrows
/// of their own storage, which is what the kernels want but exactly
/// what a cache cannot store away. `ColumnRead` is the narrower
/// backing-side contract: every read lands in a caller-owned buffer, so
/// `affinity_storage::CachedStore` can wrap any implementor — the
/// on-disk `MatrixStore`, a resident [`DataMatrix`] (for tests), or a
/// latency-injecting [`SlowSource`](crate::slow::SlowSource) double.
pub trait ColumnRead: Send + Sync {
    /// Samples per series (`m`).
    fn samples(&self) -> usize;

    /// Number of series (`n`).
    fn series_count(&self) -> usize;

    /// Read series `v` into `out` (cleared and refilled, reusing its
    /// allocation).
    ///
    /// # Errors
    /// [`SourceError::OutOfRange`] / [`SourceError::Backend`] as for
    /// [`SeriesSource::read_into`].
    fn read_column(&self, v: SeriesId, out: &mut Vec<f64>) -> Result<(), SourceError>;

    /// Read the contiguous region `first .. first + count`, handing
    /// each decoded column to `sink(v, column)` in ascending order.
    ///
    /// The default loops [`ColumnRead::read_column`]; backends whose
    /// layout is contiguous (the `MatrixStore` file format) override it
    /// to fetch the whole region in **one** read request, which is what
    /// makes readahead batching worthwhile on high-latency media.
    ///
    /// # Errors
    /// Propagates per-column read failures; `sink` is only called for
    /// columns that decoded successfully.
    fn read_column_range(
        &self,
        first: usize,
        count: usize,
        sink: &mut dyn FnMut(SeriesId, &[f64]),
    ) -> Result<(), SourceError> {
        let mut buf = Vec::new();
        for v in first..first + count {
            self.read_column(v, &mut buf)?;
            sink(v, &buf);
        }
        Ok(())
    }
}

impl ColumnRead for DataMatrix {
    fn samples(&self) -> usize {
        DataMatrix::samples(self)
    }

    fn series_count(&self) -> usize {
        DataMatrix::series_count(self)
    }

    fn read_column(&self, v: SeriesId, out: &mut Vec<f64>) -> Result<(), SourceError> {
        if v >= DataMatrix::series_count(self) {
            return Err(SourceError::OutOfRange {
                requested: v,
                available: DataMatrix::series_count(self),
            });
        }
        out.clear();
        out.extend_from_slice(self.series(v));
        Ok(())
    }
}

thread_local! {
    /// Two per-thread column buffers, reused across every streamed fetch
    /// this thread performs (worker lanes are long-lived, so after
    /// warm-up the streaming hot paths are allocation-free per column).
    static COLUMN_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Run `f` with this thread's two reusable column buffers — the
/// "per-lane buffers" of the parallel streamed phases (one for a pivot
/// column held across a group, one for the member column of the moment).
///
/// Nested calls fall back to fresh buffers instead of panicking on the
/// `RefCell`, so reentrancy is safe (just unamortized).
pub fn with_column_buffers<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
    COLUMN_BUFS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut bufs) => {
            let (a, b) = &mut *bufs;
            f(a, b)
        }
        Err(_) => f(&mut Vec::new(), &mut Vec::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> DataMatrix {
        DataMatrix::from_series(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn resident_source_borrows_without_copy() {
        let dm = matrix();
        let mut buf = Vec::new();
        let s = dm.read_into(0, &mut buf).unwrap();
        assert_eq!(s, dm.series(0));
        assert!(buf.is_empty(), "resident fetch must not touch the buffer");
        assert_eq!(SeriesSource::samples(&dm), 3);
        assert_eq!(SeriesSource::series_count(&dm), 2);
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let dm = matrix();
        let mut buf = Vec::new();
        assert!(matches!(
            dm.read_into(2, &mut buf),
            Err(SourceError::OutOfRange {
                requested: 2,
                available: 2
            })
        ));
    }

    #[test]
    fn materialize_round_trips() {
        let dm = matrix();
        let back = SeriesSource::materialize(&dm).unwrap();
        assert_eq!(back.series(0), dm.series(0));
        assert_eq!(back.series(1), dm.series(1));
    }

    #[test]
    fn reference_delegation() {
        let dm = matrix();
        let r: &DataMatrix = &dm;
        let mut buf = Vec::new();
        assert_eq!(SeriesSource::series_count(&r), 2);
        assert_eq!(r.read_into(1, &mut buf).unwrap(), dm.series(1));
        r.pin(0);
        r.unpin(0);
    }

    #[test]
    fn column_buffers_are_reentrant() {
        with_column_buffers(|a, _| {
            a.push(1.0);
            with_column_buffers(|inner_a, _| {
                assert!(inner_a.is_empty(), "nested call gets fresh buffers");
            });
            assert_eq!(a.len(), 1);
        });
    }

    #[test]
    fn prefetch_is_a_noop_on_resident_sources() {
        let dm = matrix();
        dm.prefetch(&[0, 1, 99]); // advisory; bad indices must be harmless
        prefetch_range(&dm, 0..2);
        let r: &DataMatrix = &dm;
        r.prefetch(&[1]); // reference delegation compiles and is a no-op
    }

    #[test]
    fn column_read_copies_into_the_buffer() {
        let dm = matrix();
        let mut out = Vec::new();
        ColumnRead::read_column(&dm, 1, &mut out).unwrap();
        assert_eq!(out, dm.series(1));
        assert!(matches!(
            ColumnRead::read_column(&dm, 2, &mut out),
            Err(SourceError::OutOfRange { requested: 2, .. })
        ));
        assert_eq!(ColumnRead::samples(&dm), 3);
        assert_eq!(ColumnRead::series_count(&dm), 2);
    }

    #[test]
    fn column_range_default_visits_in_ascending_order() {
        let dm = matrix();
        let mut seen = Vec::new();
        dm.read_column_range(0, 2, &mut |v, col| seen.push((v, col.to_vec())))
            .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (0, dm.series(0).to_vec()));
        assert_eq!(seen[1], (1, dm.series(1).to_vec()));
        assert!(dm.read_column_range(1, 2, &mut |_, _| {}).is_err());
    }

    #[test]
    fn error_display() {
        let e = SourceError::OutOfRange {
            requested: 9,
            available: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(SourceError::Backend("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
    }
}

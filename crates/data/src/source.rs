//! The [`SeriesSource`] abstraction: column access without residency.
//!
//! Every model-construction kernel in this workspace (AFCLST, SYMEX,
//! MEC preprocessing, SCAPE construction) touches the data matrix the
//! same way: *fetch one series, scan it, move on*. [`SeriesSource`]
//! captures exactly that contract, so the kernels can run unchanged
//! over
//!
//! * a fully resident [`DataMatrix`] (fetches are zero-copy borrows),
//! * an on-disk `affinity_storage::MatrixStore` (each fetch is one
//!   checksummed column read into a caller-provided buffer), or
//! * a bounded-memory `affinity_storage::CachedStore` (an LRU of
//!   recently fetched columns with pinning for hot pivot columns).
//!
//! The streamed and resident paths execute the same floating-point
//! operations in the same order, so a model built through any source
//! is **bit-for-bit identical** to the resident build — the workspace
//! equivalence suite (`tests/outofcore_equivalence.rs`) pins this.
//!
//! ```
//! use affinity_data::{DataMatrix, SeriesSource};
//!
//! let dm = DataMatrix::from_series(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let mut buf = Vec::new();
//! // The resident source hands back a borrow; `buf` stays untouched.
//! let col = dm.read_into(1, &mut buf).unwrap();
//! assert_eq!(col, &[3.0, 4.0]);
//! assert!(dm.read_into(2, &mut buf).is_err());
//! ```

use crate::matrix::{DataMatrix, SeriesId};
use std::cell::RefCell;
use std::fmt;

/// Errors raised while fetching series from a [`SeriesSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A series index outside `0..series_count()`.
    OutOfRange {
        /// Requested index.
        requested: usize,
        /// Number of series the source holds.
        available: usize,
    },
    /// A backend failure (I/O error, checksum mismatch, …); carries the
    /// backend's description.
    Backend(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::OutOfRange {
                requested,
                available,
            } => write!(f, "series {requested} out of range ({available} available)"),
            SourceError::Backend(msg) => write!(f, "series source backend: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Column access for the model-construction kernels: resident matrices,
/// on-disk stores, and caches all implement this.
///
/// Implementations must be [`Sync`]: the SYMEX fit phase and the SCAPE
/// pivot-statistics pass fetch columns from several worker lanes at
/// once (each lane with its own buffer).
pub trait SeriesSource: Sync {
    /// Samples per series (`m`).
    fn samples(&self) -> usize;

    /// Number of series (`n`).
    fn series_count(&self) -> usize;

    /// Fetch series `v`.
    ///
    /// Resident sources return a borrow of their own storage and leave
    /// `buf` untouched; streaming sources fill `buf` (reusing its
    /// allocation) and return a borrow of it. Either way the returned
    /// slice has [`SeriesSource::samples`] elements.
    ///
    /// # Errors
    /// [`SourceError::OutOfRange`] for bad indices,
    /// [`SourceError::Backend`] for backend failures.
    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError>;

    /// Advisory hint that series `v` is about to be fetched repeatedly
    /// (e.g. a pivot's common series during the SYMEX fit phase).
    /// Caching sources keep pinned columns resident; the default is a
    /// no-op. Pins nest: every `pin` should be paired with an
    /// [`SeriesSource::unpin`].
    fn pin(&self, _v: SeriesId) {}

    /// Release one [`SeriesSource::pin`] of series `v`. No-op by default.
    fn unpin(&self, _v: SeriesId) {}

    /// Read every column and assemble a resident [`DataMatrix`]
    /// (generic fallback; prefer backend-specific bulk reads when
    /// available).
    ///
    /// # Errors
    /// Propagates fetch errors.
    fn materialize(&self) -> Result<DataMatrix, SourceError> {
        let mut buf = Vec::new();
        let columns = (0..self.series_count())
            .map(|v| self.read_into(v, &mut buf).map(<[f64]>::to_vec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DataMatrix::from_series(columns))
    }
}

impl SeriesSource for DataMatrix {
    fn samples(&self) -> usize {
        DataMatrix::samples(self)
    }

    fn series_count(&self) -> usize {
        DataMatrix::series_count(self)
    }

    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        _buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError> {
        if v >= DataMatrix::series_count(self) {
            return Err(SourceError::OutOfRange {
                requested: v,
                available: DataMatrix::series_count(self),
            });
        }
        Ok(self.series(v))
    }
}

impl<S: SeriesSource + ?Sized> SeriesSource for &S {
    fn samples(&self) -> usize {
        (**self).samples()
    }

    fn series_count(&self) -> usize {
        (**self).series_count()
    }

    fn read_into<'a>(
        &'a self,
        v: SeriesId,
        buf: &'a mut Vec<f64>,
    ) -> Result<&'a [f64], SourceError> {
        (**self).read_into(v, buf)
    }

    fn pin(&self, v: SeriesId) {
        (**self).pin(v)
    }

    fn unpin(&self, v: SeriesId) {
        (**self).unpin(v)
    }
}

thread_local! {
    /// Two per-thread column buffers, reused across every streamed fetch
    /// this thread performs (worker lanes are long-lived, so after
    /// warm-up the streaming hot paths are allocation-free per column).
    static COLUMN_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Run `f` with this thread's two reusable column buffers — the
/// "per-lane buffers" of the parallel streamed phases (one for a pivot
/// column held across a group, one for the member column of the moment).
///
/// Nested calls fall back to fresh buffers instead of panicking on the
/// `RefCell`, so reentrancy is safe (just unamortized).
pub fn with_column_buffers<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
    COLUMN_BUFS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut bufs) => {
            let (a, b) = &mut *bufs;
            f(a, b)
        }
        Err(_) => f(&mut Vec::new(), &mut Vec::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> DataMatrix {
        DataMatrix::from_series(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]])
    }

    #[test]
    fn resident_source_borrows_without_copy() {
        let dm = matrix();
        let mut buf = Vec::new();
        let s = dm.read_into(0, &mut buf).unwrap();
        assert_eq!(s, dm.series(0));
        assert!(buf.is_empty(), "resident fetch must not touch the buffer");
        assert_eq!(SeriesSource::samples(&dm), 3);
        assert_eq!(SeriesSource::series_count(&dm), 2);
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let dm = matrix();
        let mut buf = Vec::new();
        assert!(matches!(
            dm.read_into(2, &mut buf),
            Err(SourceError::OutOfRange {
                requested: 2,
                available: 2
            })
        ));
    }

    #[test]
    fn materialize_round_trips() {
        let dm = matrix();
        let back = SeriesSource::materialize(&dm).unwrap();
        assert_eq!(back.series(0), dm.series(0));
        assert_eq!(back.series(1), dm.series(1));
    }

    #[test]
    fn reference_delegation() {
        let dm = matrix();
        let r: &DataMatrix = &dm;
        let mut buf = Vec::new();
        assert_eq!(SeriesSource::series_count(&r), 2);
        assert_eq!(r.read_into(1, &mut buf).unwrap(), dm.series(1));
        r.pin(0);
        r.unpin(0);
    }

    #[test]
    fn column_buffers_are_reentrant() {
        with_column_buffers(|a, _| {
            a.push(1.0);
            with_column_buffers(|inner_a, _| {
                assert!(inner_a.is_empty(), "nested call gets fresh buffers");
            });
            assert_eq!(a.len(), 1);
        });
    }

    #[test]
    fn error_display() {
        let e = SourceError::OutOfRange {
            requested: 9,
            available: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(SourceError::Backend("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
    }
}

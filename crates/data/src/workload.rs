//! Power-law (Zipf) sampling for online query workloads.
//!
//! The online experiment (paper Sec. 6.2) draws the series identifiers of
//! each MEC query from a power-law distribution — "some entities (stocks
//! or sensors) are popular as compared to others". This module implements
//! a seeded Zipf sampler over `0..n` by inverse-CDF binary search.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf-distributed sampler over the identifiers `0..n`.
///
/// Identifier `i` (rank `i+1`) is drawn with probability proportional to
/// `1/(i+1)^s`. The cumulative table costs `O(n)` memory and each draw is
/// one `O(log n)` binary search.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    /// Create a sampler over `0..n` with exponent `s` and a fixed seed.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "zipf sampler needs a non-empty domain");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one identifier.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        // First index with cdf >= u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Draw `k` *distinct* identifiers (the paper's queries touch 10
    /// different series). Falls back to sequential fill if `k` exhausts
    /// the domain.
    ///
    /// # Panics
    /// Panics if `k > domain`.
    pub fn sample_distinct(&mut self, k: usize) -> Vec<usize> {
        let n = self.domain();
        assert!(k <= n, "cannot draw {k} distinct ids from domain {n}");
        let mut out = Vec::with_capacity(k);
        let mut seen = vec![false; n];
        // Rejection sampling is fast while k << n; guard with a budget.
        let mut budget = 50 * k + 100;
        while out.len() < k && budget > 0 {
            budget -= 1;
            let id = self.sample();
            if !seen[id] {
                seen[id] = true;
                out.push(id);
            }
        }
        // Deterministic completion in the pathological case.
        let mut next = 0;
        while out.len() < k {
            if !seen[next] {
                seen[next] = true;
                out.push(next);
            }
            next += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_domain() {
        let mut z = ZipfSampler::new(10, 1.0, 42);
        for _ in 0..1000 {
            assert!(z.sample() < 10);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ZipfSampler::new(100, 1.2, 7);
        let mut b = ZipfSampler::new(100, 1.2, 7);
        let va: Vec<usize> = (0..50).map(|_| a.sample()).collect();
        let vb: Vec<usize> = (0..50).map(|_| b.sample()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn low_ranks_dominate() {
        let mut z = ZipfSampler::new(1000, 1.1, 3);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20000 {
            counts[z.sample()] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[500..].iter().sum();
        assert!(
            head > tail,
            "power-law head ({head}) should outweigh the tail ({tail})"
        );
        assert!(counts[0] > counts[100], "rank 1 beats rank 101");
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let mut z = ZipfSampler::new(4, 0.0, 11);
        let mut counts = vec![0usize; 4];
        for _ in 0..8000 {
            counts[z.sample()] += 1;
        }
        for c in counts {
            assert!(
                (c as i64 - 2000).abs() < 400,
                "count {c} too far from uniform"
            );
        }
    }

    #[test]
    fn distinct_sampling_has_no_duplicates() {
        let mut z = ZipfSampler::new(50, 1.0, 9);
        for _ in 0..20 {
            let ids = z.sample_distinct(10);
            assert_eq!(ids.len(), 10);
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10);
        }
    }

    #[test]
    fn distinct_sampling_can_exhaust_domain() {
        let mut z = ZipfSampler::new(5, 2.0, 1);
        let ids = z.sample_distinct(5);
        let mut sorted = ids;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn too_many_distinct_panics() {
        ZipfSampler::new(3, 1.0, 1).sample_distinct(4);
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        ZipfSampler::new(0, 1.0, 1);
    }
}

//! The data matrix and the identifier conventions of paper Sec. 2.

/// Identifier of a single time series (`u ∈ I`, paper Sec. 2.1).
pub type SeriesId = usize;

/// An unordered pair of distinct series identifiers, stored as
/// `(u, v)` with `u < v` — an element of the sequence pair set `P`
/// (paper Sec. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SequencePair {
    /// Smaller identifier.
    pub u: SeriesId,
    /// Larger identifier.
    pub v: SeriesId,
}

impl SequencePair {
    /// Canonicalize `(a, b)` into a sequence pair.
    ///
    /// # Panics
    /// Panics if `a == b`; a sequence pair holds *distinct* series.
    pub fn new(a: SeriesId, b: SeriesId) -> Self {
        assert_ne!(a, b, "sequence pair requires distinct identifiers");
        if a < b {
            SequencePair { u: a, v: b }
        } else {
            SequencePair { u: b, v: a }
        }
    }

    /// The other member given one member.
    ///
    /// # Panics
    /// Panics if `id` is not a member of the pair.
    pub fn other(&self, id: SeriesId) -> SeriesId {
        if id == self.u {
            self.v
        } else if id == self.v {
            self.u
        } else {
            panic!("{id} is not a member of pair ({}, {})", self.u, self.v)
        }
    }

    /// `true` if `id` is one of the two members.
    pub fn contains(&self, id: SeriesId) -> bool {
        id == self.u || id == self.v
    }
}

/// The `m×n` data matrix `S` (paper Sec. 2): `n` time series, one per
/// column, each with `m` samples. Column-major storage keeps each series
/// contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMatrix {
    samples: usize,
    series: usize,
    /// Optional per-series labels (e.g. ticker symbols / sensor names).
    labels: Vec<String>,
    /// `data[v * samples ..][..samples]` is series `v`.
    data: Vec<f64>,
}

impl DataMatrix {
    /// Build from per-series columns.
    ///
    /// # Panics
    /// Panics on ragged columns or zero series/samples.
    pub fn from_series(columns: Vec<Vec<f64>>) -> Self {
        assert!(!columns.is_empty(), "data matrix needs at least one series");
        let m = columns[0].len();
        assert!(m > 0, "series must be non-empty");
        let n = columns.len();
        let mut data = Vec::with_capacity(m * n);
        for c in &columns {
            assert_eq!(c.len(), m, "all series must have the same length");
            data.extend_from_slice(c);
        }
        let labels = (0..n).map(|i| format!("s{i}")).collect();
        DataMatrix {
            samples: m,
            series: n,
            labels,
            data,
        }
    }

    /// Build from a raw column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != samples * series` or either dim is zero.
    pub fn from_raw(samples: usize, series: usize, data: Vec<f64>) -> Self {
        assert!(samples > 0 && series > 0, "dimensions must be positive");
        assert_eq!(data.len(), samples * series, "buffer size mismatch");
        let labels = (0..series).map(|i| format!("s{i}")).collect();
        DataMatrix {
            samples,
            series,
            labels,
            data,
        }
    }

    /// Number of samples per series (`m`).
    #[inline]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of series (`n`).
    #[inline]
    pub fn series_count(&self) -> usize {
        self.series
    }

    /// Borrow series `v` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn series(&self, v: SeriesId) -> &[f64] {
        assert!(v < self.series, "series id {v} out of range");
        &self.data[v * self.samples..(v + 1) * self.samples]
    }

    /// Raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Label of series `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn label(&self, v: SeriesId) -> &str {
        &self.labels[v]
    }

    /// All labels, in series order (`n` entries).
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Replace all labels.
    ///
    /// # Panics
    /// Panics if the count differs from the series count.
    pub fn set_labels(&mut self, labels: Vec<String>) {
        assert_eq!(labels.len(), self.series, "label count mismatch");
        self.labels = labels;
    }

    /// All sequence pairs `P = {(u,v) | u < v}` in lexicographic order
    /// (`n(n−1)/2` of them).
    pub fn sequence_pairs(&self) -> Vec<SequencePair> {
        let n = self.series;
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n {
            for v in u + 1..n {
                out.push(SequencePair { u, v });
            }
        }
        out
    }

    /// Number of sequence pairs, i.e. the paper's "max. affine
    /// relationships" row of Table 3.
    pub fn pair_count(&self) -> usize {
        self.series * (self.series - 1) / 2
    }

    /// A new matrix holding only the first `k` series — used by the
    /// scalability sweeps (Figs. 13–14) to grow the relationship count.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > series_count()`.
    pub fn prefix(&self, k: usize) -> DataMatrix {
        assert!(k > 0 && k <= self.series, "invalid prefix size {k}");
        DataMatrix {
            samples: self.samples,
            series: k,
            labels: self.labels[..k].to_vec(),
            data: self.data[..k * self.samples].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_canonicalization() {
        let p = SequencePair::new(5, 2);
        assert_eq!((p.u, p.v), (2, 5));
        assert_eq!(p.other(2), 5);
        assert_eq!(p.other(5), 2);
        assert!(p.contains(2) && p.contains(5) && !p.contains(3));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn pair_rejects_equal_ids() {
        SequencePair::new(3, 3);
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn other_rejects_non_member() {
        SequencePair::new(1, 2).other(7);
    }

    #[test]
    fn matrix_roundtrip() {
        let m = DataMatrix::from_series(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(m.samples(), 2);
        assert_eq!(m.series_count(), 3);
        assert_eq!(m.series(1), &[3.0, 4.0]);
        assert_eq!(m.label(0), "s0");
        let raw = DataMatrix::from_raw(2, 3, m.as_slice().to_vec());
        assert_eq!(raw.series(2), m.series(2));
    }

    #[test]
    fn sequence_pairs_complete_and_ordered() {
        let m = DataMatrix::from_series(vec![vec![0.0]; 4]);
        let ps = m.sequence_pairs();
        assert_eq!(ps.len(), 6);
        assert_eq!(m.pair_count(), 6);
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
        assert!(ps.iter().all(|p| p.u < p.v && p.v < 4));
    }

    #[test]
    fn prefix_takes_leading_series() {
        let m = DataMatrix::from_series(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let p = m.prefix(2);
        assert_eq!(p.series_count(), 2);
        assert_eq!(p.series(1), &[2.0]);
    }

    #[test]
    fn labels_can_be_replaced() {
        let mut m = DataMatrix::from_series(vec![vec![1.0], vec![2.0]]);
        m.set_labels(vec!["INTC".into(), "AMD".into()]);
        assert_eq!(m.label(0), "INTC");
        assert_eq!(m.label(1), "AMD");
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_series_rejected() {
        DataMatrix::from_series(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_series_panics() {
        DataMatrix::from_series(vec![vec![1.0]]).series(1);
    }
}

//! Properties of the affine-set codec: encoding is a bijection on the
//! models SYMEX actually produces (decode ∘ encode = identity,
//! bit-for-bit, for randomized dataset shapes from both generators),
//! and *no* byte-level damage — truncation at any length, a bit flip at
//! any offset — can make the decoder panic: it either rejects with a
//! typed `DecodeError` or yields a structurally valid set.

use affinity_core::afclst::AfclstParams;
use affinity_core::symex::{AffineSet, Symex, SymexParams, SymexVariant};
use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity_data::DataMatrix;
use proptest::prelude::*;

fn build_affine(data: &DataMatrix, k: usize, seed: u64) -> AffineSet {
    let n = data.series_count();
    Symex::new(SymexParams {
        afclst: AfclstParams {
            k: k.min(n - 1).max(1),
            gamma_max: 10,
            delta_min: 0,
            seed,
        },
        variant: SymexVariant::Plus,
        threads: 1,
    })
    .run(data)
    .unwrap()
}

/// Decode ∘ encode = identity, checked bit-for-bit via re-encoding
/// (the encoder is deterministic, so equal bytes ⇒ equal models) plus
/// direct field comparison of every relationship.
fn check_roundtrip(affine: &AffineSet) {
    let bytes = affine.to_bytes();
    let back = AffineSet::from_bytes(&bytes).expect("own encoding must decode");
    assert_eq!(back.series_count(), affine.series_count());
    assert_eq!(back.len(), affine.len());
    for (a, b) in affine.relationships().iter().zip(back.relationships()) {
        assert_eq!(a.pair, b.pair);
        assert_eq!(a.pivot, b.pivot);
        assert_eq!(a.common, b.common);
        for r in 0..2 {
            assert_eq!(a.b[r].to_bits(), b.b[r].to_bits(), "b diverges");
            for c in 0..2 {
                assert_eq!(a.a[r][c].to_bits(), b.a[r][c].to_bits(), "A diverges");
            }
        }
    }
    for (a, b) in affine
        .series_relationships()
        .iter()
        .zip(back.series_relationships())
    {
        assert_eq!(a.series, b.series);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.c.to_bits(), b.c.to_bits());
        assert_eq!(a.d.to_bits(), b.d.to_bits());
    }
    assert_eq!(back.to_bytes(), bytes, "re-encoding diverges");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn affine_set_roundtrips_bit_identically_on_sensor_data(
        n in 4usize..16,
        m in 16usize..48,
        k in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        check_roundtrip(&build_affine(&data, k, seed));
    }

    #[test]
    fn affine_set_roundtrips_bit_identically_on_stock_data(
        n in 4usize..14,
        m in 16usize..40,
        k in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let data = stock_dataset(&StockConfig::reduced(n, m));
        check_roundtrip(&build_affine(&data, k, seed));
    }

    #[test]
    fn truncated_affine_bytes_never_panic(
        n in 4usize..10,
        m in 16usize..32,
        seed in 0u64..1_000_000,
        cut_num in 0u32..1000,
    ) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let bytes = build_affine(&data, 2, seed).to_bytes();
        let cut = (cut_num as usize * bytes.len()) / 1000;
        // Every prefix must be rejected (typed), not panic: the codec
        // has no trailing slack, so a strict prefix is always invalid.
        prop_assert!(AffineSet::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn bit_flipped_affine_bytes_never_panic(
        n in 4usize..10,
        m in 16usize..32,
        seed in 0u64..1_000_000,
        offset_num in 0u32..1000,
        bit in 0u8..8,
    ) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let mut bytes = build_affine(&data, 2, seed).to_bytes();
        let offset = (offset_num as usize * bytes.len()) / 1000;
        bytes[offset] ^= 1u8 << bit;
        // A flip may land in an f64 payload (decodes to a different but
        // structurally valid set) or in structure (typed rejection).
        // Either way: no panic, no OOM.
        let _ = AffineSet::from_bytes(&bytes);
    }
}

//! Property: the batched (GEMV-per-pivot) MEC sweep equals the scalar
//! `pair_value` path to ≤1e-12 for **every** pairwise measure — the
//! paper's three plus the dot-product-derived extensions — on random
//! reduced datasets from both generators.

use affinity_core::afclst::AfclstParams;
use affinity_core::measures::PairwiseMeasure;
use affinity_core::mec::MecEngine;
use affinity_core::symex::{Symex, SymexParams, SymexVariant};
use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity_data::{DataMatrix, SequencePair};
use proptest::prelude::*;

fn check_batched_matches_scalar(data: &DataMatrix, k: usize, seed: u64, threads: usize) {
    let n = data.series_count();
    let affine = Symex::new(SymexParams {
        afclst: AfclstParams {
            k: k.min(n - 1).max(1),
            gamma_max: 10,
            delta_min: 0,
            seed,
        },
        variant: SymexVariant::Plus,
        threads,
    })
    .run(data)
    .unwrap();
    let engine = MecEngine::with_threads(data, &affine, threads);
    for measure in PairwiseMeasure::EXTENDED {
        let batched = engine.pairwise_all(measure).expect("full affine set");
        let mut idx = 0usize;
        for u in 0..n {
            for v in u + 1..n {
                let scalar = engine
                    .pair_value(measure, SequencePair::new(u, v))
                    .expect("full affine set");
                let diff = (batched[idx] - scalar).abs();
                assert!(
                    diff <= 1e-12 * scalar.abs().max(1.0),
                    "{measure:?} pair ({u},{v}): batched {} vs scalar {scalar} (diff {diff:e})",
                    batched[idx]
                );
                idx += 1;
            }
        }
        assert_eq!(idx, batched.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_sweep_equals_scalar_path_on_sensor_data(
        n in 4usize..18,
        m in 16usize..48,
        k in 1usize..5,
        seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        check_batched_matches_scalar(&data, k, seed, threads);
    }

    #[test]
    fn batched_sweep_equals_scalar_path_on_stock_data(
        n in 4usize..16,
        m in 16usize..40,
        k in 1usize..4,
        seed in 0u64..1_000_000,
        threads in 1usize..5,
    ) {
        let data = stock_dataset(&StockConfig::reduced(n, m));
        check_batched_matches_scalar(&data, k, seed, threads);
    }

    #[test]
    fn batched_pairwise_matrix_equals_scalar_path(
        n in 14usize..20,
        m in 16usize..40,
        seed in 0u64..1_000_000,
    ) {
        // Enough ids that q(q−1)/2 crosses the batching threshold, so
        // this exercises the grouped-GEMV subset path of `pairwise`.
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams {
            afclst: AfclstParams { k: 3, gamma_max: 10, delta_min: 0, seed },
            variant: SymexVariant::Plus,
            threads: 2,
        })
        .run(&data)
        .unwrap();
        let engine = MecEngine::with_threads(&data, &affine, 2);
        let ids: Vec<usize> = (0..n).collect();
        for measure in PairwiseMeasure::EXTENDED {
            let matrix = engine.pairwise(measure, &ids).unwrap();
            for i in 0..n {
                for j in i + 1..n {
                    let scalar = engine
                        .pair_value(measure, SequencePair::new(i, j))
                        .unwrap();
                    let diff = (matrix.get(i, j) - scalar).abs();
                    prop_assert!(
                        diff <= 1e-12 * scalar.abs().max(1.0),
                        "{:?} ({i},{j}): {} vs {scalar}",
                        measure,
                        matrix.get(i, j)
                    );
                    prop_assert_eq!(matrix.get(i, j), matrix.get(j, i));
                }
            }
        }
    }
}

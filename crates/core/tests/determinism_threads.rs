//! Determinism of the parallel SYMEX fit phase: with the pivot-sharded
//! scheduler, `threads ∈ {1, 2, 8}` must produce **bit-identical**
//! `AffineSet`s — relationships, pivots, per-series relationships, and
//! the traversal/cache counters — on both dataset generators.

use affinity_core::afclst::AfclstParams;
use affinity_core::symex::{AffineSet, Symex, SymexParams, SymexStats, SymexVariant};
use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity_data::DataMatrix;

fn run(data: &DataMatrix, variant: SymexVariant, threads: usize) -> (AffineSet, SymexStats) {
    Symex::new(SymexParams {
        afclst: AfclstParams {
            k: 4,
            gamma_max: 10,
            delta_min: 0,
            seed: 77,
        },
        variant,
        threads,
    })
    .run_with_stats(data)
    .unwrap()
}

/// Bitwise comparison: `f64::to_bits` equality, stricter than `==`
/// (distinguishes `-0.0` from `0.0` and would catch NaN payloads).
fn assert_bit_identical(a: &AffineSet, b: &AffineSet, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: relationship count");
    assert_eq!(a.pivots(), b.pivots(), "{label}: pivot order");
    for (x, y) in a.relationships().iter().zip(b.relationships()) {
        assert_eq!(x.pair, y.pair, "{label}");
        assert_eq!(x.pivot, y.pivot, "{label}");
        assert_eq!(x.common, y.common, "{label}");
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    x.a[r][c].to_bits(),
                    y.a[r][c].to_bits(),
                    "{label}: A[{r}][{c}] of {:?}",
                    x.pair
                );
            }
            assert_eq!(
                x.b[r].to_bits(),
                y.b[r].to_bits(),
                "{label}: b[{r}] of {:?}",
                x.pair
            );
        }
    }
    for (x, y) in a
        .series_relationships()
        .iter()
        .zip(b.series_relationships())
    {
        assert_eq!(x.series, y.series, "{label}");
        assert_eq!(x.cluster, y.cluster, "{label}");
        assert_eq!(x.c.to_bits(), y.c.to_bits(), "{label}: series c");
        assert_eq!(x.d.to_bits(), y.d.to_bits(), "{label}: series d");
    }
}

#[test]
fn symex_plus_is_bit_identical_across_thread_counts_on_sensor_data() {
    let data = sensor_dataset(&SensorConfig::reduced(40, 64));
    let (base, base_stats) = run(&data, SymexVariant::Plus, 1);
    for threads in [2usize, 8] {
        let (set, stats) = run(&data, SymexVariant::Plus, threads);
        assert_bit_identical(&base, &set, &format!("sensor, threads = {threads}"));
        // The pivot-sharded scheduler keeps even the cache counters
        // schedule-independent; compare the non-cache fields explicitly
        // so the guarantee stays "stats modulo cache-hit counters" if the
        // counting scheme ever changes.
        assert_eq!(stats.assigned_in_march, base_stats.assigned_in_march);
        assert_eq!(stats.assigned_in_sweep, base_stats.assigned_in_sweep);
    }
}

#[test]
fn symex_plus_is_bit_identical_across_thread_counts_on_stock_data() {
    let data = stock_dataset(&StockConfig::reduced(36, 80));
    let (base, base_stats) = run(&data, SymexVariant::Plus, 1);
    for threads in [2usize, 8] {
        let (set, stats) = run(&data, SymexVariant::Plus, threads);
        assert_bit_identical(&base, &set, &format!("stock, threads = {threads}"));
        assert_eq!(stats.assigned_in_march, base_stats.assigned_in_march);
        assert_eq!(stats.assigned_in_sweep, base_stats.assigned_in_sweep);
    }
}

#[test]
fn symex_basic_is_bit_identical_across_thread_counts() {
    let data = sensor_dataset(&SensorConfig::reduced(24, 48));
    let (base, _) = run(&data, SymexVariant::Basic, 1);
    for threads in [2usize, 8] {
        let (set, _) = run(&data, SymexVariant::Basic, threads);
        assert_bit_identical(&base, &set, &format!("basic, threads = {threads}"));
    }
}

#[test]
fn auto_thread_count_matches_serial() {
    let data = stock_dataset(&StockConfig::reduced(20, 60));
    let (base, _) = run(&data, SymexVariant::Plus, 1);
    let (auto, _) = run(&data, SymexVariant::Plus, 0);
    assert_bit_identical(&base, &auto, "auto threads");
}

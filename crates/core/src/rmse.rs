//! The normalized %RMSE error measure of paper Eq. 16.
//!
//! Exact and approximated values are both divided by the *range* of the
//! exact values (`max − min` over all pairs), then the RMSE of the
//! normalized differences is reported as a percentage.

/// %RMSE between exact and approximated value vectors (Eq. 16).
///
/// Returns `0.0` for empty input or when the exact values have zero
/// range (every normalized difference is then defined as zero, matching
/// the convention that a constant measure is trivially reproduced).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn percent_rmse(exact: &[f64], approx: &[f64]) -> f64 {
    assert_eq!(exact.len(), approx.len(), "percent_rmse: length mismatch");
    if exact.is_empty() {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in exact {
        min = min.min(v);
        max = max.max(v);
    }
    let range = max - min;
    if range <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (e, a) in exact.iter().zip(approx.iter()) {
        let d = (e - a) / range;
        acc += d * d;
    }
    (acc / exact.len() as f64).sqrt() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_for_identical_inputs() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(percent_rmse(&x, &x), 0.0);
    }

    #[test]
    fn known_value() {
        // exact range = 10; each diff 1 => normalized diff 0.1 => RMSE 0.1
        // => 10%.
        let exact = [0.0, 10.0];
        let approx = [1.0, 11.0];
        assert!((percent_rmse(&exact, &approx) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn constant_exact_values_give_zero() {
        let exact = [5.0, 5.0, 5.0];
        let approx = [4.0, 5.0, 6.0];
        assert_eq!(percent_rmse(&exact, &approx), 0.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(percent_rmse(&[], &[]), 0.0);
    }

    #[test]
    fn scale_invariance() {
        let exact = [0.0, 1.0, 2.0];
        let approx = [0.1, 1.1, 2.1];
        let e1 = percent_rmse(&exact, &approx);
        let exact_scaled: Vec<f64> = exact.iter().map(|v| v * 1000.0).collect();
        let approx_scaled: Vec<f64> = approx.iter().map(|v| v * 1000.0).collect();
        let e2 = percent_rmse(&exact_scaled, &approx_scaled);
        assert!((e1 - e2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        percent_rmse(&[1.0], &[1.0, 2.0]);
    }
}

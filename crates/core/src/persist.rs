//! Byte-exact serialization of the core model objects.
//!
//! This module is the innermost layer of the snapshot/journal
//! persistence stack: it turns an [`AffineSet`] into opaque bytes and
//! back, **bit-identically** — every `f64` travels via
//! [`f64::to_bits`]-equivalent little-endian encoding, so a model
//! restored from a snapshot answers every query with exactly the bits
//! the freshly built model would produce (signed zeros and all).
//!
//! Framing, checksums and atomic commit live one layer down in
//! `affinity_storage`; this codec is deliberately checksum-free and
//! instead does *structural* validation: every count is checked against
//! the remaining input before allocation (no OOM on absurd values) and
//! every cross-reference (cluster ids, pivot ids, pair membership) is
//! range-checked, so corrupt bytes that survive the outer CRCs still
//! surface as a typed [`DecodeError`] — never a panic.
//!
//! The [`ByteWriter`]/[`ByteReader`] primitives are shared by the
//! `affinity_scape` index codec and the `affinity_stream` journal
//! records, keeping one wire dialect across the whole stack.

use crate::afclst::ClusterModel;
use crate::affine::{AffineRelationship, PivotPair, SeriesRelationship};
use crate::hash::FxHashMap;
use crate::symex::AffineSet;
use affinity_data::SequencePair;

/// Codec version embedded in every [`AffineSet`] payload.
pub const AFFINE_CODEC_VERSION: u8 = 1;

/// Errors raised while decoding persisted model bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the structure did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Structurally invalid input (bad counts, dangling references, …).
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated payload: needed {needed} bytes, had {available}"
                )
            }
            DecodeError::Corrupt(msg) => write!(f, "corrupt payload: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian byte sink for model payloads.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Fresh writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` bit pattern (sign of zero and NaN payloads
    /// survive).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a slice of `f64` bit patterns.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Finish and take the bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Little-endian cursor over a persisted payload. Every read is
/// bounds-checked; count-prefixed reads verify the count against the
/// remaining bytes *before* allocating.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        // Bounds via `checked_add` + `get`: a lying length is a typed
        // `Truncated`, never a panic or a wrapped offset.
        let truncated = Err(DecodeError::Truncated {
            needed: n,
            available: self.remaining(),
        });
        let Some(end) = self.pos.checked_add(n) else {
            return truncated;
        };
        let Some(s) = self.buf.get(self.pos..end) else {
            return truncated;
        };
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(fixed(self.take(4)?)))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(fixed(self.take(8)?)))
    }

    /// Read an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(fixed(self.take(8)?)))
    }

    /// Read a bool byte; anything other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a `u64` that must fit the platform `usize`.
    // `len` decodes a length field from the wire; it is not the
    // container-size accessor clippy pairs with `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Corrupt(format!("length {v} exceeds usize")))
    }

    /// Read a `u64` count for elements of `elem_bytes` each, verifying
    /// the promised payload fits the remaining input before any
    /// allocation — the in-memory twin of the storage layer's
    /// whole-file size check.
    pub fn checked_count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, DecodeError> {
        let count = self.len()?;
        let promised = count
            .checked_mul(elem_bytes)
            .ok_or_else(|| DecodeError::Corrupt(format!("{what} count {count} overflows")))?;
        if promised > self.remaining() {
            return Err(DecodeError::Corrupt(format!(
                "{what} count {count} ({promised} bytes) exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Read `count` `f64` bit patterns (the caller obtained `count`
    /// via [`ByteReader::checked_count`] or equivalent validation).
    pub fn f64_vec(&mut self, count: usize) -> Result<Vec<f64>, DecodeError> {
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or_else(|| DecodeError::Corrupt(format!("f64 count {count} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(fixed(c)))
            .collect())
    }

    /// Require the input to be fully consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Zero-extend a byte slice into a fixed array — the panic-free spine
/// of every fixed-width read in this module (`take(N)` guarantees the
/// width; short input zero-fills rather than panicking).
fn fixed<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    for (d, src) in a.iter_mut().zip(s) {
        *d = *src;
    }
    a
}

/// Encode one [`AffineRelationship`] (pivot inline). Shared by the
/// affine-set payload and the streaming journal records.
pub fn put_relationship(w: &mut ByteWriter, rel: &AffineRelationship) {
    w.put_len(rel.pair.u);
    w.put_len(rel.pair.v);
    w.put_len(rel.pivot.common);
    w.put_len(rel.pivot.cluster);
    w.put_len(rel.common);
    for row in &rel.a {
        for &val in row {
            w.put_f64(val);
        }
    }
    for &val in &rel.b {
        w.put_f64(val);
    }
}

/// Bytes one encoded [`AffineRelationship`] occupies.
pub const RELATIONSHIP_BYTES: usize = 5 * 8 + 6 * 8;

/// Decode one [`AffineRelationship`], validating pair ordering and
/// common-series membership (cross-references against a concrete model
/// are the caller's job).
///
/// # Errors
/// [`DecodeError`] on truncation or structural violations.
pub fn get_relationship(r: &mut ByteReader<'_>) -> Result<AffineRelationship, DecodeError> {
    let u = r.len()?;
    let v = r.len()?;
    if u >= v {
        return Err(DecodeError::Corrupt(format!(
            "relationship pair ({u}, {v}) not strictly ordered"
        )));
    }
    let pivot = PivotPair {
        common: r.len()?,
        cluster: r.len()?,
    };
    let common = r.len()?;
    if common != u && common != v {
        return Err(DecodeError::Corrupt(format!(
            "relationship common {common} outside pair ({u}, {v})"
        )));
    }
    let mut a = [[0.0f64; 2]; 2];
    for row in &mut a {
        for c in row.iter_mut() {
            *c = r.f64()?;
        }
    }
    let b = [r.f64()?, r.f64()?];
    Ok(AffineRelationship {
        pair: SequencePair::new(u, v),
        pivot,
        common,
        a,
        b,
    })
}

/// Encode one [`SeriesRelationship`].
pub fn put_series_relationship(w: &mut ByteWriter, sr: &SeriesRelationship) {
    w.put_len(sr.series);
    w.put_len(sr.cluster);
    w.put_f64(sr.c);
    w.put_f64(sr.d);
}

/// Bytes one encoded [`SeriesRelationship`] occupies.
pub const SERIES_RELATIONSHIP_BYTES: usize = 4 * 8;

/// Decode one [`SeriesRelationship`].
///
/// # Errors
/// [`DecodeError`] on truncation.
pub fn get_series_relationship(r: &mut ByteReader<'_>) -> Result<SeriesRelationship, DecodeError> {
    Ok(SeriesRelationship {
        series: r.len()?,
        cluster: r.len()?,
        c: r.f64()?,
        d: r.f64()?,
    })
}

impl AffineSet {
    /// Serialize the full model — cluster model, pivots, pairwise and
    /// per-series relationships — to a self-contained byte payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.series_count();
        let samples = self.samples();
        let clusters = self.clusters();
        let k = clusters.k();
        let mut w = ByteWriter::with_capacity(
            // afflint: allow(len-arith) -- encoder-side capacity hint over a live in-memory model, not header-declared sizes
            64 + k * samples * 8
                + n * 8
                + self.pivots().len() * 16
                + self.len() * (RELATIONSHIP_BYTES - 2 * 8)
                + n * (SERIES_RELATIONSHIP_BYTES - 8),
        );
        w.put_u8(AFFINE_CODEC_VERSION);
        w.put_len(n);
        w.put_len(samples);
        // Cluster model: k centres of `samples` values, assignments,
        // run metadata.
        w.put_len(k);
        for l in 0..k {
            w.put_f64_slice(clusters.center(l));
        }
        for &a in clusters.assignments() {
            w.put_len(a);
        }
        w.put_len(clusters.iterations());
        w.put_bool(clusters.converged());
        // Pivot table; relationships reference it by index, which both
        // compresses the payload and lets the decoder prove that every
        // relationship is anchored at a registered pivot.
        let mut pivot_ids: FxHashMap<PivotPair, usize> = FxHashMap::default();
        w.put_len(self.pivots().len());
        for (i, &p) in self.pivots().iter().enumerate() {
            pivot_ids.insert(p, i);
            w.put_len(p.common);
            w.put_len(p.cluster);
        }
        w.put_len(self.len());
        for rel in self.relationships() {
            w.put_len(rel.pair.u);
            w.put_len(rel.pair.v);
            // Encoder over a live model: every relationship pivot is in
            // the table built from `self.pivots()` above (AffineSet
            // invariant), so the lookup cannot miss.
            // afflint: allow(panic) -- encoder side, no untrusted bytes; rel.pivot ∈ self.pivots() is an AffineSet construction invariant
            w.put_len(pivot_ids[&rel.pivot]);
            w.put_len(rel.common);
            for row in &rel.a {
                for &val in row {
                    w.put_f64(val);
                }
            }
            for &val in &rel.b {
                w.put_f64(val);
            }
        }
        // Per-series relationships, series id implied by position.
        for sr in self.series_relationships() {
            w.put_len(sr.cluster);
            w.put_f64(sr.c);
            w.put_f64(sr.d);
        }
        w.into_vec()
    }

    /// Reconstruct an [`AffineSet`] from [`AffineSet::to_bytes`] output.
    /// The result is bit-identical to the encoded model.
    ///
    /// # Errors
    /// [`DecodeError`] on truncation, absurd counts (checked before
    /// allocation), or dangling cross-references — corrupt input never
    /// panics and never round-trips silently wrong.
    pub fn from_bytes(bytes: &[u8]) -> Result<AffineSet, DecodeError> {
        Self::decode(bytes, true)
    }

    /// Like [`AffineSet::from_bytes`], but for a *partition slice* of a
    /// global model (a shard): the relationship list may be any subset
    /// of the `n(n−1)/2` pairs — possibly empty — while every other
    /// invariant (dedup, cross-references, truncation) is still
    /// enforced.
    ///
    /// # Errors
    /// [`DecodeError`] as for [`AffineSet::from_bytes`].
    pub fn from_bytes_subset(bytes: &[u8]) -> Result<AffineSet, DecodeError> {
        Self::decode(bytes, false)
    }

    fn decode(bytes: &[u8], require_complete: bool) -> Result<AffineSet, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let version = r.u8()?;
        if version != AFFINE_CODEC_VERSION {
            return Err(DecodeError::Corrupt(format!(
                "unsupported affine codec version {version}"
            )));
        }
        let n = r.len()?;
        let samples = r.len()?;
        if n < 2 {
            return Err(DecodeError::Corrupt(format!("series count {n} < 2")));
        }
        if samples == 0 {
            return Err(DecodeError::Corrupt("zero samples".into()));
        }
        let k = r.checked_count(samples.saturating_mul(8), "cluster")?;
        if k == 0 {
            return Err(DecodeError::Corrupt("zero clusters".into()));
        }
        let mut centers = Vec::with_capacity(k);
        for _ in 0..k {
            centers.push(r.f64_vec(samples)?);
        }
        if n.saturating_mul(8) > r.remaining() {
            return Err(DecodeError::Truncated {
                needed: n.saturating_mul(8),
                available: r.remaining(),
            });
        }
        let mut assignment = Vec::with_capacity(n);
        for v in 0..n {
            let l = r.len()?;
            if l >= k {
                return Err(DecodeError::Corrupt(format!(
                    "series {v} assigned to cluster {l} of {k}"
                )));
            }
            assignment.push(l);
        }
        let iterations = r.len()?;
        let converged = r.bool()?;
        let clusters = ClusterModel::from_parts(centers, assignment, iterations, converged);

        let pivot_count = r.checked_count(16, "pivot")?;
        let mut pivots = Vec::with_capacity(pivot_count);
        for i in 0..pivot_count {
            let common = r.len()?;
            let cluster = r.len()?;
            if common >= n || cluster >= k {
                return Err(DecodeError::Corrupt(format!(
                    "pivot {i} references series {common}/{n}, cluster {cluster}/{k}"
                )));
            }
            pivots.push(PivotPair { common, cluster });
        }

        let total = n * (n - 1) / 2;
        let rel_count = r.checked_count(RELATIONSHIP_BYTES - 8, "relationship")?;
        // A monolithic model carries every pair; a partition slice
        // (shard) carries a subset, but never more than every pair.
        if (require_complete && rel_count != total) || rel_count > total {
            return Err(DecodeError::Corrupt(format!(
                "{rel_count} relationships for {n} series (expected {}{total})",
                if require_complete { "" } else { "<= " }
            )));
        }
        // Duplicate detection by triangular rank: for u < v the pair
        // maps to slot v(v-1)/2 + u, a dense 0..total enumeration — a
        // bit per pair instead of a hash insert on the decode hot loop.
        let mut seen = vec![false; total];
        let mut relationships = Vec::with_capacity(rel_count);
        for _ in 0..rel_count {
            let u = r.len()?;
            let v = r.len()?;
            if u >= v || v >= n {
                return Err(DecodeError::Corrupt(format!(
                    "relationship pair ({u}, {v}) invalid for {n} series"
                )));
            }
            let rank = v * (v - 1) / 2 + u;
            let slot = seen
                .get_mut(rank)
                .ok_or_else(|| DecodeError::Corrupt(format!("pair rank {rank} out of range")))?;
            if std::mem::replace(slot, true) {
                return Err(DecodeError::Corrupt(format!("duplicate pair ({u}, {v})")));
            }
            let pivot_idx = r.len()?;
            let pivot = *pivots.get(pivot_idx).ok_or_else(|| {
                DecodeError::Corrupt(format!("pivot index {pivot_idx} of {pivot_count}"))
            })?;
            let common = r.len()?;
            if common != u && common != v {
                return Err(DecodeError::Corrupt(format!(
                    "common {common} outside pair ({u}, {v})"
                )));
            }
            let mut a = [[0.0f64; 2]; 2];
            for row in &mut a {
                for c in row.iter_mut() {
                    *c = r.f64()?;
                }
            }
            let b = [r.f64()?, r.f64()?];
            relationships.push(AffineRelationship {
                pair: SequencePair::new(u, v),
                pivot,
                common,
                a,
                b,
            });
        }

        if n.saturating_mul(SERIES_RELATIONSHIP_BYTES - 8) > r.remaining() {
            return Err(DecodeError::Truncated {
                needed: n.saturating_mul(SERIES_RELATIONSHIP_BYTES - 8),
                available: r.remaining(),
            });
        }
        let mut series_rels = Vec::with_capacity(n);
        for series in 0..n {
            let cluster = r.len()?;
            if cluster >= k {
                return Err(DecodeError::Corrupt(format!(
                    "series {series} relationship references cluster {cluster}/{k}"
                )));
            }
            series_rels.push(SeriesRelationship {
                series,
                cluster,
                c: r.f64()?,
                d: r.f64()?,
            });
        }
        r.finish()?;
        Ok(AffineSet::assemble(
            clusters,
            relationships,
            pivots,
            series_rels,
            n,
            samples,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symex::{Symex, SymexParams};
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn sample_set() -> AffineSet {
        let data = sensor_dataset(&SensorConfig::reduced(9, 24));
        Symex::new(SymexParams::default()).run(&data).unwrap()
    }

    fn assert_bit_identical(a: &AffineSet, b: &AffineSet) {
        assert_eq!(a.series_count(), b.series_count());
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.pivots(), b.pivots());
        assert_eq!(a.clusters().assignments(), b.clusters().assignments());
        assert_eq!(a.clusters().iterations(), b.clusters().iterations());
        assert_eq!(a.clusters().converged(), b.clusters().converged());
        for l in 0..a.clusters().k() {
            let (ca, cb) = (a.clusters().center(l), b.clusters().center(l));
            assert_eq!(ca.len(), cb.len());
            for (x, y) in ca.iter().zip(cb) {
                assert_eq!(x.to_bits(), y.to_bits(), "centre {l}");
            }
        }
        assert_eq!(a.relationships().len(), b.relationships().len());
        for (x, y) in a.relationships().iter().zip(b.relationships()) {
            assert_eq!(x.pair, y.pair);
            assert_eq!(x.pivot, y.pivot);
            assert_eq!(x.common, y.common);
            for i in 0..2 {
                for j in 0..2 {
                    assert_eq!(x.a[i][j].to_bits(), y.a[i][j].to_bits());
                }
                assert_eq!(x.b[i].to_bits(), y.b[i].to_bits());
            }
        }
        for (x, y) in a
            .series_relationships()
            .iter()
            .zip(b.series_relationships())
        {
            assert_eq!((x.series, x.cluster), (y.series, y.cluster));
            assert_eq!(x.c.to_bits(), y.c.to_bits());
            assert_eq!(x.d.to_bits(), y.d.to_bits());
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let set = sample_set();
        let bytes = set.to_bytes();
        let back = AffineSet::from_bytes(&bytes).unwrap();
        assert_bit_identical(&set, &back);
        // Lookups still work through the rebuilt pair index.
        for rel in set.relationships() {
            assert_eq!(back.relationship(rel.pair).unwrap(), rel);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_set().to_bytes();
        // Dense near the start (header/counts), strided through the body.
        for cut in (0..64.min(bytes.len())).chain((64..bytes.len()).step_by(7)) {
            match AffineSet::from_bytes(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut} decoded successfully"),
            }
        }
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        let set = sample_set();
        let mut bytes = set.to_bytes();
        // series_count field at offset 1.
        bytes[1..9].copy_from_slice(&(u64::MAX - 3).to_le_bytes());
        assert!(matches!(
            AffineSet::from_bytes(&bytes),
            Err(DecodeError::Corrupt(_)) | Err(DecodeError::Truncated { .. })
        ));
        let mut bytes = set.to_bytes();
        // cluster count field at offset 17.
        bytes[17..25].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(matches!(
            AffineSet::from_bytes(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_set().to_bytes();
        bytes[0] = 99;
        assert!(matches!(
            AffineSet::from_bytes(&bytes),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn signed_zero_survives() {
        let mut set = sample_set();
        let mut rel = set.relationships()[0].clone();
        rel.a[0][1] = -0.0;
        rel.b[1] = -0.0;
        assert!(set.replace_relationship(rel.clone()).is_some());
        let back = AffineSet::from_bytes(&set.to_bytes()).unwrap();
        let got = back.relationship(rel.pair).unwrap();
        assert_eq!(got.a[0][1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(got.b[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn standalone_relationship_codec_roundtrips() {
        let set = sample_set();
        for rel in set.relationships().iter().take(5) {
            let mut w = ByteWriter::new();
            put_relationship(&mut w, rel);
            let bytes = w.into_vec();
            assert_eq!(bytes.len(), RELATIONSHIP_BYTES);
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&get_relationship(&mut r).unwrap(), rel);
            r.finish().unwrap();
        }
        for sr in set.series_relationships().iter().take(5) {
            let mut w = ByteWriter::new();
            put_series_relationship(&mut w, sr);
            let bytes = w.into_vec();
            assert_eq!(bytes.len(), SERIES_RELATIONSHIP_BYTES);
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&get_series_relationship(&mut r).unwrap(), sr);
            r.finish().unwrap();
        }
    }

    #[test]
    fn reader_primitives_guard_bounds() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(r.u64(), Err(DecodeError::Truncated { .. })));
        assert_eq!(r.u8().unwrap(), 1);
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.bool(), Err(DecodeError::Corrupt(_))));
        let mut w = ByteWriter::new();
        w.put_len(usize::MAX);
        w.put_u64(0);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert!(r.checked_count(8, "t").is_err());
        let mut r = ByteReader::new(&bytes);
        r.u64().unwrap();
        r.u64().unwrap();
        assert!(r.finish().is_ok());
        let mut r = ByteReader::new(&bytes);
        r.u64().unwrap();
        assert!(matches!(r.finish(), Err(DecodeError::Corrupt(_))));
    }
}

//! # affinity-core
//!
//! The AFFINITY framework core (Sathe & Aberer, ICDE 2013): computing
//! statistical measures on time-series data through *affine relationships*
//! instead of raw scans.
//!
//! The pipeline, mirroring the paper:
//!
//! 1. [`afclst`] clusters the `n` series so that good affine relationships
//!    exist between cluster members (Alg. 1), with quality measured by the
//!    [`lsfd`] metric (Def. 1);
//! 2. [`symex`] systematically enumerates all `n(n−1)/2` sequence pairs,
//!    picks a pivot pair for each, and solves for the affine relationship
//!    `(A, b)_e` by least squares (Alg. 2) — with [`symex::SymexVariant::Plus`]
//!    caching pseudo-inverses per pivot;
//! 3. [`mec`] answers measure-computation queries from pivot-pair
//!    statistics and the affine relationships alone (Sec. 4.1), via the
//!    propagation identities in [`affine`] (Eqs. 5–8);
//! 4. [`measures`] provides the exact "from scratch" computations (the
//!    paper's `W_N` baseline) and the measure taxonomy (L/T/D, Sec. 2.1);
//! 5. [`rmse`] implements the normalized %RMSE error of Eq. 16.
//!
//! ```
//! use affinity_core::prelude::*;
//! use affinity_data::generator::{sensor_dataset, SensorConfig};
//!
//! let data = sensor_dataset(&SensorConfig::reduced(24, 64));
//! let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
//! let engine = MecEngine::new(&data, &affine);
//! let ids: Vec<usize> = (0..6).collect();
//! let cov = engine.pairwise(PairwiseMeasure::Covariance, &ids).unwrap();
//! assert_eq!(cov.rows(), 6);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod afclst;
pub mod affine;
pub mod error;
pub mod hash;
pub mod lsfd;
pub mod measures;
pub mod mec;
pub mod persist;
pub mod quality;
pub mod rmse;
pub mod symex;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::afclst::{afclst, AfclstParams, ClusterModel};
    pub use crate::affine::{AffineRelationship, PivotPair, SeriesRelationship};
    pub use crate::error::CoreError;
    pub use crate::lsfd::lsfd;
    pub use crate::measures::{LocationMeasure, Measure, PairwiseMeasure};
    pub use crate::mec::MecEngine;
    pub use crate::quality::{quality_report, QualityReport};
    pub use crate::rmse::percent_rmse;
    pub use crate::symex::{AffineSet, Symex, SymexParams, SymexVariant};
}

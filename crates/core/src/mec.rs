//! The MEC (measure computation) query engine — paper Sec. 4.1, the `W_A`
//! method of the evaluation.
//!
//! Construction performs the paper's pre-processing step: it computes and
//! stores the statistics of every pivot pair matrix (`O(nk)` pivot pairs,
//! each `O(m)` — *"this one-time cost dominates the Big-O complexity"*)
//! plus the separable normalizers (per-series variances) for the
//! D-measures. After that, every measure value is reconstructed from a
//! hash-map lookup and a 3-term scalar product — no raw series access.
//!
//! ## Batched sweeps
//!
//! Whole-sweep queries ([`MecEngine::pairwise_all`], and
//! [`MecEngine::pairwise`] above a small size threshold) do not walk the
//! relationship hash pair by pair. The first sweep stacks the β-vectors
//! of every pair anchored at one pivot into a `g×3`
//! [`Matrix`] (cached thereafter); a sweep is then **one GEMV-shaped
//! pass per pivot** —
//! `values = B·α` via the allocation-free [`Matrix::matvec_into`] —
//! followed by the separable normalizers, parallelized across pivots on
//! an [`affinity_par::ThreadPool`]. Per-pivot work items write disjoint
//! output slots (each pair has a fixed lexicographic index), so results
//! are merged deterministically and match the scalar
//! [`MecEngine::pair_value`] path exactly.

// Index-based loops over matrix coordinates are the clearest notation
// for these kernels.
#![allow(clippy::needless_range_loop)]
use crate::affine::{PivotPair, PivotStats};
use crate::error::CoreError;
use crate::hash::FxHashMap;
use crate::measures::{self, LocationMeasure, PairwiseMeasure};
use crate::symex::AffineSet;
use affinity_data::source::{prefetch_window, scan_sequence, with_column_buffers};
use affinity_data::{DataMatrix, SequencePair, SeriesId, SeriesSource};
use affinity_linalg::{vector, Matrix};
use affinity_par::{DisjointWriter, ThreadPool};
use parking_lot::Mutex;
use std::sync::OnceLock;

/// Below this many requested pair values, [`MecEngine::pairwise`] uses the
/// scalar per-pair path: grouping by pivot costs more than it saves.
const BATCH_THRESHOLD: usize = 64;

/// The batched query plan of one pivot: every pair anchored there, with
/// the β-vectors stacked into a `g×3` matrix (three contiguous
/// coefficient columns, so `B·α` is three `axpy` passes).
struct PivotBatch {
    pivot: PivotPair,
    /// `g×3`; row `j` is the β of `members[j]`.
    betas: Matrix,
    /// `(u, v, lexicographic pair index)` per member.
    members: Vec<(u32, u32, u32)>,
}

/// Lexicographic index of pair `(u, v)` (`u < v`) in the
/// [`DataMatrix::sequence_pairs`] order.
#[inline]
fn pair_rank(n: usize, u: usize, v: usize) -> usize {
    u * n - u * (u + 1) / 2 + (v - u - 1)
}

/// β-rows plus `(u, v, lexicographic index)` members accumulated for one
/// pivot while building the construction-time batches.
type RawBatch = (Vec<[f64; 3]>, Vec<(u32, u32, u32)>);

/// β-rows plus `(i, j)` output cells of one pivot group in an ad-hoc
/// [`MecEngine::pairwise`] subset sweep.
type SubsetGroup = (Vec<[f64; 3]>, Vec<(u32, u32)>);

/// MEC query engine answering measure computations through affine
/// relationships.
///
/// Construction is the only phase that reads raw series — it is generic
/// over [`SeriesSource`] ([`MecEngine::from_source`]), so the
/// pre-processing pass can stream columns from disk. After that, every
/// query is answered from pivot statistics, normalizers and β-vectors
/// alone; the engine holds **no reference to the data**.
pub struct MecEngine<'a> {
    series_count: usize,
    affine: &'a AffineSet,
    /// `pivotHash` with values filled in (paper Sec. 4.1).
    pivot_stats: FxHashMap<PivotPair, PivotStats>,
    /// Separable normalizers: exact per-series variances (correlation).
    variances: Vec<f64>,
    /// Separable normalizers: exact per-series self dot products
    /// (cosine, Dice).
    self_dots: Vec<f64>,
    /// Lazily computed location values of cluster centres, keyed by
    /// (measure tag, cluster).
    center_locations: Mutex<FxHashMap<(u8, usize), f64>>,
    /// Per-pivot β-matrices for GEMV-shaped sweeps, in pivot order;
    /// built lazily on the first whole-sweep query so engines that only
    /// answer scalar/location queries skip the O(n²) batch build.
    batches: OnceLock<Vec<PivotBatch>>,
    /// Pool for sweep parallelism; sized from the `threads` knob, or
    /// shared across engines via [`MecEngine::with_pool`].
    pool: std::sync::Arc<ThreadPool>,
}

fn measure_tag(m: LocationMeasure) -> u8 {
    match m {
        LocationMeasure::Mean => 0,
        LocationMeasure::Median => 1,
        LocationMeasure::Mode => 2,
    }
}

impl<'a> MecEngine<'a> {
    /// Build the engine, running the pre-processing step (pivot statistics
    /// + normalizers), with the thread count resolved automatically.
    ///
    /// # Panics
    /// Panics if `affine` was produced from a differently-shaped matrix.
    pub fn new(data: &DataMatrix, affine: &'a AffineSet) -> Self {
        Self::with_threads(data, affine, 0)
    }

    /// Like [`MecEngine::new`] with an explicit worker-lane count for the
    /// batched sweeps; `0` means [`std::thread::available_parallelism`].
    /// Results are bit-identical for every setting.
    ///
    /// # Panics
    /// Panics if `affine` was produced from a differently-shaped matrix.
    pub fn with_threads(data: &DataMatrix, affine: &'a AffineSet, threads: usize) -> Self {
        Self::with_pool(data, affine, std::sync::Arc::new(ThreadPool::new(threads)))
    }

    /// Like [`MecEngine::new`] but sharing an existing pool — short-lived
    /// engines (e.g. one per streaming-window snapshot) reuse one set of
    /// worker lanes instead of spawning their own.
    ///
    /// # Panics
    /// Panics if `affine` was produced from a differently-shaped matrix.
    pub fn with_pool(
        data: &DataMatrix,
        affine: &'a AffineSet,
        pool: std::sync::Arc<ThreadPool>,
    ) -> Self {
        Self::from_source_with_pool(data, affine, pool)
            .expect("affine set does not match the data matrix")
    }

    /// Build the engine by streaming the pre-processing pass through any
    /// [`SeriesSource`] — an on-disk store or bounded cache works as
    /// well as a resident matrix, and the result is bit-for-bit
    /// identical. Raw series are touched only here: one fetch per pivot
    /// common column (pivot statistics) and one per series (separable
    /// normalizers), in parallel with per-lane buffers.
    ///
    /// # Errors
    /// [`CoreError::ShapeMismatch`] if `affine` was not computed over a
    /// source of this shape; [`CoreError::Source`] on fetch failures.
    pub fn from_source<S: SeriesSource + ?Sized>(
        source: &S,
        affine: &'a AffineSet,
    ) -> Result<Self, CoreError> {
        Self::from_source_with_pool(source, affine, std::sync::Arc::new(ThreadPool::new(0)))
    }

    /// [`MecEngine::from_source`] with a shared worker pool.
    ///
    /// # Errors
    /// As for [`MecEngine::from_source`].
    pub fn from_source_with_pool<S: SeriesSource + ?Sized>(
        source: &S,
        affine: &'a AffineSet,
        pool: std::sync::Arc<ThreadPool>,
    ) -> Result<Self, CoreError> {
        let n = source.series_count();
        if n != affine.series_count() || source.samples() != affine.samples() {
            return Err(CoreError::ShapeMismatch {
                data: (n, source.samples()),
                model: (affine.series_count(), affine.samples()),
            });
        }
        let clusters = affine.clusters();
        // Both construction passes know their column sequence up front
        // (pivot commons in pivot order, then every column); each lane
        // announces a sliding window ahead of its position.
        let commons: Vec<u32> = affine.pivots().iter().map(|p| p.common as u32).collect();
        let stats: Vec<Result<PivotStats, CoreError>> =
            pool.parallel_map(affine.pivots().len(), |q| {
                with_column_buffers(|buf, _| {
                    let p = affine.pivots()[q];
                    prefetch_window(source, &commons, q);
                    let common = source.read_into(p.common, buf)?;
                    Ok(PivotStats::compute(common, clusters.center(p.cluster)))
                })
            });
        let mut pivot_stats = FxHashMap::default();
        pivot_stats.reserve(affine.pivots().len());
        for (&p, s) in affine.pivots().iter().zip(stats) {
            pivot_stats.insert(p, s?);
        }
        // Separable normalizers: both marginal moments from one fetch
        // per column.
        let scan = scan_sequence(n);
        let marginals: Vec<Result<(f64, f64), CoreError>> = pool.parallel_map(n, |v| {
            with_column_buffers(|buf, _| {
                prefetch_window(source, &scan, v);
                let s = source.read_into(v, buf)?;
                Ok((vector::variance(s), vector::dot(s, s)))
            })
        });
        let mut variances = Vec::with_capacity(n);
        let mut self_dots = Vec::with_capacity(n);
        for r in marginals {
            let (var, sd) = r?;
            variances.push(var);
            self_dots.push(sd);
        }
        Ok(MecEngine {
            series_count: n,
            affine,
            pivot_stats,
            variances,
            self_dots,
            center_locations: Mutex::new(FxHashMap::default()),
            batches: OnceLock::new(),
            pool,
        })
    }

    /// Assemble an engine directly from precomputed parts — the sharded
    /// model path, where pivot statistics are computed per shard and the
    /// separable normalizers once globally. `pivot_stats` must cover
    /// every pivot of `affine`; `variances`/`self_dots` are **full-length**
    /// per-series vectors (a shard's pairs reference arbitrary series in
    /// their normalizers). Queries answer bit-identically to an engine
    /// built by [`MecEngine::from_source`] over the same reference data.
    ///
    /// # Errors
    /// [`CoreError::ShapeMismatch`] when a marginal vector's length
    /// differs from the affine set's series count;
    /// [`CoreError::InvalidParameter`] when a pivot has no statistics.
    pub fn from_parts(
        affine: &'a AffineSet,
        pivot_stats: FxHashMap<PivotPair, PivotStats>,
        variances: Vec<f64>,
        self_dots: Vec<f64>,
        pool: std::sync::Arc<ThreadPool>,
    ) -> Result<Self, CoreError> {
        let n = affine.series_count();
        if variances.len() != n || self_dots.len() != n {
            return Err(CoreError::ShapeMismatch {
                data: (variances.len(), self_dots.len()),
                model: (n, n),
            });
        }
        if let Some(p) = affine
            .pivots()
            .iter()
            .find(|p| !pivot_stats.contains_key(p))
        {
            return Err(CoreError::InvalidParameter(format!(
                "pivot statistics missing for pivot (common {}, cluster {})",
                p.common, p.cluster
            )));
        }
        Ok(MecEngine {
            series_count: n,
            affine,
            pivot_stats,
            variances,
            self_dots,
            center_locations: Mutex::new(FxHashMap::default()),
            batches: OnceLock::new(),
            pool,
        })
    }

    /// The per-pivot β-batches, built on first use: the β-vectors of each
    /// pivot's pairs stacked into one `g×3` matrix (pivot order follows
    /// the affine set, so the batches are deterministic).
    fn batches(&self) -> &[PivotBatch] {
        self.batches.get_or_init(|| {
            let affine = self.affine;
            let n = self.series_count;
            let mut pivot_ids: FxHashMap<PivotPair, u32> = FxHashMap::default();
            pivot_ids.reserve(affine.pivots().len());
            for (i, &p) in affine.pivots().iter().enumerate() {
                pivot_ids.insert(p, i as u32);
            }
            let mut raw_batches: Vec<RawBatch> = (0..affine.pivots().len())
                .map(|_| Default::default())
                .collect();
            for rel in affine.relationships() {
                let id = pivot_ids[&rel.pivot] as usize;
                let (betas, members) = &mut raw_batches[id];
                betas.push(rel.beta());
                members.push((
                    rel.pair.u as u32,
                    rel.pair.v as u32,
                    pair_rank(n, rel.pair.u, rel.pair.v) as u32,
                ));
            }
            affine
                .pivots()
                .iter()
                .zip(raw_batches)
                .map(|(&pivot, (betas, members))| {
                    let cols: Vec<Vec<f64>> = (0..3)
                        .map(|c| betas.iter().map(|b| b[c]).collect())
                        .collect();
                    PivotBatch {
                        pivot,
                        betas: Matrix::from_columns(&cols),
                        members,
                    }
                })
                .collect()
        })
    }

    /// The underlying affine set.
    pub fn affine(&self) -> &AffineSet {
        self.affine
    }

    /// Exact per-series variance (the correlation normalizer component).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn variance(&self, v: SeriesId) -> f64 {
        self.variances[v]
    }

    /// The correlation normalizer `U_e = √(Σ(s_u)·Σ(s_v))` of a pair.
    pub fn normalizer(&self, pair: SequencePair) -> f64 {
        (self.variances[pair.u] * self.variances[pair.v]).sqrt()
    }

    /// Exact self dot product `Π(s_v, s_v)` (the cosine/Dice normalizer
    /// component).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn self_dot(&self, v: SeriesId) -> f64 {
        self.self_dots[v]
    }

    /// The separable normalizer `U_e` of a derived measure (paper Sec.
    /// 2.3 / 5.1): correlation `√(Σ·Σ)`, cosine `√(Π·Π)`, Dice
    /// `(Π+Π)/2`. Returns `0.0` for non-derived measures.
    pub fn derived_normalizer(&self, measure: PairwiseMeasure, pair: SequencePair) -> f64 {
        match measure {
            PairwiseMeasure::Correlation => self.normalizer(pair),
            PairwiseMeasure::Cosine => (self.self_dots[pair.u] * self.self_dots[pair.v]).sqrt(),
            PairwiseMeasure::Dice => 0.5 * (self.self_dots[pair.u] + self.self_dots[pair.v]),
            _ => 0.0,
        }
    }

    fn center_location(&self, measure: LocationMeasure, cluster: usize) -> f64 {
        let key = (measure_tag(measure), cluster);
        let mut cache = self.center_locations.lock();
        if let Some(&v) = cache.get(&key) {
            return v;
        }
        let v = measures::location(measure, self.affine.clusters().center(cluster));
        cache.insert(key, v);
        v
    }

    /// A location measure for one series, via its per-series relationship
    /// (`L(s_v) ≈ c·L(r_ω(v)) + d`, Eq. 5 in one dimension).
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location_value(&self, measure: LocationMeasure, v: SeriesId) -> Result<f64, CoreError> {
        if v >= self.series_count {
            return Err(CoreError::UnknownSeries {
                id: v,
                series: self.series_count,
            });
        }
        let sr = self.affine.series_relationship(v);
        Ok(sr.propagate(self.center_location(measure, sr.cluster)))
    }

    /// MEC query for a location measure over a set of identifiers
    /// (paper Query 1, L-measure case): returns one value per id.
    ///
    /// Center values are resolved once per cluster, so the per-id cost is
    /// two flops — the paper's point about L-measures needing only O(n)
    /// relationships.
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location(
        &self,
        measure: LocationMeasure,
        ids: &[SeriesId],
    ) -> Result<Vec<f64>, CoreError> {
        let n = self.series_count;
        if let Some(&bad) = ids.iter().find(|&&v| v >= n) {
            return Err(CoreError::UnknownSeries { id: bad, series: n });
        }
        let centers = self.center_locations_for(measure);
        Ok(ids
            .iter()
            .map(|&v| {
                let sr = self.affine.series_relationship(v);
                sr.propagate(centers[sr.cluster])
            })
            .collect())
    }

    /// A location measure for every series.
    pub fn location_all(&self, measure: LocationMeasure) -> Vec<f64> {
        let centers = self.center_locations_for(measure);
        self.affine
            .series_relationships()
            .iter()
            .map(|sr| sr.propagate(centers[sr.cluster]))
            .collect()
    }

    /// Location values of every cluster centre for a measure, resolved
    /// through the cache with a single lock acquisition.
    fn center_locations_for(&self, measure: LocationMeasure) -> Vec<f64> {
        let k = self.affine.clusters().k();
        let tag = measure_tag(measure);
        let mut cache = self.center_locations.lock();
        (0..k)
            .map(|l| {
                *cache.entry((tag, l)).or_insert_with(|| {
                    measures::location(measure, self.affine.clusters().center(l))
                })
            })
            .collect()
    }

    /// A pairwise measure for one sequence pair, via its affine
    /// relationship (Eqs. 6–8).
    ///
    /// # Errors
    /// [`CoreError::MissingRelationship`] if the pair was never assigned
    /// (cannot happen for sets produced by a full SYMEX run).
    pub fn pair_value(
        &self,
        measure: PairwiseMeasure,
        pair: SequencePair,
    ) -> Result<f64, CoreError> {
        let rel = self
            .affine
            .relationship(pair)
            .ok_or(CoreError::MissingRelationship {
                u: pair.u,
                v: pair.v,
            })?;
        let stats = &self.pivot_stats[&rel.pivot];
        let beta = rel.beta();
        Ok(match measure {
            PairwiseMeasure::Covariance => stats.propagate_covariance(&beta),
            PairwiseMeasure::DotProduct => stats.propagate_dot(&beta),
            PairwiseMeasure::Correlation => {
                let cov = stats.propagate_covariance(&beta);
                let norm = self.normalizer(pair);
                if norm > 0.0 {
                    cov / norm
                } else {
                    0.0
                }
            }
            PairwiseMeasure::Cosine | PairwiseMeasure::Dice => {
                let dot = stats.propagate_dot(&beta);
                let norm = self.derived_normalizer(measure, pair);
                if norm > 0.0 {
                    dot / norm
                } else {
                    0.0
                }
            }
        })
    }

    /// Apply a measure's separable normalizer to a propagated raw value
    /// (covariance or dot product, matching [`PivotStats::alpha`]).
    #[inline]
    fn finalize(&self, measure: PairwiseMeasure, u: usize, v: usize, raw: f64) -> f64 {
        match measure {
            PairwiseMeasure::Covariance | PairwiseMeasure::DotProduct => raw,
            PairwiseMeasure::Correlation => {
                let norm = (self.variances[u] * self.variances[v]).sqrt();
                if norm > 0.0 {
                    raw / norm
                } else {
                    0.0
                }
            }
            PairwiseMeasure::Cosine => {
                let norm = (self.self_dots[u] * self.self_dots[v]).sqrt();
                if norm > 0.0 {
                    raw / norm
                } else {
                    0.0
                }
            }
            PairwiseMeasure::Dice => {
                let norm = 0.5 * (self.self_dots[u] + self.self_dots[v]);
                if norm > 0.0 {
                    raw / norm
                } else {
                    0.0
                }
            }
        }
    }

    /// MEC query for a pairwise measure over a set of identifiers
    /// (paper Query 1, T/D-measure case): returns the `|ψ|×|ψ|` matrix.
    ///
    /// Diagonal entries are the exact self-values (variance / self dot
    /// product / 1). Large requests are answered through the per-pivot
    /// β-batches (one GEMV per touched pivot); small ones through the
    /// scalar [`MecEngine::pair_value`] path — the two are numerically
    /// identical.
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers,
    /// [`CoreError::MissingRelationship`] if the affine set does not
    /// cover a requested pair (a partial set).
    ///
    /// # Panics
    /// Panics if `ids` contains the same identifier twice
    /// (`SequencePair` requires distinct members).
    pub fn pairwise(
        &self,
        measure: PairwiseMeasure,
        ids: &[SeriesId],
    ) -> Result<Matrix, CoreError> {
        let n = self.series_count;
        if let Some(&bad) = ids.iter().find(|&&v| v >= n) {
            return Err(CoreError::UnknownSeries { id: bad, series: n });
        }
        let q = ids.len();
        let mut out = Matrix::zeros(q, q);
        for i in 0..q {
            out.set(
                i,
                i,
                match measure {
                    PairwiseMeasure::Covariance => self.variances[ids[i]],
                    PairwiseMeasure::DotProduct => self.self_dots[ids[i]],
                    PairwiseMeasure::Correlation
                    | PairwiseMeasure::Cosine
                    | PairwiseMeasure::Dice => 1.0,
                },
            );
        }
        if q < 2 {
            return Ok(out);
        }
        if q * (q - 1) / 2 < BATCH_THRESHOLD {
            for i in 0..q {
                for j in i + 1..q {
                    let v = self.pair_value(measure, SequencePair::new(ids[i], ids[j]))?;
                    out.set(i, j, v);
                    out.set(j, i, v);
                }
            }
            return Ok(out);
        }
        // Group the requested pairs by pivot, then one GEMV per group.
        let mut groups: FxHashMap<PivotPair, SubsetGroup> = FxHashMap::default();
        for i in 0..q {
            for j in i + 1..q {
                let pair = SequencePair::new(ids[i], ids[j]);
                let rel = self
                    .affine
                    .relationship(pair)
                    .ok_or(CoreError::MissingRelationship {
                        u: pair.u,
                        v: pair.v,
                    })?;
                let (betas, cells) = groups.entry(rel.pivot).or_default();
                betas.push(rel.beta());
                cells.push((i as u32, j as u32));
            }
        }
        let groups: Vec<(PivotPair, SubsetGroup)> = {
            let mut v: Vec<_> = groups.into_iter().collect();
            // Deterministic order (hash maps iterate arbitrarily).
            v.sort_by_key(|&(p, _)| p);
            v
        };
        let values: Vec<Vec<f64>> = self.pool.parallel_map(groups.len(), |g| {
            let (pivot, (betas, cells)) = &groups[g];
            let stats = &self.pivot_stats[pivot];
            let alpha = stats.alpha(measure);
            cells
                .iter()
                .zip(betas)
                .map(|(&(i, j), b)| {
                    // Same accumulation order as matvec_into: k ascending,
                    // zero coefficients skipped — bit-identical to the
                    // GEMV and to pair_value.
                    let mut raw = 0.0;
                    for (k, &a) in alpha.iter().enumerate() {
                        if !vector::exactly_zero(a) {
                            raw += a * b[k];
                        }
                    }
                    self.finalize(measure, ids[i as usize], ids[j as usize], raw)
                })
                .collect()
        });
        for ((_, (_, cells)), vals) in groups.iter().zip(values) {
            for (&(i, j), v) in cells.iter().zip(vals) {
                out.set(i as usize, j as usize, v);
                out.set(j as usize, i as usize, v);
            }
        }
        Ok(out)
    }

    /// A pairwise measure for every sequence pair, in the lexicographic
    /// order of [`DataMatrix::sequence_pairs`] — the `W_A` counterpart of
    /// [`measures::pairwise_all`], used for the tradeoff experiments
    /// (Figs. 9–11).
    ///
    /// The sweep is one GEMV-shaped pass per pivot over the cached
    /// β-batches, parallelized across pivots; every pair
    /// writes its own lexicographic slot, so the output is deterministic
    /// and identical to a scalar [`MecEngine::pair_value`] loop.
    ///
    /// # Errors
    /// [`CoreError::MissingRelationship`] if the affine set does not
    /// cover every pair (a partial set).
    pub fn pairwise_all(&self, measure: PairwiseMeasure) -> Result<Vec<f64>, CoreError> {
        let n = self.series_count;
        let total = n * (n - 1) / 2;
        if self.affine.len() != total {
            for u in 0..n {
                for v in u + 1..n {
                    if self.affine.relationship(SequencePair::new(u, v)).is_none() {
                        return Err(CoreError::MissingRelationship { u, v });
                    }
                }
            }
        }
        let mut out = vec![0.0; total];
        {
            let batches = self.batches();
            let writer = DisjointWriter::new(&mut out);
            self.pool.parallel_for(batches.len(), |b| {
                let batch = &batches[b];
                let stats = &self.pivot_stats[&batch.pivot];
                let alpha = stats.alpha(measure);
                let mut raw = vec![0.0; batch.members.len()];
                batch
                    .betas
                    .matvec_into(&alpha, &mut raw)
                    .expect("batch shapes agree");
                for (&(u, v, idx), &r) in batch.members.iter().zip(&raw) {
                    let value = self.finalize(measure, u as usize, v as usize, r);
                    // SAFETY: each pair has exactly one lexicographic
                    // index and appears in exactly one pivot batch.
                    unsafe { writer.write(idx as usize, value) };
                }
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afclst::AfclstParams;
    use crate::rmse::percent_rmse;
    use crate::symex::{Symex, SymexParams, SymexVariant};
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn engine_fixture(n: usize, m: usize, k: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams {
            afclst: AfclstParams {
                k,
                gamma_max: 10,
                delta_min: 0,
                seed: 42,
            },
            variant: SymexVariant::Plus,
            threads: 0,
        })
        .run(&data)
        .unwrap();
        (data, affine)
    }

    #[test]
    fn covariance_is_essentially_exact() {
        // Stronger than the paper needs: with the common series AND the
        // intercept column in the least-squares span, the residual is
        // orthogonal to both, so Σ₁₂ propagation is exact to machine
        // precision for ANY data — matching the ~1e-12 RMSE the paper
        // reports in Figs. 9d/10d.
        let (data, affine) = engine_fixture(20, 96, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.pairwise_all(PairwiseMeasure::Covariance).unwrap();
        let exact = measures::pairwise_all(PairwiseMeasure::Covariance, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-6, "%RMSE {err}");
    }

    #[test]
    fn dot_product_is_essentially_exact() {
        // Lemma 1: dot products with the common series survive any LS fit.
        let (data, affine) = engine_fixture(16, 80, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.pairwise_all(PairwiseMeasure::DotProduct).unwrap();
        let exact = measures::pairwise_all(PairwiseMeasure::DotProduct, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-6, "%RMSE {err}");
    }

    #[test]
    fn mean_is_essentially_exact() {
        // LS with intercept preserves column means exactly.
        let (data, affine) = engine_fixture(16, 64, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.location_all(LocationMeasure::Mean);
        let exact = measures::location_all(LocationMeasure::Mean, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-8, "%RMSE {err}");
    }

    #[test]
    fn median_and_mode_are_approximate_but_close() {
        let (data, affine) = engine_fixture(24, 96, 6);
        let engine = MecEngine::new(&data, &affine);
        for (measure, tol) in [
            (LocationMeasure::Median, 8.0),
            (LocationMeasure::Mode, 15.0),
        ] {
            let approx = engine.location_all(measure);
            let exact = measures::location_all(measure, &data);
            let err = percent_rmse(&exact, &approx);
            assert!(err < tol, "{} %RMSE {err}", measure.name());
        }
    }

    #[test]
    fn correlation_is_essentially_exact() {
        // Exact covariance propagation × exact separable normalizers =>
        // exact correlation, cf. the exactness note on
        // covariance_is_essentially_exact.
        let (data, affine) = engine_fixture(20, 96, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.pairwise_all(PairwiseMeasure::Correlation).unwrap();
        let exact = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-6, "%RMSE {err}");
        for (e, a) in exact.iter().zip(approx.iter()) {
            assert!((e - a).abs() < 1e-8, "exact {e} vs approx {a}");
        }
    }

    #[test]
    fn cosine_and_dice_are_essentially_exact() {
        // Both are the (exact) propagated dot product divided by exact
        // separable normalizers.
        let (data, affine) = engine_fixture(16, 80, 4);
        let engine = MecEngine::new(&data, &affine);
        for measure in [PairwiseMeasure::Cosine, PairwiseMeasure::Dice] {
            let approx = engine.pairwise_all(measure).unwrap();
            let exact = measures::pairwise_all(measure, &data);
            let err = percent_rmse(&exact, &approx);
            assert!(err < 1e-5, "{} %RMSE {err}", measure.name());
        }
        // Self values are 1 by definition.
        let m = engine.pairwise(PairwiseMeasure::Cosine, &[0, 1]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn derived_normalizers_match_definitions() {
        let (data, affine) = engine_fixture(8, 40, 2);
        let engine = MecEngine::new(&data, &affine);
        let pair = SequencePair::new(2, 5);
        let sd2 = vector::dot(data.series(2), data.series(2));
        let sd5 = vector::dot(data.series(5), data.series(5));
        assert!((engine.self_dot(2) - sd2).abs() < 1e-9);
        assert!(
            (engine.derived_normalizer(PairwiseMeasure::Cosine, pair) - (sd2 * sd5).sqrt()).abs()
                < 1e-6
        );
        assert!(
            (engine.derived_normalizer(PairwiseMeasure::Dice, pair) - 0.5 * (sd2 + sd5)).abs()
                < 1e-6
        );
        assert_eq!(
            engine.derived_normalizer(PairwiseMeasure::Covariance, pair),
            0.0
        );
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_correct_diagonal() {
        let (data, affine) = engine_fixture(12, 48, 3);
        let engine = MecEngine::new(&data, &affine);
        let ids = vec![1, 3, 5, 7];
        let cov = engine.pairwise(PairwiseMeasure::Covariance, &ids).unwrap();
        assert_eq!(cov.rows(), 4);
        for i in 0..4 {
            assert!((cov.get(i, i) - engine.variance(ids[i])).abs() < 1e-12);
            for j in 0..4 {
                assert_eq!(cov.get(i, j), cov.get(j, i));
            }
        }
        let rho = engine.pairwise(PairwiseMeasure::Correlation, &ids).unwrap();
        for i in 0..4 {
            assert_eq!(rho.get(i, i), 1.0);
        }
    }

    #[test]
    fn unknown_series_is_an_error() {
        let (data, affine) = engine_fixture(8, 32, 2);
        let engine = MecEngine::new(&data, &affine);
        assert!(matches!(
            engine.location_value(LocationMeasure::Mean, 99),
            Err(CoreError::UnknownSeries { id: 99, .. })
        ));
        assert!(engine.location(LocationMeasure::Mean, &[0, 99]).is_err());
    }

    #[test]
    fn center_location_cache_is_reused() {
        let (data, affine) = engine_fixture(10, 32, 2);
        let engine = MecEngine::new(&data, &affine);
        // Two calls for the same measure hit the cache; both must agree.
        let a = engine.location_all(LocationMeasure::Median);
        let b = engine.location_all(LocationMeasure::Median);
        assert_eq!(a, b);
        assert!(engine.center_locations.lock().len() <= 2 * 3);
    }

    #[test]
    fn normalizer_matches_definition() {
        let (data, affine) = engine_fixture(6, 40, 2);
        let engine = MecEngine::new(&data, &affine);
        let pair = SequencePair::new(1, 4);
        let expected = (vector::variance(data.series(1)) * vector::variance(data.series(4))).sqrt();
        assert!((engine.normalizer(pair) - expected).abs() < 1e-12);
    }
}

//! The MEC (measure computation) query engine — paper Sec. 4.1, the `W_A`
//! method of the evaluation.
//!
//! Construction performs the paper's pre-processing step: it computes and
//! stores the statistics of every pivot pair matrix (`O(nk)` pivot pairs,
//! each `O(m)` — *"this one-time cost dominates the Big-O complexity"*)
//! plus the separable normalizers (per-series variances) for the
//! D-measures. After that, every measure value is reconstructed from a
//! hash-map lookup and a 3-term scalar product — no raw series access.

// Index-based loops over matrix coordinates are the clearest notation
// for these kernels.
#![allow(clippy::needless_range_loop)]
use crate::affine::{PivotPair, PivotStats};
use crate::error::CoreError;
use crate::hash::FxHashMap;
use crate::measures::{self, LocationMeasure, PairwiseMeasure};
use crate::symex::AffineSet;
use affinity_data::{DataMatrix, SequencePair, SeriesId};
use affinity_linalg::{vector, Matrix};
use parking_lot::Mutex;

/// MEC query engine answering measure computations through affine
/// relationships.
pub struct MecEngine<'a> {
    data: &'a DataMatrix,
    affine: &'a AffineSet,
    /// `pivotHash` with values filled in (paper Sec. 4.1).
    pivot_stats: FxHashMap<PivotPair, PivotStats>,
    /// Separable normalizers: exact per-series variances (correlation).
    variances: Vec<f64>,
    /// Separable normalizers: exact per-series self dot products
    /// (cosine, Dice).
    self_dots: Vec<f64>,
    /// Lazily computed location values of cluster centres, keyed by
    /// (measure tag, cluster).
    center_locations: Mutex<FxHashMap<(u8, usize), f64>>,
}

fn measure_tag(m: LocationMeasure) -> u8 {
    match m {
        LocationMeasure::Mean => 0,
        LocationMeasure::Median => 1,
        LocationMeasure::Mode => 2,
    }
}

impl<'a> MecEngine<'a> {
    /// Build the engine, running the pre-processing step (pivot statistics
    /// + normalizers).
    ///
    /// # Panics
    /// Panics if `affine` was produced from a differently-shaped matrix.
    pub fn new(data: &'a DataMatrix, affine: &'a AffineSet) -> Self {
        assert_eq!(
            data.series_count(),
            affine.series_count(),
            "affine set does not match the data matrix"
        );
        assert_eq!(
            data.samples(),
            affine.samples(),
            "affine set does not match the data matrix"
        );
        let mut pivot_stats = FxHashMap::default();
        pivot_stats.reserve(affine.pivots().len());
        for &p in affine.pivots() {
            let (common, center) = affine.pivot_columns(data, p);
            pivot_stats.insert(p, PivotStats::compute(common, center));
        }
        let variances = (0..data.series_count())
            .map(|v| vector::variance(data.series(v)))
            .collect();
        let self_dots = (0..data.series_count())
            .map(|v| {
                let s = data.series(v);
                vector::dot(s, s)
            })
            .collect();
        MecEngine {
            data,
            affine,
            pivot_stats,
            variances,
            self_dots,
            center_locations: Mutex::new(FxHashMap::default()),
        }
    }

    /// The underlying affine set.
    pub fn affine(&self) -> &AffineSet {
        self.affine
    }

    /// Exact per-series variance (the correlation normalizer component).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn variance(&self, v: SeriesId) -> f64 {
        self.variances[v]
    }

    /// The correlation normalizer `U_e = √(Σ(s_u)·Σ(s_v))` of a pair.
    pub fn normalizer(&self, pair: SequencePair) -> f64 {
        (self.variances[pair.u] * self.variances[pair.v]).sqrt()
    }

    /// Exact self dot product `Π(s_v, s_v)` (the cosine/Dice normalizer
    /// component).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn self_dot(&self, v: SeriesId) -> f64 {
        self.self_dots[v]
    }

    /// The separable normalizer `U_e` of a derived measure (paper Sec.
    /// 2.3 / 5.1): correlation `√(Σ·Σ)`, cosine `√(Π·Π)`, Dice
    /// `(Π+Π)/2`. Returns `0.0` for non-derived measures.
    pub fn derived_normalizer(&self, measure: PairwiseMeasure, pair: SequencePair) -> f64 {
        match measure {
            PairwiseMeasure::Correlation => self.normalizer(pair),
            PairwiseMeasure::Cosine => (self.self_dots[pair.u] * self.self_dots[pair.v]).sqrt(),
            PairwiseMeasure::Dice => 0.5 * (self.self_dots[pair.u] + self.self_dots[pair.v]),
            _ => 0.0,
        }
    }

    fn center_location(&self, measure: LocationMeasure, cluster: usize) -> f64 {
        let key = (measure_tag(measure), cluster);
        let mut cache = self.center_locations.lock();
        if let Some(&v) = cache.get(&key) {
            return v;
        }
        let v = measures::location(measure, self.affine.clusters().center(cluster));
        cache.insert(key, v);
        v
    }

    /// A location measure for one series, via its per-series relationship
    /// (`L(s_v) ≈ c·L(r_ω(v)) + d`, Eq. 5 in one dimension).
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location_value(&self, measure: LocationMeasure, v: SeriesId) -> Result<f64, CoreError> {
        if v >= self.data.series_count() {
            return Err(CoreError::UnknownSeries {
                id: v,
                series: self.data.series_count(),
            });
        }
        let sr = self.affine.series_relationship(v);
        Ok(sr.propagate(self.center_location(measure, sr.cluster)))
    }

    /// MEC query for a location measure over a set of identifiers
    /// (paper Query 1, L-measure case): returns one value per id.
    ///
    /// Center values are resolved once per cluster, so the per-id cost is
    /// two flops — the paper's point about L-measures needing only O(n)
    /// relationships.
    ///
    /// # Errors
    /// [`CoreError::UnknownSeries`] for out-of-range identifiers.
    pub fn location(
        &self,
        measure: LocationMeasure,
        ids: &[SeriesId],
    ) -> Result<Vec<f64>, CoreError> {
        let n = self.data.series_count();
        if let Some(&bad) = ids.iter().find(|&&v| v >= n) {
            return Err(CoreError::UnknownSeries { id: bad, series: n });
        }
        let centers = self.center_locations_for(measure);
        Ok(ids
            .iter()
            .map(|&v| {
                let sr = self.affine.series_relationship(v);
                sr.propagate(centers[sr.cluster])
            })
            .collect())
    }

    /// A location measure for every series.
    pub fn location_all(&self, measure: LocationMeasure) -> Vec<f64> {
        let centers = self.center_locations_for(measure);
        self.affine
            .series_relationships()
            .iter()
            .map(|sr| sr.propagate(centers[sr.cluster]))
            .collect()
    }

    /// Location values of every cluster centre for a measure, resolved
    /// through the cache with a single lock acquisition.
    fn center_locations_for(&self, measure: LocationMeasure) -> Vec<f64> {
        let k = self.affine.clusters().k();
        let tag = measure_tag(measure);
        let mut cache = self.center_locations.lock();
        (0..k)
            .map(|l| {
                *cache.entry((tag, l)).or_insert_with(|| {
                    measures::location(measure, self.affine.clusters().center(l))
                })
            })
            .collect()
    }

    /// A pairwise measure for one sequence pair, via its affine
    /// relationship (Eqs. 6–8).
    ///
    /// # Errors
    /// [`CoreError::MissingRelationship`] if the pair was never assigned
    /// (cannot happen for sets produced by a full SYMEX run).
    pub fn pair_value(
        &self,
        measure: PairwiseMeasure,
        pair: SequencePair,
    ) -> Result<f64, CoreError> {
        let rel = self
            .affine
            .relationship(pair)
            .ok_or(CoreError::MissingRelationship {
                u: pair.u,
                v: pair.v,
            })?;
        let stats = &self.pivot_stats[&rel.pivot];
        let beta = rel.beta();
        Ok(match measure {
            PairwiseMeasure::Covariance => stats.propagate_covariance(&beta),
            PairwiseMeasure::DotProduct => stats.propagate_dot(&beta),
            PairwiseMeasure::Correlation => {
                let cov = stats.propagate_covariance(&beta);
                let norm = self.normalizer(pair);
                if norm > 0.0 {
                    cov / norm
                } else {
                    0.0
                }
            }
            PairwiseMeasure::Cosine | PairwiseMeasure::Dice => {
                let dot = stats.propagate_dot(&beta);
                let norm = self.derived_normalizer(measure, pair);
                if norm > 0.0 {
                    dot / norm
                } else {
                    0.0
                }
            }
        })
    }

    /// MEC query for a pairwise measure over a set of identifiers
    /// (paper Query 1, T/D-measure case): returns the `|ψ|×|ψ|` matrix.
    ///
    /// Diagonal entries are the exact self-values (variance / self dot
    /// product / 1).
    ///
    /// # Panics
    /// Panics on out-of-range or duplicate-free violations via the
    /// underlying accessors.
    pub fn pairwise(&self, measure: PairwiseMeasure, ids: &[SeriesId]) -> Matrix {
        let q = ids.len();
        let mut out = Matrix::zeros(q, q);
        for i in 0..q {
            out.set(
                i,
                i,
                match measure {
                    PairwiseMeasure::Covariance => self.variances[ids[i]],
                    PairwiseMeasure::DotProduct => self.self_dots[ids[i]],
                    PairwiseMeasure::Correlation
                    | PairwiseMeasure::Cosine
                    | PairwiseMeasure::Dice => 1.0,
                },
            );
            for j in i + 1..q {
                let v = self
                    .pair_value(measure, SequencePair::new(ids[i], ids[j]))
                    .expect("full affine set");
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    /// A pairwise measure for every sequence pair, in the lexicographic
    /// order of [`DataMatrix::sequence_pairs`] — the `W_A` counterpart of
    /// [`measures::pairwise_all`], used for the tradeoff experiments
    /// (Figs. 9–11).
    pub fn pairwise_all(&self, measure: PairwiseMeasure) -> Vec<f64> {
        let n = self.data.series_count();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for u in 0..n {
            for v in u + 1..n {
                out.push(
                    self.pair_value(measure, SequencePair { u, v })
                        .expect("full affine set"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afclst::AfclstParams;
    use crate::rmse::percent_rmse;
    use crate::symex::{Symex, SymexParams, SymexVariant};
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn engine_fixture(n: usize, m: usize, k: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams {
            afclst: AfclstParams {
                k,
                gamma_max: 10,
                delta_min: 0,
                seed: 42,
            },
            variant: SymexVariant::Plus,
        })
        .run(&data)
        .unwrap();
        (data, affine)
    }

    #[test]
    fn covariance_is_essentially_exact() {
        // Stronger than the paper needs: with the common series AND the
        // intercept column in the least-squares span, the residual is
        // orthogonal to both, so Σ₁₂ propagation is exact to machine
        // precision for ANY data — matching the ~1e-12 RMSE the paper
        // reports in Figs. 9d/10d.
        let (data, affine) = engine_fixture(20, 96, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.pairwise_all(PairwiseMeasure::Covariance);
        let exact = measures::pairwise_all(PairwiseMeasure::Covariance, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-6, "%RMSE {err}");
    }

    #[test]
    fn dot_product_is_essentially_exact() {
        // Lemma 1: dot products with the common series survive any LS fit.
        let (data, affine) = engine_fixture(16, 80, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.pairwise_all(PairwiseMeasure::DotProduct);
        let exact = measures::pairwise_all(PairwiseMeasure::DotProduct, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-6, "%RMSE {err}");
    }

    #[test]
    fn mean_is_essentially_exact() {
        // LS with intercept preserves column means exactly.
        let (data, affine) = engine_fixture(16, 64, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.location_all(LocationMeasure::Mean);
        let exact = measures::location_all(LocationMeasure::Mean, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-8, "%RMSE {err}");
    }

    #[test]
    fn median_and_mode_are_approximate_but_close() {
        let (data, affine) = engine_fixture(24, 96, 6);
        let engine = MecEngine::new(&data, &affine);
        for (measure, tol) in [
            (LocationMeasure::Median, 8.0),
            (LocationMeasure::Mode, 15.0),
        ] {
            let approx = engine.location_all(measure);
            let exact = measures::location_all(measure, &data);
            let err = percent_rmse(&exact, &approx);
            assert!(err < tol, "{} %RMSE {err}", measure.name());
        }
    }

    #[test]
    fn correlation_is_essentially_exact() {
        // Exact covariance propagation × exact separable normalizers =>
        // exact correlation, cf. the exactness note on
        // covariance_is_essentially_exact.
        let (data, affine) = engine_fixture(20, 96, 4);
        let engine = MecEngine::new(&data, &affine);
        let approx = engine.pairwise_all(PairwiseMeasure::Correlation);
        let exact = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
        let err = percent_rmse(&exact, &approx);
        assert!(err < 1e-6, "%RMSE {err}");
        for (e, a) in exact.iter().zip(approx.iter()) {
            assert!((e - a).abs() < 1e-8, "exact {e} vs approx {a}");
        }
    }

    #[test]
    fn cosine_and_dice_are_essentially_exact() {
        // Both are the (exact) propagated dot product divided by exact
        // separable normalizers.
        let (data, affine) = engine_fixture(16, 80, 4);
        let engine = MecEngine::new(&data, &affine);
        for measure in [PairwiseMeasure::Cosine, PairwiseMeasure::Dice] {
            let approx = engine.pairwise_all(measure);
            let exact = measures::pairwise_all(measure, &data);
            let err = percent_rmse(&exact, &approx);
            assert!(err < 1e-5, "{} %RMSE {err}", measure.name());
        }
        // Self values are 1 by definition.
        let m = engine.pairwise(PairwiseMeasure::Cosine, &[0, 1]);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn derived_normalizers_match_definitions() {
        let (data, affine) = engine_fixture(8, 40, 2);
        let engine = MecEngine::new(&data, &affine);
        let pair = SequencePair::new(2, 5);
        let sd2 = vector::dot(data.series(2), data.series(2));
        let sd5 = vector::dot(data.series(5), data.series(5));
        assert!((engine.self_dot(2) - sd2).abs() < 1e-9);
        assert!(
            (engine.derived_normalizer(PairwiseMeasure::Cosine, pair) - (sd2 * sd5).sqrt()).abs()
                < 1e-6
        );
        assert!(
            (engine.derived_normalizer(PairwiseMeasure::Dice, pair) - 0.5 * (sd2 + sd5)).abs()
                < 1e-6
        );
        assert_eq!(
            engine.derived_normalizer(PairwiseMeasure::Covariance, pair),
            0.0
        );
    }

    #[test]
    fn pairwise_matrix_is_symmetric_with_correct_diagonal() {
        let (data, affine) = engine_fixture(12, 48, 3);
        let engine = MecEngine::new(&data, &affine);
        let ids = vec![1, 3, 5, 7];
        let cov = engine.pairwise(PairwiseMeasure::Covariance, &ids);
        assert_eq!(cov.rows(), 4);
        for i in 0..4 {
            assert!((cov.get(i, i) - engine.variance(ids[i])).abs() < 1e-12);
            for j in 0..4 {
                assert_eq!(cov.get(i, j), cov.get(j, i));
            }
        }
        let rho = engine.pairwise(PairwiseMeasure::Correlation, &ids);
        for i in 0..4 {
            assert_eq!(rho.get(i, i), 1.0);
        }
    }

    #[test]
    fn unknown_series_is_an_error() {
        let (data, affine) = engine_fixture(8, 32, 2);
        let engine = MecEngine::new(&data, &affine);
        assert!(matches!(
            engine.location_value(LocationMeasure::Mean, 99),
            Err(CoreError::UnknownSeries { id: 99, .. })
        ));
        assert!(engine.location(LocationMeasure::Mean, &[0, 99]).is_err());
    }

    #[test]
    fn center_location_cache_is_reused() {
        let (data, affine) = engine_fixture(10, 32, 2);
        let engine = MecEngine::new(&data, &affine);
        // Two calls for the same measure hit the cache; both must agree.
        let a = engine.location_all(LocationMeasure::Median);
        let b = engine.location_all(LocationMeasure::Median);
        assert_eq!(a, b);
        assert!(engine.center_locations.lock().len() <= 2 * 3);
    }

    #[test]
    fn normalizer_matches_definition() {
        let (data, affine) = engine_fixture(6, 40, 2);
        let engine = MecEngine::new(&data, &affine);
        let pair = SequencePair::new(1, 4);
        let expected = (vector::variance(data.series(1)) * vector::variance(data.series(4))).sqrt();
        assert!((engine.normalizer(pair) - expected).abs() < 1e-12);
    }
}

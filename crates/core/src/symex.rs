//! SYMEX — systematic exploration of the sequence pair set (paper Alg. 2)
//! — and its pseudo-inverse-caching variant SYMEX+.
//!
//! For every sequence pair `e = (u, v)` SYMEX picks a pivot pair
//! (`(u, ω(v))` when the row of `u` is scanned, `(ω(u), v)` when the
//! column of `v` is scanned) and solves the least-squares system
//!
//! ```text
//! [O_p, 1_m] · Θ = S_e,     Θ = [A; bᵀ] ∈ R^{3×2}
//! ```
//!
//! via the pseudo-inverse `pinv = (MᵀM)⁻¹Mᵀ`. Because many sequence pairs
//! share one pivot pair, **SYMEX+** caches `pinv` per pivot and only pays
//! the application cost on a hit — the paper reports a 3.5–4× speedup
//! (Sec. 6.3), which this implementation reproduces.
//!
//! The traversal follows the paper's marching pattern: two cursors `e_e`
//! (outside-in from `(0, n−1)`) and `e_w` (inside-out from the middle
//! adjacent pair) alternately trigger `CreatePivots`, which scans a full
//! row and a full column of the upper-triangular pair set. The paper's
//! `e_e == e_w` stopping rule does not terminate for even `n`, so we stop
//! as soon as every pair is assigned (tracked exactly) with a defensive
//! linear sweep as backstop; a test asserts full single-assignment
//! coverage either way.
//!
//! ## Parallel execution
//!
//! [`Symex::explore`] is split into two phases. The *assignment* phase
//! runs the marching cursors exactly as before, but only records which
//! pivot each pair is anchored at — no floating-point work. The *fit*
//! phase then shards the pairs **by pivot** onto an
//! [`affinity_par::ThreadPool`]: one parallel work item is one pivot
//! group, the SYMEX+ pseudo-inverse is computed once per group by the
//! lane that owns it (thread-local by construction — no shared cache, no
//! locks), and results are merged back in assignment order by pair index.
//! The output is therefore bit-identical for every
//! [`SymexParams::threads`] setting, including the serial `threads = 1`.
//!
//! ## Streaming
//!
//! [`Symex::run`] / [`Symex::explore`] are generic over
//! [`SeriesSource`], so the whole relationship-extraction pipeline can
//! pull columns from an on-disk store instead of a resident matrix. The
//! assignment phase touches no data at all; the fit phase fetches each
//! pivot's common column once per group and each member column once per
//! pair, through **per-lane thread-local buffers** (allocation-free
//! after warm-up), with each group's pivot column *pinned* in caching
//! sources while its members sweep. Since fetched bytes are identical,
//! the streamed build is bit-for-bit equal to the resident build —
//! `tests/outofcore_equivalence.rs` asserts this end to end.
//!
//! ```
//! use affinity_core::symex::{Symex, SymexParams};
//! use affinity_data::generator::{sensor_dataset, SensorConfig};
//! use affinity_storage::MatrixStore;
//!
//! let data = sensor_dataset(&SensorConfig::reduced(10, 32));
//! let path = std::env::temp_dir().join("affinity-symex-stream-doc.afn");
//! MatrixStore::create(&path, &data).unwrap();
//!
//! // Build the affine set straight from disk — `data` is not used.
//! let store = MatrixStore::open(&path).unwrap();
//! let streamed = Symex::new(SymexParams::default()).run(&store).unwrap();
//! let resident = Symex::new(SymexParams::default()).run(&data).unwrap();
//! assert_eq!(streamed.relationships(), resident.relationships());
//! # std::fs::remove_file(&path).ok();
//! ```

use crate::afclst::{afclst, AfclstParams, ClusterModel};
use crate::affine::{solve_relationship_pinv, AffineRelationship, PivotPair, SeriesRelationship};
use crate::error::CoreError;
use crate::hash::FxHashMap;
use affinity_data::source::{prefetch_range, prefetch_window, with_column_buffers};
use affinity_data::{DataMatrix, SequencePair, SeriesId, SeriesSource};
use affinity_linalg::cholesky::Cholesky;
use affinity_linalg::{vector, Matrix};
use affinity_par::ThreadPool;

/// Which SYMEX variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymexVariant {
    /// Recompute the pivot pseudo-inverse for every sequence pair
    /// (paper Alg. 2 as written).
    Basic,
    /// Cache the pseudo-inverse per pivot pair (paper "SYMEX+").
    Plus,
}

/// Parameters for a SYMEX run.
#[derive(Debug, Clone)]
pub struct SymexParams {
    /// Clustering parameters handed to AFCLST (paper: `k`, `γ_max`,
    /// `δ_min`).
    pub afclst: AfclstParams,
    /// Variant selection; `Plus` is the default and what queries should
    /// use.
    pub variant: SymexVariant,
    /// Worker lanes for the parallel fit phase; `0` (the default) means
    /// [`std::thread::available_parallelism`]. The result is bit-identical
    /// for every setting — `1` is the plain serial code path.
    pub threads: usize,
}

impl Default for SymexParams {
    fn default() -> Self {
        SymexParams {
            afclst: AfclstParams::default(),
            variant: SymexVariant::Plus,
            threads: 0,
        }
    }
}

/// The SYMEX runner. Owns its thread pool (workers spawn lazily on the
/// first parallel fit), so repeated builds — e.g. the streaming engine's
/// periodic model refresh — reuse one set of lanes.
#[derive(Debug, Clone)]
pub struct Symex {
    params: SymexParams,
    pool: std::sync::Arc<ThreadPool>,
}

/// Everything SYMEX produces: the paper's `affHash` (pairwise affine
/// relationships), `pivotHash` (pivot pairs), the cluster model, and the
/// per-series relationships used by L-measures.
#[derive(Debug, Clone)]
pub struct AffineSet {
    clusters: ClusterModel,
    relationships: Vec<AffineRelationship>,
    pair_index: FxHashMap<(u32, u32), u32>,
    pivots: Vec<PivotPair>,
    series_rels: Vec<SeriesRelationship>,
    series_count: usize,
    samples: usize,
}

impl AffineSet {
    /// Number of stored pairwise affine relationships
    /// (`n(n−1)/2` after a full run).
    pub fn len(&self) -> usize {
        self.relationships.len()
    }

    /// `true` when no relationships are stored.
    pub fn is_empty(&self) -> bool {
        self.relationships.is_empty()
    }

    /// Number of series in the underlying data matrix.
    pub fn series_count(&self) -> usize {
        self.series_count
    }

    /// Samples per series in the underlying data matrix.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The cluster model the relationships are anchored at.
    pub fn clusters(&self) -> &ClusterModel {
        &self.clusters
    }

    /// All pairwise relationships, in traversal order.
    pub fn relationships(&self) -> &[AffineRelationship] {
        &self.relationships
    }

    /// All distinct pivot pairs (≤ `n·k`, paper Sec. 4).
    pub fn pivots(&self) -> &[PivotPair] {
        &self.pivots
    }

    /// Look up the relationship for a pair.
    pub fn relationship(&self, pair: SequencePair) -> Option<&AffineRelationship> {
        self.pair_index
            .get(&(pair.u as u32, pair.v as u32))
            .map(|&i| &self.relationships[i as usize])
    }

    /// The per-series relationship `s_v ≈ c·r_ω(v) + d` for L-measures.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn series_relationship(&self, v: SeriesId) -> &SeriesRelationship {
        &self.series_rels[v]
    }

    /// All per-series relationships (`n` of them).
    pub fn series_relationships(&self) -> &[SeriesRelationship] {
        &self.series_rels
    }

    /// Replace the stored relationship for `rel.pair` with a re-fit
    /// against the **same pivot** (delta maintenance: the streaming
    /// engine re-solves drifted pairs against retained pivots). Returns
    /// the previous relationship.
    ///
    /// Returns `None` — without modifying anything — when the pair is
    /// unknown or when `rel` is anchored at a different pivot/common
    /// series than the stored relationship: changing pivot membership
    /// requires a full SYMEX re-run, not a patch.
    pub fn replace_relationship(&mut self, rel: AffineRelationship) -> Option<AffineRelationship> {
        let idx = *self
            .pair_index
            .get(&(rel.pair.u as u32, rel.pair.v as u32))? as usize;
        let slot = &mut self.relationships[idx];
        if slot.pivot != rel.pivot || slot.common != rel.common {
            return None;
        }
        Some(std::mem::replace(slot, rel))
    }

    /// Replace the per-series relationship for `sr.series` with a re-fit
    /// against the **same cluster centre**. Returns the previous
    /// relationship, or `None` (unknown series / different cluster)
    /// without modifying anything.
    pub fn replace_series_relationship(
        &mut self,
        sr: SeriesRelationship,
    ) -> Option<SeriesRelationship> {
        let slot = self.series_rels.get_mut(sr.series)?;
        if slot.cluster != sr.cluster {
            return None;
        }
        Some(std::mem::replace(slot, sr))
    }

    /// Reassemble an [`AffineSet`] from decoded parts (the persistence
    /// codec's constructor). The pair index is rebuilt from the
    /// relationship list, exactly as the traversal builds it — entry
    /// `i` of `relationships` is the `i`-th assigned pair.
    pub(crate) fn assemble(
        clusters: ClusterModel,
        relationships: Vec<AffineRelationship>,
        pivots: Vec<PivotPair>,
        series_rels: Vec<SeriesRelationship>,
        series_count: usize,
        samples: usize,
    ) -> AffineSet {
        let mut pair_index: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        pair_index.reserve(relationships.len());
        for (i, rel) in relationships.iter().enumerate() {
            pair_index.insert((rel.pair.u as u32, rel.pair.v as u32), i as u32);
        }
        AffineSet {
            clusters,
            relationships,
            pair_index,
            pivots,
            series_rels,
            series_count,
            samples,
        }
    }

    /// Split the set into `k` disjoint per-shard sets, routing every
    /// relationship and pivot to `owner[common]` — the shard that owns
    /// the pivot's common series. Shards are **partitions of this exact
    /// model**, not independent re-fits: every β vector, pivot pair, and
    /// per-series fit is carried over unchanged (bit-identical), and
    /// within each shard the relationships and pivots keep their global
    /// traversal order (so a shard's pivot list is a subsequence of
    /// [`AffineSet::pivots`]). Each shard keeps the full cluster model
    /// and the full per-series relationship table; the per-series table
    /// is a snapshot — after delta refreshes only the owning shard's
    /// copy is patched, so location reads must route by owner.
    ///
    /// # Panics
    /// Panics if `owner.len() != series_count` or any entry is `>= k`.
    pub fn partition(&self, owner: &[usize], k: usize) -> Vec<AffineSet> {
        assert_eq!(
            owner.len(),
            self.series_count,
            "partition: owner map must cover every series"
        );
        assert!(
            owner.iter().all(|&s| s < k),
            "partition: shard id out of range"
        );
        let mut rels: Vec<Vec<AffineRelationship>> = vec![Vec::new(); k];
        for rel in &self.relationships {
            rels[owner[rel.common]].push(rel.clone());
        }
        let mut pivots: Vec<Vec<PivotPair>> = vec![Vec::new(); k];
        for &p in &self.pivots {
            pivots[owner[p.common]].push(p);
        }
        rels.into_iter()
            .zip(pivots)
            .map(|(r, p)| {
                AffineSet::assemble(
                    self.clusters.clone(),
                    r,
                    p,
                    self.series_rels.clone(),
                    self.series_count,
                    self.samples,
                )
            })
            .collect()
    }

    /// The two pivot-matrix columns of a pivot pair: the common series
    /// borrowed from `data` and the cluster centre from the model.
    ///
    /// # Panics
    /// Panics if the pivot's identifiers are out of range for `data`.
    pub fn pivot_columns<'a>(
        &'a self,
        data: &'a DataMatrix,
        pivot: PivotPair,
    ) -> (&'a [f64], &'a [f64]) {
        (
            data.series(pivot.common),
            self.clusters.center(pivot.cluster),
        )
    }
}

/// The explicit `3×m` pseudo-inverse of `[O_p, 1_m]`, via normal
/// equations with a Cholesky solve (`O(m)` total) — the object SYMEX+
/// caches. A tiny ridge is added if the Gram matrix is numerically
/// singular (e.g. a constant centre).
pub fn pivot_pseudo_inverse(common: &[f64], center: &[f64]) -> Matrix {
    let m = common.len();
    debug_assert_eq!(center.len(), m);
    let mf = m as f64;
    let g11 = vector::dot(common, common);
    let g12 = vector::dot(common, center);
    let g22 = vector::dot(center, center);
    let h1 = vector::sum(common);
    let h2 = vector::sum(center);
    let gram = Matrix::from_rows(&[vec![g11, g12, h1], vec![g12, g22, h2], vec![h1, h2, mf]]);
    let chol = match Cholesky::new(&gram) {
        Ok(c) => c,
        Err(_) => {
            // Rank-deficient design: regularize just enough to solve; the
            // resulting relationship is the minimum-ridge LS fit.
            let ridge = 1e-9 * (g11 + g22 + mf).max(1.0);
            let mut reg = gram.clone();
            for i in 0..3 {
                reg.set(i, i, reg.get(i, i) + ridge);
            }
            Cholesky::new(&reg).expect("ridge-regularized Gram is SPD")
        }
    };
    // pinv column j = G⁻¹ · (common[j], center[j], 1)ᵀ.
    let mut pinv = Matrix::zeros(3, m);
    for j in 0..m {
        let col = chol
            .solve(&[common[j], center[j], 1.0])
            .expect("3-vector rhs");
        pinv.col_mut(j).copy_from_slice(&col);
    }
    pinv
}

/// Counters describing a SYMEX run; used by the scalability experiments
/// (paper Fig. 13).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymexStats {
    /// Pseudo-inverses computed from scratch.
    pub pinv_computed: usize,
    /// Pseudo-inverse cache hits (always 0 for `Basic`).
    pub pinv_cache_hits: usize,
    /// Sequence pairs assigned during the marching traversal.
    pub assigned_in_march: usize,
    /// Sequence pairs assigned by the defensive sweep (0 in practice).
    pub assigned_in_sweep: usize,
}

impl Symex {
    /// Create a runner with the given parameters.
    pub fn new(params: SymexParams) -> Self {
        let pool = std::sync::Arc::new(ThreadPool::new(params.threads));
        Self::with_pool(params, pool)
    }

    /// Create a runner that shares an existing pool (e.g. one pool per
    /// streaming engine instead of one per refresh). The pool's lane
    /// count takes precedence over [`SymexParams::threads`].
    pub fn with_pool(params: SymexParams, pool: std::sync::Arc<ThreadPool>) -> Self {
        Symex { params, pool }
    }

    /// Parameters in use.
    pub fn params(&self) -> &SymexParams {
        &self.params
    }

    /// Run AFCLST + SYMEX over any column source (resident matrix,
    /// on-disk store, bounded cache); the result does not depend on the
    /// source backing.
    ///
    /// # Errors
    /// Propagates clustering errors (see [`afclst`]) and source fetch
    /// failures.
    pub fn run<S: SeriesSource + ?Sized>(&self, source: &S) -> Result<AffineSet, CoreError> {
        self.run_with_stats(source).map(|(set, _)| set)
    }

    /// Like [`Symex::run`] but also returns traversal counters.
    ///
    /// # Errors
    /// Propagates clustering errors; see [`afclst`].
    pub fn run_with_stats<S: SeriesSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<(AffineSet, SymexStats), CoreError> {
        let clusters = afclst(source, &self.params.afclst)?;
        self.explore(source, clusters)
    }

    /// Run SYMEX against a pre-computed cluster model (lets experiments
    /// reuse one clustering across variants, as Fig. 13 does).
    ///
    /// Pair→pivot assignment runs the serial marching traversal (cheap,
    /// no float work — and no data access); the least-squares fits are
    /// then sharded by pivot across [`SymexParams::threads`] lanes and
    /// merged back by pair index, so the result is bit-identical for
    /// every thread count. Each lane fetches columns through its own
    /// thread-local buffers; a group's pivot common column is pinned in
    /// caching sources while that group is being fitted.
    ///
    /// # Errors
    /// Propagates source fetch failures.
    pub fn explore<S: SeriesSource + ?Sized>(
        &self,
        source: &S,
        clusters: ClusterModel,
    ) -> Result<(AffineSet, SymexStats), CoreError> {
        let n = source.series_count();
        let total = n * (n - 1) / 2;
        let mut stats = SymexStats::default();
        let pool = &self.pool;

        // Per-series relationships for the L-measures; pure per-index
        // fits, collected in series order. Lanes pull scattered index
        // ranges, so the whole pass is announced up front rather than
        // window-by-window.
        prefetch_range(source, 0..n);
        let series_rels: Vec<SeriesRelationship> = pool
            .parallel_map(n, |v| {
                with_column_buffers(|buf, _| {
                    let s = source.read_into(v, buf)?;
                    let l = clusters.cluster_of(v);
                    let (c, d) = crate::affine::fit_series(clusters.center(l), s);
                    Ok(SeriesRelationship {
                        series: v,
                        cluster: l,
                        c,
                        d,
                    })
                })
            })
            .into_iter()
            .collect::<Result<_, CoreError>>()?;

        // --- Assignment phase (serial marching cursors) ---------------
        // At most n·k distinct pivots exist (paper Sec. 4); pre-sizing
        // from the cluster count avoids rehash churn in the marching hot
        // loop.
        let pivot_cap = n.saturating_mul(clusters.k()).min(total.max(1));
        let mut pair_index: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        pair_index.reserve(total);
        let mut pivots: Vec<PivotPair> = Vec::with_capacity(pivot_cap);
        let mut pivot_seen: FxHashMap<PivotPair, u32> = FxHashMap::default();
        pivot_seen.reserve(pivot_cap);
        // Pair assignments in traversal order, and the members of each
        // pivot group (as assignment indices) in first-seen pivot order.
        let mut assigned: Vec<(SequencePair, SeriesId)> = Vec::with_capacity(total);
        let mut group_members: Vec<Vec<u32>> = Vec::with_capacity(pivot_cap);

        let mut assign_insert = |e: SequencePair,
                                 common: SeriesId,
                                 assigned: &mut Vec<(SequencePair, SeriesId)>,
                                 pair_index: &mut FxHashMap<(u32, u32), u32>|
         -> bool {
            let key = (e.u as u32, e.v as u32);
            if pair_index.contains_key(&key) {
                return false;
            }
            let other = e.other(common);
            let pivot = PivotPair {
                common,
                cluster: clusters.cluster_of(other),
            };
            let group = match pivot_seen.entry(pivot) {
                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let id = pivots.len() as u32;
                    v.insert(id);
                    pivots.push(pivot);
                    group_members.push(Vec::new());
                    id
                }
            };
            pair_index.insert(key, assigned.len() as u32);
            group_members[group as usize].push(assigned.len() as u32);
            assigned.push((e, common));
            true
        };

        // CreatePivots(e_z): scan row u_z (second components) and column
        // v_z (first components), exactly as Alg. 2's two loops.
        let mut create_pivots = |ez: (usize, usize),
                                 assigned: &mut Vec<(SequencePair, SeriesId)>,
                                 pair_index: &mut FxHashMap<(u32, u32), u32>,
                                 stats: &mut SymexStats| {
            let (uz, vz) = ez;
            for v in uz + 1..n {
                if assign_insert(SequencePair::new(uz, v), uz, assigned, pair_index) {
                    stats.assigned_in_march += 1;
                }
            }
            for u in 0..vz {
                if assign_insert(SequencePair::new(u, vz), vz, assigned, pair_index) {
                    stats.assigned_in_march += 1;
                }
            }
        };

        if n >= 2 {
            // Marching cursors (paper lines 2–10, 0-based).
            let mut ee = (0usize, n - 1);
            let mid = (n - 1) / 2;
            let mut ew = (mid, mid + 1);
            create_pivots(ee, &mut assigned, &mut pair_index, &mut stats);
            if ew != ee {
                create_pivots(ew, &mut assigned, &mut pair_index, &mut stats);
            }
            let mut flip = false;
            while assigned.len() < total {
                let advanced = if !flip {
                    // Move e_e towards e_w.
                    if ee.0 + 1 < ee.1 {
                        ee = (ee.0 + 1, ee.1 - 1);
                        if ee.0 < ee.1 {
                            create_pivots(ee, &mut assigned, &mut pair_index, &mut stats);
                        }
                        true
                    } else {
                        false
                    }
                } else {
                    // Move e_w towards e_e.
                    if ew.0 > 0 && ew.1 + 1 < n {
                        ew = (ew.0 - 1, ew.1 + 1);
                        create_pivots(ew, &mut assigned, &mut pair_index, &mut stats);
                        true
                    } else {
                        false
                    }
                };
                flip = !flip;
                if !advanced {
                    // Try the other cursor once; if both are exhausted,
                    // fall through to the sweep.
                    let other_can = if flip {
                        ee.0 + 1 < ee.1
                    } else {
                        ew.0 > 0 && ew.1 + 1 < n
                    };
                    if !other_can {
                        break;
                    }
                }
            }
            // Defensive sweep: guarantees full coverage regardless of the
            // marching pattern's parity quirks.
            if assigned.len() < total {
                for u in 0..n {
                    for v in u + 1..n {
                        if assign_insert(SequencePair::new(u, v), u, &mut assigned, &mut pair_index)
                        {
                            stats.assigned_in_sweep += 1;
                        }
                    }
                }
            }
        }
        debug_assert_eq!(assigned.len(), total);

        // --- Fit phase (parallel, sharded by pivot) -------------------
        // Each work item is one pivot group; its pseudo-inverse is
        // computed once, thread-locally, by the lane that owns the group
        // (`Plus`), or per pair to stay faithful to Alg. 2's cost model
        // (`Basic`). Fits are pure functions of the pivot columns and the
        // target series, so the merged output below does not depend on
        // the schedule. Column access goes through the source with
        // per-lane buffers: the common column is fetched once per group
        // and held, member columns are fetched once per pair. Each lane
        // pins its group's common column for the duration of the group
        // — at most one pin per lane at a time, so small caches keep
        // unpinned slots for the member sweep — which lets later groups
        // sharing the same common hit the cache instead of the disk.
        let variant = self.params.variant;
        let fitted: Vec<Result<Vec<AffineRelationship>, CoreError>> =
            pool.parallel_map(group_members.len(), |g| {
                with_column_buffers(|buf_common, buf_other| {
                    let pivot = pivots[g];
                    // The group's column sequence is fully known before
                    // any fetch: the pivot's common column, then each
                    // member pair's other series in assignment order —
                    // announced a sliding window ahead of the sweep.
                    let seq: Vec<u32> = std::iter::once(pivot.common as u32)
                        .chain(group_members[g].iter().map(|&idx| {
                            let (pair, common) = assigned[idx as usize];
                            pair.other(common) as u32
                        }))
                        .collect();
                    prefetch_window(source, &seq, 0);
                    let s_common = source.read_into(pivot.common, buf_common)?;
                    source.pin(pivot.common);
                    let mut fit_group = || {
                        let center = clusters.center(pivot.cluster);
                        let shared_pinv = match variant {
                            SymexVariant::Plus => Some(pivot_pseudo_inverse(s_common, center)),
                            SymexVariant::Basic => None,
                        };
                        group_members[g]
                            .iter()
                            .enumerate()
                            .map(|(pos, &idx)| {
                                let (pair, common) = assigned[idx as usize];
                                prefetch_window(source, &seq, pos + 1);
                                let target_other =
                                    source.read_into(pair.other(common), buf_other)?;
                                let (a, b) = match &shared_pinv {
                                    Some(pinv) => {
                                        solve_relationship_pinv(pinv, s_common, target_other)
                                    }
                                    None => {
                                        let pinv = pivot_pseudo_inverse(s_common, center);
                                        solve_relationship_pinv(&pinv, s_common, target_other)
                                    }
                                };
                                Ok(AffineRelationship {
                                    pair,
                                    pivot,
                                    common,
                                    a,
                                    b,
                                })
                            })
                            .collect::<Result<Vec<_>, CoreError>>()
                    };
                    let result = fit_group();
                    source.unpin(pivot.common);
                    result
                })
            });
        let fitted: Vec<Vec<AffineRelationship>> =
            fitted.into_iter().collect::<Result<_, CoreError>>()?;
        match variant {
            SymexVariant::Plus => {
                // One pseudo-inverse per distinct pivot; every further
                // member of a group is the moral equivalent of a cache
                // hit — the counters match the serial cache exactly.
                stats.pinv_computed = pivots.len();
                stats.pinv_cache_hits = total - pivots.len();
            }
            SymexVariant::Basic => {
                stats.pinv_computed = total;
                stats.pinv_cache_hits = 0;
            }
        }

        // --- Deterministic merge by pair index ------------------------
        let mut slots: Vec<Option<AffineRelationship>> = vec![None; total];
        for (group, rels) in fitted.into_iter().enumerate() {
            for (rel, &idx) in rels.into_iter().zip(&group_members[group]) {
                slots[idx as usize] = Some(rel);
            }
        }
        let relationships: Vec<AffineRelationship> = slots
            .into_iter()
            .map(|slot| slot.expect("every assigned pair is fitted"))
            .collect();

        debug_assert_eq!(relationships.len(), total);
        Ok((
            AffineSet {
                clusters,
                relationships,
                pair_index,
                pivots,
                series_rels,
                series_count: n,
                samples: source.samples(),
            },
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn params(variant: SymexVariant, k: usize, seed: u64) -> SymexParams {
        SymexParams {
            afclst: AfclstParams {
                k,
                gamma_max: 10,
                delta_min: 0,
                seed,
            },
            variant,
            threads: 0,
        }
    }

    #[test]
    fn covers_every_pair_exactly_once() {
        for n in [2usize, 3, 4, 5, 8, 13, 20] {
            let data = sensor_dataset(&SensorConfig::reduced(n, 32));
            let set = Symex::new(params(SymexVariant::Plus, 2.min(n), 1))
                .run(&data)
                .unwrap();
            assert_eq!(set.len(), n * (n - 1) / 2, "n = {n}");
            for u in 0..n {
                for v in u + 1..n {
                    let r = set
                        .relationship(SequencePair::new(u, v))
                        .unwrap_or_else(|| panic!("missing pair ({u},{v})"));
                    assert_eq!(r.pair, SequencePair::new(u, v));
                    assert!(r.pair.contains(r.common));
                }
            }
        }
    }

    #[test]
    fn pivot_count_is_at_most_nk() {
        let data = sensor_dataset(&SensorConfig::reduced(30, 48));
        let k = 4;
        let set = Symex::new(params(SymexVariant::Plus, k, 2))
            .run(&data)
            .unwrap();
        assert!(
            set.pivots().len() <= 30 * k,
            "pivots {} > nk {}",
            set.pivots().len(),
            30 * k
        );
        assert!(!set.pivots().is_empty());
    }

    #[test]
    fn variants_agree_on_relationships() {
        let data = sensor_dataset(&SensorConfig::reduced(12, 40));
        let basic = Symex::new(params(SymexVariant::Basic, 3, 7))
            .run(&data)
            .unwrap();
        let plus = Symex::new(params(SymexVariant::Plus, 3, 7))
            .run(&data)
            .unwrap();
        assert_eq!(basic.len(), plus.len());
        for r in basic.relationships() {
            let p = plus.relationship(r.pair).unwrap();
            assert_eq!(r.pivot, p.pivot);
            for i in 0..2 {
                for j in 0..2 {
                    assert!(
                        (r.a[i][j] - p.a[i][j]).abs() < 1e-9,
                        "A[{i}][{j}] mismatch for {:?}",
                        r.pair
                    );
                }
                assert!((r.b[i] - p.b[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn plus_caches_pseudo_inverses() {
        let data = sensor_dataset(&SensorConfig::reduced(24, 40));
        let (_, basic_stats) = Symex::new(params(SymexVariant::Basic, 3, 7))
            .run_with_stats(&data)
            .unwrap();
        let (_, plus_stats) = Symex::new(params(SymexVariant::Plus, 3, 7))
            .run_with_stats(&data)
            .unwrap();
        assert_eq!(basic_stats.pinv_cache_hits, 0);
        assert_eq!(basic_stats.pinv_computed, 24 * 23 / 2);
        assert!(plus_stats.pinv_cache_hits > 0);
        assert!(
            plus_stats.pinv_computed < basic_stats.pinv_computed / 2,
            "cache should collapse pinv computations: {} vs {}",
            plus_stats.pinv_computed,
            basic_stats.pinv_computed
        );
    }

    #[test]
    fn relationship_first_column_is_identity() {
        // The common series is in the design span, so the LS fit recovers
        // column one of (A, b) as (1, 0, 0).
        let data = sensor_dataset(&SensorConfig::reduced(10, 64));
        let set = Symex::new(params(SymexVariant::Plus, 3, 4))
            .run(&data)
            .unwrap();
        for r in set.relationships() {
            assert!((r.a[0][0] - 1.0).abs() < 1e-6, "a11 = {}", r.a[0][0]);
            assert!(r.a[1][0].abs() < 1e-6, "a21 = {}", r.a[1][0]);
            assert!(r.b[0].abs() < 1e-4, "b1 = {}", r.b[0]);
        }
    }

    #[test]
    fn series_relationships_cover_all_series() {
        let data = sensor_dataset(&SensorConfig::reduced(15, 32));
        let set = Symex::new(params(SymexVariant::Plus, 3, 9))
            .run(&data)
            .unwrap();
        assert_eq!(set.series_relationships().len(), 15);
        for v in 0..15 {
            let sr = set.series_relationship(v);
            assert_eq!(sr.series, v);
            assert_eq!(sr.cluster, set.clusters().cluster_of(v));
        }
    }

    #[test]
    fn pivot_columns_borrow_correct_slices() {
        let data = sensor_dataset(&SensorConfig::reduced(8, 24));
        let set = Symex::new(params(SymexVariant::Plus, 2, 3))
            .run(&data)
            .unwrap();
        let pivot = set.pivots()[0];
        let (common, center) = set.pivot_columns(&data, pivot);
        assert_eq!(common.len(), 24);
        assert_eq!(center.len(), 24);
        assert_eq!(common, data.series(pivot.common));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = sensor_dataset(&SensorConfig::reduced(12, 32));
        let a = Symex::new(params(SymexVariant::Plus, 3, 11))
            .run(&data)
            .unwrap();
        let b = Symex::new(params(SymexVariant::Plus, 3, 11))
            .run(&data)
            .unwrap();
        assert_eq!(a.relationships().len(), b.relationships().len());
        for (x, y) in a.relationships().iter().zip(b.relationships()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let data = sensor_dataset(&SensorConfig::reduced(20, 48));
        for variant in [SymexVariant::Plus, SymexVariant::Basic] {
            let mut serial = params(variant, 3, 5);
            serial.threads = 1;
            let mut parallel = params(variant, 3, 5);
            parallel.threads = 4;
            let (a, sa) = Symex::new(serial).run_with_stats(&data).unwrap();
            let (b, sb) = Symex::new(parallel).run_with_stats(&data).unwrap();
            assert_eq!(sa, sb);
            assert_eq!(a.pivots(), b.pivots());
            assert_eq!(a.relationships(), b.relationships());
            assert_eq!(a.series_relationships(), b.series_relationships());
        }
    }

    #[test]
    fn pseudo_inverse_matches_qr_pseudo_inverse() {
        let common: Vec<f64> = (0..30).map(|i| (i as f64 * 0.2).sin() + 1.0).collect();
        let center: Vec<f64> = (0..30).map(|i| (i as f64 * 0.45).cos()).collect();
        let fast = pivot_pseudo_inverse(&common, &center);
        let design = crate::affine::design_matrix(&common, &center);
        let exact = affinity_linalg::qr::pseudo_inverse(&design).unwrap();
        assert!(fast.max_abs_diff(&exact) < 1e-8);
    }

    #[test]
    fn degenerate_constant_center_does_not_crash() {
        // Constant centre makes [O_p, 1_m] rank-deficient; ridge fallback
        // must keep the pipeline alive.
        let common: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let center = vec![3.0; 20];
        let pinv = pivot_pseudo_inverse(&common, &center);
        assert_eq!(pinv.rows(), 3);
        assert_eq!(pinv.cols(), 20);
        assert!(pinv.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn two_series_edge_case() {
        let data = sensor_dataset(&SensorConfig::reduced(2, 16));
        let set = Symex::new(params(SymexVariant::Plus, 1, 1))
            .run(&data)
            .unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.relationship(SequencePair::new(0, 1)).is_some());
    }
}

//! Error type for the framework core.

use affinity_data::SourceError;
use affinity_linalg::LinalgError;
use std::fmt;

/// Errors surfaced by clustering, relationship computation and query
/// processing.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A numerical kernel failed; wraps the underlying error.
    Numerical(LinalgError),
    /// A [`SeriesSource`](affinity_data::SeriesSource) fetch failed
    /// during a streamed build (I/O error, checksum mismatch, bad
    /// index).
    Source(SourceError),
    /// A model and a data source disagree on the matrix shape.
    ShapeMismatch {
        /// `(series, samples)` of the data source.
        data: (usize, usize),
        /// `(series, samples)` the model was computed over.
        model: (usize, usize),
    },
    /// Clustering was asked for more clusters than there are series.
    TooManyClusters {
        /// Requested cluster count `k`.
        requested: usize,
        /// Available series count `n`.
        available: usize,
    },
    /// A query referenced a series identifier outside `0..n`.
    UnknownSeries {
        /// The offending identifier.
        id: usize,
        /// The number of series in the data matrix.
        series: usize,
    },
    /// A sequence pair has no stored affine relationship (indicates the
    /// SYMEX traversal and the query disagree about the data matrix).
    MissingRelationship {
        /// First member of the pair.
        u: usize,
        /// Second member of the pair.
        v: usize,
    },
    /// Invalid parameter value; carries a description.
    InvalidParameter(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Numerical(e) => write!(f, "numerical kernel failed: {e}"),
            CoreError::Source(e) => write!(f, "series source fetch failed: {e}"),
            CoreError::ShapeMismatch { data, model } => write!(
                f,
                "model (series {}, samples {}) does not match the data source (series {}, samples {})",
                model.0, model.1, data.0, data.1
            ),
            CoreError::TooManyClusters {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} clusters but only {available} series exist"
            ),
            CoreError::UnknownSeries { id, series } => {
                write!(f, "series id {id} out of range (n = {series})")
            }
            CoreError::MissingRelationship { u, v } => {
                write!(f, "no affine relationship stored for pair ({u}, {v})")
            }
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Numerical(e) => Some(e),
            CoreError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Numerical(e)
    }
}

impl From<SourceError> for CoreError {
    fn from(e: SourceError) -> Self {
        CoreError::Source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::TooManyClusters {
            requested: 10,
            available: 3,
        };
        assert!(e.to_string().contains("10"));
        let e = CoreError::from(LinalgError::NotPositiveDefinite);
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::MissingRelationship { u: 1, v: 2 }
            .to_string()
            .contains("(1, 2)"));
        assert!(CoreError::UnknownSeries { id: 9, series: 5 }
            .to_string()
            .contains("9"));
        assert!(CoreError::InvalidParameter("k = 0".into())
            .to_string()
            .contains("k = 0"));
    }
}

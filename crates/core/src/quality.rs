//! LSFD-based quality diagnostics for affine relationships.
//!
//! Sec. 3 of the paper introduces the LSFD metric to *characterize the
//! quality of affine relationships*: a small LSFD between the sequence
//! pair matrix `S_e` and its pivot pair matrix `O_p` means the
//! relationship transforms almost perfectly. This module turns that story
//! into an operational tool: score every relationship of an
//! [`AffineSet`], summarize the distribution, and surface the worst
//! offenders — the pairs whose **median/mode** propagation (the only
//! genuinely approximate measures, see `mec`) is least trustworthy.

use crate::lsfd::lsfd;
use crate::symex::AffineSet;
use affinity_data::{DataMatrix, SequencePair};

/// LSFD score of one relationship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelationshipQuality {
    /// The scored sequence pair.
    pub pair: SequencePair,
    /// `D_F(S_e, O_p)` — lower is better (Def. 1).
    pub lsfd: f64,
}

/// Distribution summary of relationship quality across an affine set.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Number of scored relationships.
    pub scored: usize,
    /// Minimum LSFD.
    pub min: f64,
    /// Median LSFD.
    pub median: f64,
    /// Mean LSFD.
    pub mean: f64,
    /// 95th-percentile LSFD.
    pub p95: f64,
    /// Maximum LSFD.
    pub max: f64,
    /// The `worst_k` relationships by LSFD, descending.
    pub worst: Vec<RelationshipQuality>,
}

impl QualityReport {
    /// Render a compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "LSFD over {} relationships: min {:.3e}, median {:.3e}, mean {:.3e}, p95 {:.3e}, max {:.3e}",
            self.scored, self.min, self.median, self.mean, self.p95, self.max
        )
    }
}

/// Score the LSFD of a single relationship: the distance between the
/// sequence pair matrix `[s_common, s_other]` and the pivot pair matrix
/// `[s_common, r_ω(other)]`.
///
/// Returns `None` if the pair has no stored relationship.
pub fn relationship_lsfd(data: &DataMatrix, affine: &AffineSet, pair: SequencePair) -> Option<f64> {
    let rel = affine.relationship(pair)?;
    let common = data.series(rel.common);
    let other = data.series(rel.pair.other(rel.common));
    let center = affine.clusters().center(rel.pivot.cluster);
    // LSFD is symmetric, column centring handles offsets; numerical
    // failures (pathological inputs) are reported as infinite distance
    // rather than an error — diagnostics must be total.
    Some(lsfd(common, center, common, other).unwrap_or(f64::INFINITY))
}

/// Score every relationship (or a stride-sampled subset for large sets)
/// and build a [`QualityReport`].
///
/// `sample_stride = 1` scores everything; larger strides score every
/// `stride`-th relationship — useful because each LSFD costs an `m×4`
/// Gram matrix. `worst_k` bounds the size of the offender list.
///
/// # Panics
/// Panics if `sample_stride == 0` or the affine set is empty.
pub fn quality_report(
    data: &DataMatrix,
    affine: &AffineSet,
    sample_stride: usize,
    worst_k: usize,
) -> QualityReport {
    assert!(sample_stride > 0, "sample_stride must be >= 1");
    assert!(!affine.is_empty(), "cannot score an empty affine set");
    let mut scores: Vec<RelationshipQuality> = affine
        .relationships()
        .iter()
        .step_by(sample_stride)
        .map(|rel| RelationshipQuality {
            pair: rel.pair,
            lsfd: relationship_lsfd(data, affine, rel.pair).expect("stored relationship"),
        })
        .collect();
    scores.sort_by(|a, b| a.lsfd.partial_cmp(&b.lsfd).expect("no NaN scores"));
    let n = scores.len();
    let min = scores[0].lsfd;
    let max = scores[n - 1].lsfd;
    let median = if n % 2 == 1 {
        scores[n / 2].lsfd
    } else {
        0.5 * (scores[n / 2 - 1].lsfd + scores[n / 2].lsfd)
    };
    let mean = scores.iter().map(|s| s.lsfd).sum::<f64>() / n as f64;
    let p95 = scores[((n - 1) as f64 * 0.95).round() as usize].lsfd;
    let worst: Vec<RelationshipQuality> = scores.iter().rev().take(worst_k).copied().collect();
    QualityReport {
        scored: n,
        min,
        median,
        mean,
        p95,
        max,
        worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afclst::AfclstParams;
    use crate::symex::{Symex, SymexParams, SymexVariant};
    use affinity_data::generator::{sensor_dataset, SensorConfig};
    use affinity_data::DataMatrix;

    fn fixture(n: usize, m: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams {
            afclst: AfclstParams {
                k: 3,
                gamma_max: 10,
                delta_min: 0,
                seed: 11,
            },
            variant: SymexVariant::Plus,
            threads: 0,
        })
        .run(&data)
        .unwrap();
        (data, affine)
    }

    #[test]
    fn report_statistics_are_consistent() {
        let (data, affine) = fixture(16, 48);
        let report = quality_report(&data, &affine, 1, 5);
        assert_eq!(report.scored, data.pair_count());
        assert!(report.min <= report.median);
        assert!(report.median <= report.p95 + 1e-12);
        assert!(report.p95 <= report.max);
        assert!(report.min >= 0.0);
        assert_eq!(report.worst.len(), 5);
        assert!(report.worst.windows(2).all(|w| w[0].lsfd >= w[1].lsfd));
        assert!((report.worst[0].lsfd - report.max).abs() < 1e-15);
        assert!(report.summary().contains("relationships"));
    }

    #[test]
    fn exact_affine_world_scores_near_zero() {
        // Series that are exact affine images of two latents => every
        // relationship has (near-)zero LSFD.
        let m = 40;
        let b1: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).sin()).collect();
        let b2: Vec<f64> = (0..m).map(|i| (i as f64 * 0.07).cos()).collect();
        let cols: Vec<Vec<f64>> = (0..10)
            .map(|j| {
                let a = 1.0 + j as f64 * 0.2;
                let c = 0.5 - j as f64 * 0.1;
                b1.iter()
                    .zip(&b2)
                    .map(|(x, y)| a * x + c * y + j as f64)
                    .collect()
            })
            .collect();
        let data = DataMatrix::from_series(cols);
        let affine = Symex::new(SymexParams {
            afclst: AfclstParams {
                k: 2,
                gamma_max: 20,
                delta_min: 0,
                seed: 4,
            },
            variant: SymexVariant::Plus,
            threads: 0,
        })
        .run(&data)
        .unwrap();
        let report = quality_report(&data, &affine, 1, 3);
        assert!(report.max < 1e-4, "max LSFD {}", report.max);
    }

    #[test]
    fn sampling_stride_reduces_scored_count() {
        let (data, affine) = fixture(14, 32);
        let full = quality_report(&data, &affine, 1, 2);
        let sampled = quality_report(&data, &affine, 7, 2);
        assert!(sampled.scored < full.scored);
        assert_eq!(sampled.scored, full.scored.div_ceil(7));
    }

    #[test]
    fn single_pair_lookup() {
        let (data, affine) = fixture(8, 32);
        let p = SequencePair::new(1, 5);
        assert!(relationship_lsfd(&data, &affine, p).is_some());
        // quality is per stored pair only
        let (data2, _) = fixture(8, 32);
        let _ = data2;
    }

    #[test]
    #[should_panic(expected = "sample_stride")]
    fn zero_stride_panics() {
        let (data, affine) = fixture(6, 24);
        quality_report(&data, &affine, 0, 1);
    }
}

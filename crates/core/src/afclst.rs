//! AFCLST — the affine clustering algorithm (paper Alg. 1).
//!
//! Clusters the `n` series of the data matrix into `k` clusters such that
//! each series is well approximated by a *linear* multiple of its cluster
//! centre. Together with a shared common series, this makes the LSFD
//! between a sequence pair matrix and its pivot pair matrix small
//! (paper Fig. 4): the orthogonal projection error onto the 2-D hyperplane
//! spanned by `s_u` and `r_ω(v)` is at most the projection error onto the
//! centre alone.
//!
//! * **Assignment step**: series `s` joins the cluster whose unit centre
//!   `r` minimizes `‖(r rᵀ)s − s‖` — computed as
//!   `√(‖s‖² − (rᵀs)²)` without materializing the projection.
//! * **Update step**: each centre becomes the dominant left singular
//!   vector of the matrix of its members (`SVDLV` in the paper), computed
//!   by power iteration through matrix-vector products only.
//! * **Termination**: when an assignment pass changes at most `δ_min`
//!   memberships, or after `γ_max` iterations. (The paper's Alg. 1 tests
//!   `|nChg − currNChg| ≤ δ_min` between successive iterations; we use the
//!   simpler absolute criterion, which is what the successive-difference
//!   test converges to and is standard for k-means-style loops.)
//!
//! Empty clusters are re-seeded from a random series, so the model always
//! returns exactly `k` usable centres.
//!
//! ## Streaming
//!
//! [`afclst`] is generic over [`SeriesSource`], so it runs identically
//! over a resident [`DataMatrix`](affinity_data::DataMatrix) (fetches
//! are zero-copy borrows) and an out-of-core store. Every phase is a
//! sequential **pass over columns, each column fetched once per pass**:
//! the marginal statistics (`‖s‖²`) are computed during the *first*
//! assignment sweep (the two passes share one column scan, so a cold
//! column is touched one fewer time per build), each further assignment
//! sweep is its own pass, and — the restructured part — the centre
//! update, where all clusters advance their power iterations
//! *together*: one pass accumulates
//! `w_ℓ = Σ_{v∈ℓ} (s_vᵀ u_ℓ) s_v` for every still-unconverged cluster,
//! instead of iterating each cluster's members separately. Per cluster
//! the accumulation order (ascending `v`) and the per-step arithmetic
//! are unchanged, so the result is **bit-for-bit identical** to the
//! resident per-cluster formulation — and the working set is the `k`
//! centre/iterate vectors plus one column buffer, never the matrix.
//!
//! Because each pass knows its column sequence up front, it *announces*
//! it to the source ([`SeriesSource::prefetch`], a sliding window ahead
//! of the scan): a prefetching cache overlaps the next columns' I/O
//! with the current column's arithmetic, while resident sources ignore
//! the hint entirely.

// Index-based loops over matrix coordinates are the clearest notation
// for these kernels.
#![allow(clippy::needless_range_loop)]
use crate::error::CoreError;
use affinity_data::source::{prefetch_window, scan_sequence};
use affinity_data::SeriesSource;
use affinity_linalg::vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the AFCLST algorithm. Paper defaults (Sec. 6.2):
/// `k = 6`, `γ_max = 10`, `δ_min = 10`.
#[derive(Debug, Clone)]
pub struct AfclstParams {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum iterations `γ_max`.
    pub gamma_max: usize,
    /// Convergence threshold `δ_min` on membership changes.
    pub delta_min: usize,
    /// RNG seed for centre initialization and re-seeding.
    pub seed: u64,
}

impl Default for AfclstParams {
    fn default() -> Self {
        AfclstParams {
            k: 6,
            gamma_max: 10,
            delta_min: 10,
            seed: 0x00AF_C157,
        }
    }
}

/// The output of AFCLST: unit-norm cluster centres `r_ℓ` and the cluster
/// assignment function `ω(v)`.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    centers: Vec<Vec<f64>>,
    assignment: Vec<usize>,
    iterations: usize,
    converged: bool,
}

impl ClusterModel {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// The cluster assignment `ω(v)`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn cluster_of(&self, v: usize) -> usize {
        self.assignment[v]
    }

    /// Unit-norm centre `r_ℓ`.
    ///
    /// # Panics
    /// Panics if `l >= k`.
    #[inline]
    pub fn center(&self, l: usize) -> &[f64] {
        &self.centers[l]
    }

    /// All assignments (`n` entries).
    pub fn assignments(&self) -> &[usize] {
        &self.assignment
    }

    /// Member series of cluster `l`.
    pub fn members(&self, l: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c == l).then_some(v))
            .collect()
    }

    /// Iterations the algorithm ran for.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the δ_min criterion fired before γ_max was exhausted.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Reassemble a [`ClusterModel`] from decoded parts (the
    /// persistence codec's constructor).
    pub(crate) fn from_parts(
        centers: Vec<Vec<f64>>,
        assignment: Vec<usize>,
        iterations: usize,
        converged: bool,
    ) -> ClusterModel {
        ClusterModel {
            centers,
            assignment,
            iterations,
            converged,
        }
    }

    /// Mean orthogonal projection error of every series onto its centre —
    /// the quantity AFCLST descends on; useful to compare `k` choices.
    /// One streamed pass over the columns.
    ///
    /// # Errors
    /// Propagates fetch failures from the source.
    pub fn mean_projection_error<S: SeriesSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<f64, CoreError> {
        let n = source.series_count();
        let scan = scan_sequence(n);
        let mut buf = Vec::new();
        let mut total = 0.0;
        for v in 0..n {
            prefetch_window(source, &scan, v);
            let s = source.read_into(v, &mut buf)?;
            total += projection_error(s, vector::dot(s, s), &self.centers[self.assignment[v]]);
        }
        Ok(total / n as f64)
    }
}

/// `‖(r rᵀ)s − s‖ = √(‖s‖² − (rᵀs)²)` for a unit centre `r`.
#[inline]
fn projection_error(s: &[f64], s_norm_sq: f64, r: &[f64]) -> f64 {
    let c = vector::dot(r, s);
    (s_norm_sq - c * c).max(0.0).sqrt()
}

/// Index of the centre minimizing the projection error of `s`.
#[inline]
fn best_center(s: &[f64], s_norm_sq: f64, centers: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_err = f64::INFINITY;
    for (l, r) in centers.iter().enumerate() {
        let e = projection_error(s, s_norm_sq, r);
        if e < best_err {
            best_err = e;
            best = l;
        }
    }
    best
}

/// Fetch series `v` and return it normalized (the arbitrary `e₀`
/// direction for an all-zero column) — shared by centre initialization,
/// empty-cluster re-seeding, and singleton clusters.
fn normalized_column<S: SeriesSource + ?Sized>(
    source: &S,
    v: usize,
    buf: &mut Vec<f64>,
) -> Result<Vec<f64>, CoreError> {
    let s = source.read_into(v, buf)?;
    let mut c = s.to_vec();
    if vector::exactly_zero(vector::normalize(&mut c)) {
        c[0] = 1.0; // constant-zero series: arbitrary direction
    }
    Ok(c)
}

/// The update phase (`SVDLV`): every cluster's centre becomes the
/// dominant left singular vector of its member matrix, by power
/// iteration. All multi-member clusters iterate **together**: each power
/// step is one sequential pass over the columns, accumulating
/// `w_ℓ = Σ_{v∈ℓ} (s_vᵀ u_ℓ) s_v` for every still-active cluster.
/// Per cluster this performs the exact floating-point sequence of the
/// classical per-cluster loop (members visited in ascending `v`,
/// identical normalize/convergence arithmetic, per-cluster iteration
/// counts preserved), so the restructure is invisible in the output —
/// it only changes the access pattern from per-cluster random access to
/// shared sequential passes, which is what an out-of-core source needs.
///
/// RNG draws happen in cluster order during setup (re-seeds and initial
/// iterates), matching the per-cluster formulation whenever no
/// degenerate re-randomization occurs (re-randomizing is only hit when
/// every member is exactly orthogonal to the iterate).
fn update_centers<S: SeriesSource + ?Sized>(
    source: &S,
    centers: &mut [Vec<f64>],
    assignment: &[usize],
    n: usize,
    m: usize,
    rng: &mut StdRng,
    buf: &mut Vec<f64>,
) -> Result<(), CoreError> {
    let k = centers.len();
    let mut counts = vec![0usize; k];
    for &l in assignment {
        counts[l] += 1;
    }
    let mut active = vec![false; k];
    let mut iterates: Vec<Vec<f64>> = vec![Vec::new(); k];
    for l in 0..k {
        match counts[l] {
            0 => {
                // Re-seed an empty cluster from a random series.
                let v = rng.gen_range(0..n);
                centers[l] = normalized_column(source, v, buf)?;
            }
            1 => {
                let v = assignment
                    .iter()
                    .position(|&c| c == l)
                    .expect("count says one member");
                centers[l] = normalized_column(source, v, buf)?;
            }
            _ => {
                let mut u: Vec<f64> = (0..m).map(|_| rng.gen_range(-0.5..0.5)).collect();
                if vector::exactly_zero(vector::normalize(&mut u)) {
                    u[0] = 1.0;
                }
                iterates[l] = u;
                active[l] = true;
            }
        }
    }
    if !active.iter().any(|&a| a) {
        return Ok(());
    }

    const MAX_IT: usize = 60;
    const TOL: f64 = 1e-9;
    let mut accums: Vec<Vec<f64>> = (0..k)
        .map(|l| if active[l] { vec![0.0; m] } else { Vec::new() })
        .collect();
    for _step in 0..MAX_IT {
        for l in 0..k {
            if active[l] {
                accums[l].iter_mut().for_each(|x| *x = 0.0);
            }
        }
        // One pass over the columns: every active cluster advances one
        // power step. The pass's exact column sequence (members of
        // still-active clusters, ascending) is known up front, so it is
        // announced to the source a sliding window ahead.
        let seq: Vec<u32> = (0..n)
            .filter(|&v| active[assignment[v]])
            .map(|v| v as u32)
            .collect();
        for (pos, &v32) in seq.iter().enumerate() {
            let v = v32 as usize;
            let l = assignment[v];
            prefetch_window(source, &seq, pos);
            let s = source.read_into(v, buf)?;
            let c = vector::dot(s, &iterates[l]);
            if !vector::exactly_zero(c) {
                vector::axpy(c, s, &mut accums[l]);
            }
        }
        let mut any_active = false;
        for l in 0..k {
            if !active[l] {
                continue;
            }
            let w = &mut accums[l];
            if vector::exactly_zero(vector::normalize(w)) {
                // All members orthogonal to the iterate; re-randomize.
                iterates[l] = (0..m).map(|_| rng.gen_range(-0.5..0.5)).collect();
                vector::normalize(&mut iterates[l]);
                any_active = true;
                continue;
            }
            let cos = vector::dot(w, &iterates[l]).abs().min(1.0);
            std::mem::swap(&mut iterates[l], w);
            if (1.0 - cos * cos).sqrt() < TOL {
                active[l] = false;
            } else {
                any_active = true;
            }
        }
        if !any_active {
            break;
        }
    }
    for l in 0..k {
        if !iterates[l].is_empty() {
            centers[l] = std::mem::take(&mut iterates[l]);
        }
    }
    Ok(())
}

/// Run AFCLST over any column source — a resident
/// [`DataMatrix`](affinity_data::DataMatrix), an on-disk
/// `MatrixStore`, or a bounded-memory cache. The result is bit-for-bit
/// independent of the source backing (see the module docs).
///
/// # Errors
/// * [`CoreError::TooManyClusters`] if `k > n`;
/// * [`CoreError::InvalidParameter`] if `k == 0` or `γ_max == 0`;
/// * [`CoreError::Source`] if a column fetch fails.
pub fn afclst<S: SeriesSource + ?Sized>(
    source: &S,
    params: &AfclstParams,
) -> Result<ClusterModel, CoreError> {
    let n = source.series_count();
    let m = source.samples();
    if params.k == 0 {
        return Err(CoreError::InvalidParameter("k must be >= 1".into()));
    }
    if params.gamma_max == 0 {
        return Err(CoreError::InvalidParameter("gamma_max must be >= 1".into()));
    }
    if params.k > n {
        return Err(CoreError::TooManyClusters {
            requested: params.k,
            available: n,
        });
    }
    let k = params.k;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut buf = Vec::new();

    // Initialization: k distinct random columns, normalized (Alg. 1
    // lines 1–3; distinctness avoids immediately-duplicate centres).
    let mut picks: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        picks.swap(i, j);
    }
    let init_seq: Vec<u32> = picks[..k].iter().map(|&v| v as u32).collect();
    source.prefetch(&init_seq);
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    for i in 0..k {
        centers.push(normalized_column(source, picks[i], &mut buf)?);
    }

    // Marginal statistics (‖s_v‖²) are filled during the *first*
    // assignment sweep below — the two passes share one column scan, so
    // a cold out-of-core column is touched once, not twice. The fused
    // form performs the exact per-column arithmetic of the separate
    // passes (each dot product depends only on its own column), so the
    // output is unchanged.
    let mut norms_sq: Vec<f64> = Vec::with_capacity(n);
    let scan = scan_sequence(n);

    let mut assignment = vec![usize::MAX; n];
    let mut iterations = 0;
    let mut converged = false;

    for _iter in 0..params.gamma_max {
        iterations += 1;
        // Assignment phase: one pass, each column fetched once (the
        // first doubles as the marginal-statistics pass).
        let mut changes = 0;
        for v in 0..n {
            prefetch_window(source, &scan, v);
            let s = source.read_into(v, &mut buf)?;
            if norms_sq.len() <= v {
                norms_sq.push(vector::dot(s, s));
            }
            let best = best_center(s, norms_sq[v], &centers);
            if assignment[v] != best {
                assignment[v] = best;
                changes += 1;
            }
        }
        if changes <= params.delta_min {
            converged = true;
            break;
        }
        update_centers(source, &mut centers, &assignment, n, m, &mut rng, &mut buf)?;
    }

    // Make the returned assignment consistent with the returned centres
    // (one final pass).
    for v in 0..n {
        prefetch_window(source, &scan, v);
        let s = source.read_into(v, &mut buf)?;
        assignment[v] = best_center(s, norms_sq[v], &centers);
    }

    Ok(ClusterModel {
        centers,
        assignment,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_data::DataMatrix;

    /// Two planted linear clusters: multiples of two orthogonal-ish bases.
    fn planted(n_per: usize, m: usize) -> DataMatrix {
        let base1: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).sin()).collect();
        let base2: Vec<f64> = (0..m).map(|i| (i as f64 * 0.05).cos() + 0.2).collect();
        let mut cols = Vec::new();
        for j in 0..n_per {
            let g = 1.0 + j as f64 * 0.3;
            cols.push(base1.iter().map(|v| g * v).collect());
        }
        for j in 0..n_per {
            let g = 0.5 + j as f64 * 0.2;
            cols.push(base2.iter().map(|v| g * v).collect());
        }
        DataMatrix::from_series(cols)
    }

    #[test]
    fn recovers_planted_clusters() {
        let data = planted(8, 64);
        let model = afclst(
            &data,
            &AfclstParams {
                k: 2,
                gamma_max: 20,
                delta_min: 0,
                seed: 3,
            },
        )
        .unwrap();
        // All of the first 8 series share a cluster, all of the last 8
        // share the other.
        let c0 = model.cluster_of(0);
        let c1 = model.cluster_of(8);
        assert_ne!(c0, c1);
        for v in 0..8 {
            assert_eq!(model.cluster_of(v), c0, "series {v}");
        }
        for v in 8..16 {
            assert_eq!(model.cluster_of(v), c1, "series {v}");
        }
        // Centres are unit norm.
        for l in 0..2 {
            assert!((vector::norm(model.center(l)) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_error_decreases_with_more_clusters() {
        let data = affinity_data::generator::sensor_dataset(
            &affinity_data::generator::SensorConfig::reduced(40, 96),
        );
        let err_k2 = afclst(
            &data,
            &AfclstParams {
                k: 2,
                gamma_max: 15,
                delta_min: 0,
                seed: 1,
            },
        )
        .unwrap()
        .mean_projection_error(&data)
        .unwrap();
        let err_k8 = afclst(
            &data,
            &AfclstParams {
                k: 8,
                gamma_max: 15,
                delta_min: 0,
                seed: 1,
            },
        )
        .unwrap()
        .mean_projection_error(&data)
        .unwrap();
        assert!(
            err_k8 <= err_k2 * 1.05,
            "k=8 error {err_k8} not better than k=2 error {err_k2}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = planted(5, 32);
        let p = AfclstParams {
            k: 3,
            gamma_max: 10,
            delta_min: 0,
            seed: 9,
        };
        let a = afclst(&data, &p).unwrap();
        let b = afclst(&data, &p).unwrap();
        assert_eq!(a.assignments(), b.assignments());
        for l in 0..3 {
            assert_eq!(a.center(l), b.center(l));
        }
    }

    #[test]
    fn members_partition_the_series() {
        let data = planted(6, 48);
        let model = afclst(&data, &AfclstParams::default().clone_with_k(3)).unwrap();
        let mut seen = vec![false; data.series_count()];
        for l in 0..model.k() {
            for v in model.members(l) {
                assert!(!seen[v], "series {v} in two clusters");
                seen[v] = true;
                assert_eq!(model.cluster_of(v), l);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parameter_validation() {
        let data = planted(2, 16);
        assert!(matches!(
            afclst(
                &data,
                &AfclstParams {
                    k: 0,
                    ..Default::default()
                }
            ),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            afclst(
                &data,
                &AfclstParams {
                    gamma_max: 0,
                    ..Default::default()
                }
            ),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            afclst(
                &data,
                &AfclstParams {
                    k: 100,
                    ..Default::default()
                }
            ),
            Err(CoreError::TooManyClusters { .. })
        ));
    }

    #[test]
    fn k_equals_n_is_fine() {
        let data = planted(2, 16); // n = 4
        let model = afclst(
            &data,
            &AfclstParams {
                k: 4,
                gamma_max: 5,
                delta_min: 0,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(model.k(), 4);
    }

    #[test]
    fn single_cluster_centers_on_dominant_direction() {
        let data = planted(6, 40);
        let model = afclst(
            &data,
            &AfclstParams {
                k: 1,
                gamma_max: 10,
                delta_min: 0,
                seed: 5,
            },
        )
        .unwrap();
        assert!(model.members(0).len() == data.series_count());
        assert!((vector::norm(model.center(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convergence_flag_and_iterations() {
        let data = planted(8, 64);
        let model = afclst(
            &data,
            &AfclstParams {
                k: 2,
                gamma_max: 50,
                delta_min: 0,
                seed: 3,
            },
        )
        .unwrap();
        assert!(model.converged());
        assert!(model.iterations() < 50);
    }

    #[test]
    fn constant_series_are_tolerated() {
        let mut cols = vec![vec![0.0; 20], vec![5.0; 20]];
        cols.push((0..20).map(|i| (i as f64 * 0.4).sin()).collect());
        cols.push((0..20).map(|i| (i as f64 * 0.4).sin() * 2.0).collect());
        let data = DataMatrix::from_series(cols);
        let model = afclst(
            &data,
            &AfclstParams {
                k: 2,
                gamma_max: 10,
                delta_min: 0,
                seed: 8,
            },
        )
        .unwrap();
        assert_eq!(model.assignments().len(), 4);
    }

    impl AfclstParams {
        fn clone_with_k(&self, k: usize) -> AfclstParams {
            AfclstParams {
                k,
                gamma_max: 15,
                delta_min: 0,
                ..*self
            }
        }
    }
}

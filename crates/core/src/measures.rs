//! Statistical measures and their exact ("from scratch") computation —
//! the paper's measure taxonomy (Sec. 2.1) and its `W_N` baseline.
//!
//! * **L-measures** (location, per series): mean, median, mode;
//! * **T-measures** (dispersion, per pair): covariance, dot product;
//! * **D-measures** (derived, per pair): Pearson correlation (covariance
//!   normalized by `√(Σ(s_u)·Σ(s_v))`).
//!
//! The mode of a continuous series is not defined in the paper; following
//! DESIGN.md §4 we use the argmax of a Gaussian kernel density estimate
//! evaluated at the sample points (`O(m²)`) — an exact continuous-mode
//! estimator whose cost profile matches the paper's reported ~3500×
//! speedup for mode.

use affinity_data::DataMatrix;
use affinity_linalg::vector;

/// Location measures (per single series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocationMeasure {
    /// Arithmetic mean.
    Mean,
    /// Median (average of the two central order statistics for even `m`).
    Median,
    /// Mode via Gaussian KDE (see module docs).
    Mode,
}

impl LocationMeasure {
    /// All location measures, in paper order.
    pub const ALL: [LocationMeasure; 3] = [
        LocationMeasure::Mean,
        LocationMeasure::Median,
        LocationMeasure::Mode,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            LocationMeasure::Mean => "mean",
            LocationMeasure::Median => "median",
            LocationMeasure::Mode => "mode",
        }
    }
}

/// Pairwise measures: the T-measures plus the D-measures.
///
/// The paper's evaluation uses covariance, dot product and correlation;
/// Sec. 2.1 notes the approach extends to "a large number of other
/// derived measures that are derived by normalizing the dot product",
/// naming cosine similarity and the Dice coefficient — both implemented
/// here end to end (MEC + SCAPE) with separable normalizers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairwiseMeasure {
    /// Population covariance (T-measure).
    Covariance,
    /// Raw dot product `Σᵢ xᵢyᵢ` (T-measure).
    DotProduct,
    /// Pearson correlation coefficient (D-measure; covariance normalized
    /// by `√(Σ(s_u)·Σ(s_v))`).
    Correlation,
    /// Cosine similarity (D-measure; dot product normalized by
    /// `√(Π₁₁·Π₂₂)` — extension, paper Sec. 2.1).
    Cosine,
    /// Dice coefficient `2·Π₁₂/(Π₁₁+Π₂₂)` (D-measure; dot product
    /// normalized by `(Π₁₁+Π₂₂)/2` — extension, paper Sec. 2.1).
    Dice,
}

impl PairwiseMeasure {
    /// The pairwise measures of the paper's evaluation, in paper order.
    pub const ALL: [PairwiseMeasure; 3] = [
        PairwiseMeasure::Covariance,
        PairwiseMeasure::DotProduct,
        PairwiseMeasure::Correlation,
    ];

    /// Paper measures plus the dot-product-derived extensions.
    pub const EXTENDED: [PairwiseMeasure; 5] = [
        PairwiseMeasure::Covariance,
        PairwiseMeasure::DotProduct,
        PairwiseMeasure::Correlation,
        PairwiseMeasure::Cosine,
        PairwiseMeasure::Dice,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PairwiseMeasure::Covariance => "covariance",
            PairwiseMeasure::DotProduct => "dot product",
            PairwiseMeasure::Correlation => "correlation",
            PairwiseMeasure::Cosine => "cosine",
            PairwiseMeasure::Dice => "dice",
        }
    }

    /// `true` for derived (D-) measures, which need a normalizer.
    pub fn is_derived(&self) -> bool {
        matches!(
            self,
            PairwiseMeasure::Correlation | PairwiseMeasure::Cosine | PairwiseMeasure::Dice
        )
    }
}

/// Any measure the framework supports; used by workload generators and the
/// SCAPE index to treat all six uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// A location measure.
    Location(LocationMeasure),
    /// A pairwise (dispersion or derived) measure.
    Pairwise(PairwiseMeasure),
}

impl Measure {
    /// All six measures of the paper's evaluation.
    pub const ALL: [Measure; 6] = [
        Measure::Location(LocationMeasure::Mean),
        Measure::Location(LocationMeasure::Median),
        Measure::Location(LocationMeasure::Mode),
        Measure::Pairwise(PairwiseMeasure::Covariance),
        Measure::Pairwise(PairwiseMeasure::DotProduct),
        Measure::Pairwise(PairwiseMeasure::Correlation),
    ];

    /// Paper measures plus the dot-product-derived extensions
    /// (cosine similarity, Dice coefficient).
    pub const EXTENDED: [Measure; 8] = [
        Measure::Location(LocationMeasure::Mean),
        Measure::Location(LocationMeasure::Median),
        Measure::Location(LocationMeasure::Mode),
        Measure::Pairwise(PairwiseMeasure::Covariance),
        Measure::Pairwise(PairwiseMeasure::DotProduct),
        Measure::Pairwise(PairwiseMeasure::Correlation),
        Measure::Pairwise(PairwiseMeasure::Cosine),
        Measure::Pairwise(PairwiseMeasure::Dice),
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Location(l) => l.name(),
            Measure::Pairwise(p) => p.name(),
        }
    }
}

/// Exact mean.
pub fn mean(x: &[f64]) -> f64 {
    vector::mean(x)
}

/// Exact median: sorts a copy (`O(m log m)`); even lengths average the two
/// central values.
///
/// # Panics
/// Panics on an empty slice.
pub fn median(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "median of empty series");
    let mut v = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median: NaN in series"));
    let m = v.len();
    if m % 2 == 1 {
        v[m / 2]
    } else {
        0.5 * (v[m / 2 - 1] + v[m / 2])
    }
}

/// Exact continuous mode: argmax over the sample points of a Gaussian KDE
/// with Silverman bandwidth. `O(m²)` — deliberately the expensive,
/// high-quality estimator (see module docs).
///
/// A constant series returns its value directly.
///
/// # Panics
/// Panics on an empty slice.
pub fn mode(x: &[f64]) -> f64 {
    assert!(!x.is_empty(), "mode of empty series");
    let m = x.len();
    if m == 1 {
        return x[0];
    }
    let sigma = vector::variance(x).sqrt();
    if vector::exactly_zero(sigma) {
        return x[0];
    }
    // Silverman's rule of thumb.
    let h = 1.06 * sigma * (m as f64).powf(-0.2);
    let inv2h2 = 1.0 / (2.0 * h * h);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_x = x[0];
    for &xi in x {
        let mut dens = 0.0;
        for &xj in x {
            let d = xi - xj;
            dens += (-d * d * inv2h2).exp();
        }
        if dens > best_val {
            best_val = dens;
            best_x = xi;
        }
    }
    best_x
}

/// Dispatch a location measure.
///
/// # Panics
/// Panics on an empty slice (see the individual measures).
pub fn location(measure: LocationMeasure, x: &[f64]) -> f64 {
    match measure {
        LocationMeasure::Mean => mean(x),
        LocationMeasure::Median => median(x),
        LocationMeasure::Mode => mode(x),
    }
}

/// Exact population covariance.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    vector::covariance(x, y)
}

/// Exact dot product.
pub fn dot_product(x: &[f64], y: &[f64]) -> f64 {
    vector::dot(x, y)
}

/// Exact Pearson correlation (0 for constant series).
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    vector::correlation(x, y)
}

/// Exact cosine similarity `x·y / (‖x‖·‖y‖)`; 0 if either vector is zero.
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let d = vector::norm(x) * vector::norm(y);
    if d > 0.0 {
        vector::dot(x, y) / d
    } else {
        0.0
    }
}

/// Exact Dice coefficient `2·x·y / (x·x + y·y)`; 0 if both vectors are
/// zero.
pub fn dice(x: &[f64], y: &[f64]) -> f64 {
    let d = vector::dot(x, x) + vector::dot(y, y);
    if d > 0.0 {
        2.0 * vector::dot(x, y) / d
    } else {
        0.0
    }
}

/// Dispatch a pairwise measure.
pub fn pairwise(measure: PairwiseMeasure, x: &[f64], y: &[f64]) -> f64 {
    match measure {
        PairwiseMeasure::Covariance => covariance(x, y),
        PairwiseMeasure::DotProduct => dot_product(x, y),
        PairwiseMeasure::Correlation => correlation(x, y),
        PairwiseMeasure::Cosine => cosine(x, y),
        PairwiseMeasure::Dice => dice(x, y),
    }
}

/// The diagonal ("self") value of a pairwise measure — used when MEC
/// queries fill a full `|ψ|×|ψ|` matrix.
pub fn pairwise_self(measure: PairwiseMeasure, x: &[f64]) -> f64 {
    match measure {
        PairwiseMeasure::Covariance => vector::variance(x),
        PairwiseMeasure::DotProduct => vector::dot(x, x),
        PairwiseMeasure::Correlation | PairwiseMeasure::Cosine | PairwiseMeasure::Dice => 1.0,
    }
}

/// `W_N` over a whole dataset: a location measure for every series.
pub fn location_all(measure: LocationMeasure, data: &DataMatrix) -> Vec<f64> {
    (0..data.series_count())
        .map(|v| location(measure, data.series(v)))
        .collect()
}

/// `W_N` over a whole dataset: a pairwise measure for every sequence pair,
/// in the lexicographic order of [`DataMatrix::sequence_pairs`].
pub fn pairwise_all(measure: PairwiseMeasure, data: &DataMatrix) -> Vec<f64> {
    let n = data.series_count();
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    match measure {
        PairwiseMeasure::Correlation => {
            // Precompute per-series moments so the naive path is the fair
            // O(n²·m) scan, not an O(n²·3m) one.
            let means: Vec<f64> = (0..n).map(|v| vector::mean(data.series(v))).collect();
            let vars: Vec<f64> = (0..n).map(|v| vector::variance(data.series(v))).collect();
            for u in 0..n {
                for v in u + 1..n {
                    let su = data.series(u);
                    let sv = data.series(v);
                    let mut cov = 0.0;
                    for (a, b) in su.iter().zip(sv.iter()) {
                        cov += (a - means[u]) * (b - means[v]);
                    }
                    cov /= su.len() as f64;
                    let d = (vars[u] * vars[v]).sqrt();
                    out.push(if d > 0.0 { cov / d } else { 0.0 });
                }
            }
        }
        PairwiseMeasure::Cosine | PairwiseMeasure::Dice => {
            // Precompute self dot products so the naive path is the fair
            // O(n²·m) scan.
            let self_dots: Vec<f64> = (0..n)
                .map(|v| {
                    let s = data.series(v);
                    vector::dot(s, s)
                })
                .collect();
            for u in 0..n {
                for v in u + 1..n {
                    let d = vector::dot(data.series(u), data.series(v));
                    let value = match measure {
                        PairwiseMeasure::Cosine => {
                            let norm = (self_dots[u] * self_dots[v]).sqrt();
                            if norm > 0.0 {
                                d / norm
                            } else {
                                0.0
                            }
                        }
                        _ => {
                            let denom = self_dots[u] + self_dots[v];
                            if denom > 0.0 {
                                2.0 * d / denom
                            } else {
                                0.0
                            }
                        }
                    };
                    out.push(value);
                }
            }
        }
        _ => {
            for u in 0..n {
                for v in u + 1..n {
                    out.push(pairwise(measure, data.series(u), data.series(v)));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }

    #[test]
    fn mode_finds_densest_region() {
        // Cluster around 5.0 with outliers elsewhere.
        let x = [5.0, 5.1, 4.9, 5.05, 4.95, 1.0, 9.0, 5.0];
        let m = mode(&x);
        assert!((m - 5.0).abs() < 0.2, "mode {m}");
    }

    #[test]
    fn mode_degenerate_cases() {
        assert_eq!(mode(&[2.5]), 2.5);
        assert_eq!(mode(&[3.0, 3.0, 3.0]), 3.0);
    }

    #[test]
    fn mode_of_bimodal_picks_heavier() {
        let mut x = vec![];
        x.extend(
            std::iter::repeat_n(1.0, 10)
                .enumerate()
                .map(|(i, v)| v + i as f64 * 0.01),
        );
        x.extend(
            std::iter::repeat_n(8.0, 4)
                .enumerate()
                .map(|(i, v)| v + i as f64 * 0.01),
        );
        let m = mode(&x);
        assert!(m < 2.0, "mode {m} should be near the heavier cluster");
    }

    #[test]
    fn pairwise_dispatch_matches_direct() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 0.0, 2.0, 5.0];
        assert_eq!(
            pairwise(PairwiseMeasure::DotProduct, &x, &y),
            dot_product(&x, &y)
        );
        assert_eq!(
            pairwise(PairwiseMeasure::Covariance, &x, &y),
            covariance(&x, &y)
        );
        assert_eq!(
            pairwise(PairwiseMeasure::Correlation, &x, &y),
            correlation(&x, &y)
        );
    }

    #[test]
    fn pairwise_self_values() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(pairwise_self(PairwiseMeasure::Correlation, &x), 1.0);
        assert_eq!(pairwise_self(PairwiseMeasure::DotProduct, &x), 14.0);
        assert!((pairwise_self(PairwiseMeasure::Covariance, &x) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_constants_cover_six_measures() {
        assert_eq!(Measure::ALL.len(), 6);
        let names: Vec<&str> = Measure::ALL.iter().map(|m| m.name()).collect();
        assert!(names.contains(&"mode"));
        assert!(names.contains(&"correlation"));
        assert!(PairwiseMeasure::Correlation.is_derived());
        assert!(!PairwiseMeasure::Covariance.is_derived());
    }

    #[test]
    fn dataset_wide_naive_matches_per_pair() {
        let data = DataMatrix::from_series(vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 2.0, 5.0],
            vec![0.0, -1.0, 1.0],
        ]);
        let all = pairwise_all(PairwiseMeasure::Covariance, &data);
        assert_eq!(all.len(), 3);
        assert!((all[0] - covariance(data.series(0), data.series(1))).abs() < 1e-15);
        assert!((all[2] - covariance(data.series(1), data.series(2))).abs() < 1e-15);
        let locs = location_all(LocationMeasure::Mean, &data);
        assert_eq!(locs, vec![2.0, 3.0, 0.0]);
        let corr_all = pairwise_all(PairwiseMeasure::Correlation, &data);
        assert!((corr_all[0] - correlation(data.series(0), data.series(1))).abs() < 1e-12);
    }
}

//! A fast, non-cryptographic hasher for small integer keys.
//!
//! SYMEX stores one affine relationship per sequence pair — up to ~500k
//! entries keyed by `(u, v)` pairs — and looks them up on every query.
//! SipHash (std's default) is needlessly slow for integer keys; this is
//! the classic Fx/FNV-style multiply-rotate mix used by rustc, written
//! here to keep the dependency budget at zero.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher specialized for integer-sized keys.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunked little-endian reads; good enough for the rare non-integer
        // keys, exact for the common fixed-width ones.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(usize, usize), u32> = FxHashMap::default();
        for u in 0..50 {
            for v in u + 1..50 {
                m.insert((u, v), (u * 100 + v) as u32);
            }
        }
        assert_eq!(m.len(), 50 * 49 / 2);
        assert_eq!(m[&(3, 7)], 307);
        assert!(!m.contains_key(&(7, 3)));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut hh = FxHasher::default();
            hh.write_u64(x);
            hh.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        // Consecutive keys shouldn't collide in the low bits that HashMap
        // actually uses.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            low.insert(h(i) & 0xFFFF);
        }
        assert!(low.len() > 900, "low-bit collisions: {}", 1000 - low.len());
    }

    #[test]
    fn byte_writes_work() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is a test");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is a test");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is a tesu");
        assert_ne!(a.finish(), c.finish());
    }
}

//! Affine transformations, affine relationships, and the propagation
//! identities of paper Sec. 2.3 (Eqs. 4–8).
//!
//! An *affine relationship* `(A, b)_e` (Def. 3) links a sequence pair
//! matrix `S_e = [s_common, s_other]` to its pivot pair matrix
//! `O_p = [s_common, r_cluster]`:
//!
//! ```text
//! S_e ≈ O_p · A + 1_m · bᵀ
//! ```
//!
//! We always place the *common* series in the first column of both
//! matrices. The least-squares solution then recovers the first column of
//! `(A, b)` as exactly `(1, 0, 0)` (the common series lies in the design
//! span), and every measure of the pair can be propagated from pivot
//! statistics with the measure-independent vector `β = (a₁₂, a₂₂, b₂)` —
//! which is precisely the decoupling the SCAPE index builds on (Sec. 5.1).

// Index-based loops over matrix coordinates are the clearest notation
// for these kernels.
#![allow(clippy::needless_range_loop)]
use crate::error::CoreError;
use affinity_data::{SequencePair, SeriesId};
use affinity_linalg::qr::QrFactorization;
use affinity_linalg::{vector, Matrix};

/// A pivot pair `p = (common, ω(other))` (paper Def. 2): the series
/// `common` is shared with the sequence pair, the other series is
/// replaced by its cluster centre.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PivotPair {
    /// The series shared between sequence pair and pivot pair.
    pub common: SeriesId,
    /// The cluster whose centre replaces the other series.
    pub cluster: usize,
}

/// An affine relationship between a sequence pair and its pivot pair
/// (paper Def. 3), produced by SYMEX.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineRelationship {
    /// The sequence pair `e = (u, v)`.
    pub pair: SequencePair,
    /// The pivot pair this relationship is anchored at.
    pub pivot: PivotPair,
    /// Which member of `pair` is the common series (first column).
    pub common: SeriesId,
    /// Transformation matrix `A`, `a[r][c]` = row `r`, column `c`.
    pub a: [[f64; 2]; 2],
    /// Translation vector `b`.
    pub b: [f64; 2],
}

impl AffineRelationship {
    /// The non-common member of the pair (the series `β` reconstructs).
    pub fn other(&self) -> SeriesId {
        self.pair.other(self.common)
    }

    /// The measure-independent key vector `β = (a₁₂, a₂₂, b₂)` of
    /// paper Table 2.
    #[inline]
    pub fn beta(&self) -> [f64; 3] {
        [self.a[0][1], self.a[1][1], self.b[1]]
    }
}

/// A per-series affine relationship `s_v ≈ c·r_ω(v) + d·1` used for
/// L-measures, where an O(n) set of relationships suffices (the paper
/// notes median has only linearly many relationships, Sec. 6.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesRelationship {
    /// The series being approximated.
    pub series: SeriesId,
    /// Its cluster (the centre the fit is against).
    pub cluster: usize,
    /// Scale coefficient.
    pub c: f64,
    /// Offset coefficient.
    pub d: f64,
}

impl SeriesRelationship {
    /// Propagate a location value of the cluster centre to the series
    /// (paper Eq. 5 specialized to one dimension).
    #[inline]
    pub fn propagate(&self, center_value: f64) -> f64 {
        self.c * center_value + self.d
    }
}

/// Least-squares fit of the per-series relationship `s ≈ c·r + d·1`,
/// solved in closed form from the 2×2 normal equations.
///
/// Degenerate designs (constant centre) fall back to `c = 0`,
/// `d = mean(s)` — the best constant approximation.
///
/// # Panics
/// Panics if slices differ in length or are empty.
pub fn fit_series(center: &[f64], series: &[f64]) -> (f64, f64) {
    assert_eq!(center.len(), series.len(), "fit_series: length mismatch");
    assert!(!center.is_empty(), "fit_series: empty input");
    let m = center.len() as f64;
    let srr = vector::dot(center, center);
    let sr = vector::sum(center);
    let srs = vector::dot(center, series);
    let ss = vector::sum(series);
    let det = srr * m - sr * sr;
    if det.abs() <= 1e-12 * (srr * m).abs().max(1.0) {
        return (0.0, ss / m);
    }
    let c = (srs * m - sr * ss) / det;
    let d = (srr * ss - sr * srs) / det;
    (c, d)
}

/// The design matrix `[O_p, 1_m]` for a pivot pair with columns
/// (`common`, `centre`).
pub fn design_matrix(common: &[f64], center: &[f64]) -> Matrix {
    assert_eq!(common.len(), center.len(), "design_matrix: length mismatch");
    Matrix::from_columns(&[common.to_vec(), center.to_vec(), vec![1.0; common.len()]])
}

/// Solve for `(A, b)` of Def. 3 given a pre-factorized design
/// (`QR of [O_p, 1_m]`) and the two target columns.
///
/// Returns `(a, b)` with `a[r][c]` indexing.
///
/// # Errors
/// Propagates rank-deficiency from the solver (e.g. a constant centre).
pub fn solve_relationship(
    design: &QrFactorization,
    target_common: &[f64],
    target_other: &[f64],
) -> Result<([[f64; 2]; 2], [f64; 2]), CoreError> {
    let t1 = design.solve(target_common)?;
    let t2 = design.solve(target_other)?;
    Ok(([[t1[0], t2[0]], [t1[1], t2[1]]], [t1[2], t2[2]]))
}

/// Solve for `(A, b)` using a cached pseudo-inverse (`3×m`), the SYMEX+
/// path. Mathematically identical to [`solve_relationship`].
pub fn solve_relationship_pinv(
    pinv: &Matrix,
    target_common: &[f64],
    target_other: &[f64],
) -> ([[f64; 2]; 2], [f64; 2]) {
    debug_assert_eq!(pinv.rows(), 3);
    let mut t = [[0.0f64; 3]; 2];
    for (col, target) in [target_common, target_other].into_iter().enumerate() {
        for r in 0..3 {
            // pinv row r dot target: pinv is column-major, row access strided;
            // accumulate manually over columns.
            let mut acc = 0.0;
            for (j, &tv) in target.iter().enumerate() {
                acc += pinv.get(r, j) * tv;
            }
            t[col][r] = acc;
        }
    }
    ([[t[0][0], t[1][0]], [t[0][1], t[1][1]]], [t[0][2], t[1][2]])
}

/// Statistics of a pivot pair matrix `O_p = [o₁, o₂]` needed to propagate
/// every supported measure (computed once per pivot in MEC preprocessing,
/// paper Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PivotStats {
    /// `Σ₁₁(O_p)`: variance of the common series.
    pub cov11: f64,
    /// `Σ₁₂(O_p)`.
    pub cov12: f64,
    /// `Σ₂₂(O_p)`: variance of the centre.
    pub cov22: f64,
    /// `Π₁₁(O_p)`: self dot product of the common series.
    pub dot11: f64,
    /// `Π₁₂(O_p)`.
    pub dot12: f64,
    /// `Π₂₂(O_p)`.
    pub dot22: f64,
    /// `h₁(O_p) = Σᵢ o₁ᵢ` (column sum of the common series).
    pub h1: f64,
    /// `h₂(O_p) = Σᵢ o₂ᵢ`.
    pub h2: f64,
    /// Mean of the common series (`L₁` for the mean measure).
    pub mean1: f64,
    /// Mean of the centre.
    pub mean2: f64,
}

impl PivotStats {
    /// Compute all statistics with one pass per moment.
    ///
    /// # Panics
    /// Panics if the columns differ in length.
    pub fn compute(common: &[f64], center: &[f64]) -> Self {
        assert_eq!(common.len(), center.len(), "PivotStats: length mismatch");
        let dot11 = vector::dot(common, common);
        let dot12 = vector::dot(common, center);
        let dot22 = vector::dot(center, center);
        let h1 = vector::sum(common);
        let h2 = vector::sum(center);
        let m = common.len() as f64;
        let mean1 = h1 / m;
        let mean2 = h2 / m;
        PivotStats {
            cov11: dot11 / m - mean1 * mean1,
            cov12: dot12 / m - mean1 * mean2,
            cov22: dot22 / m - mean2 * mean2,
            dot11,
            dot12,
            dot22,
            h1,
            h2,
            mean1,
            mean2,
        }
    }

    /// Propagated covariance of the pair, `Σ₁₂(S_e) = a₁ᵀ Σ(O_p) a₂`
    /// (Eq. 6). With the common-first convention `a₁ = (1, 0)` this is the
    /// scalar product of `β` with the covariance α-vector of Table 2.
    #[inline]
    pub fn propagate_covariance(&self, beta: &[f64; 3]) -> f64 {
        self.cov11 * beta[0] + self.cov12 * beta[1]
    }

    /// Propagated dot product `Π₁₂(S_e)` (Eq. 7, exact by Lemma 1).
    #[inline]
    pub fn propagate_dot(&self, beta: &[f64; 3]) -> f64 {
        self.dot11 * beta[0] + self.dot12 * beta[1] + self.h1 * beta[2]
    }

    /// Propagated location of the *other* series (Eq. 5): requires the
    /// location values of both pivot columns.
    #[inline]
    pub fn propagate_location(l1: f64, l2: f64, beta: &[f64; 3]) -> f64 {
        l1 * beta[0] + l2 * beta[1] + beta[2]
    }

    /// Propagated variance of the *other* series,
    /// `Σ₂₂(S_e) = a₂ᵀ Σ(O_p) a₂` (Eq. 6) — used for self entries and
    /// derived-measure normalizers estimated without raw data.
    #[inline]
    pub fn propagate_other_variance(&self, beta: &[f64; 3]) -> f64 {
        beta[0] * beta[0] * self.cov11
            + 2.0 * beta[0] * beta[1] * self.cov12
            + beta[1] * beta[1] * self.cov22
    }

    /// The measure α-vector of paper Table 2 (our convention; see
    /// DESIGN.md §2): `ξ·‖α‖ = αᵀβ` reconstructs the measure.
    pub fn alpha(&self, measure: crate::measures::PairwiseMeasure) -> [f64; 3] {
        use crate::measures::PairwiseMeasure as P;
        match measure {
            // Correlation is covariance-normalized (Eq. 8).
            P::Covariance | P::Correlation => [self.cov11, self.cov12, 0.0],
            // Cosine and Dice are dot-product-normalized (Sec. 2.1).
            P::DotProduct | P::Cosine | P::Dice => [self.dot11, self.dot12, self.h1],
        }
    }

    /// The α-vector for a location measure: `(L(o₁), L(o₂), 1)`.
    pub fn alpha_location(l1: f64, l2: f64) -> [f64; 3] {
        [l1, l2, 1.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{self, PairwiseMeasure};

    fn series(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn fit_series_recovers_exact_affine() {
        let r = series(50, |i| (i as f64 * 0.3).sin());
        let s: Vec<f64> = r.iter().map(|v| 2.5 * v - 1.25).collect();
        let (c, d) = fit_series(&r, &s);
        assert!((c - 2.5).abs() < 1e-10);
        assert!((d + 1.25).abs() < 1e-10);
        let rel = SeriesRelationship {
            series: 0,
            cluster: 0,
            c,
            d,
        };
        assert!((rel.propagate(0.5) - (2.5 * 0.5 - 1.25)).abs() < 1e-10);
    }

    #[test]
    fn fit_series_constant_center_falls_back() {
        let r = vec![2.0; 10];
        let s = series(10, |i| i as f64);
        let (c, d) = fit_series(&r, &s);
        assert_eq!(c, 0.0);
        assert_eq!(d, 4.5);
    }

    #[test]
    fn exact_relationship_recovers_transform() {
        let o1 = series(40, |i| (i as f64 * 0.17).sin() + 1.0);
        let o2 = series(40, |i| (i as f64 * 0.05).cos() * 2.0);
        // Targets are exact affine images.
        let t1 = o1.clone(); // common series: A column 1 must be (1,0), b1=0
        let t2: Vec<f64> = o1
            .iter()
            .zip(o2.iter())
            .map(|(a, b)| 0.7 * a - 1.3 * b + 0.4)
            .collect();
        let design = QrFactorization::new(&design_matrix(&o1, &o2)).unwrap();
        let (a, b) = solve_relationship(&design, &t1, &t2).unwrap();
        assert!((a[0][0] - 1.0).abs() < 1e-10);
        assert!(a[1][0].abs() < 1e-10);
        assert!(b[0].abs() < 1e-10);
        assert!((a[0][1] - 0.7).abs() < 1e-10);
        assert!((a[1][1] + 1.3).abs() < 1e-10);
        assert!((b[1] - 0.4).abs() < 1e-10);
    }

    #[test]
    fn pinv_path_matches_qr_path() {
        let o1 = series(30, |i| i as f64 * 0.1);
        let o2 = series(30, |i| ((i * i) as f64 * 0.01).sin());
        let t1 = o1.clone();
        let t2 = series(30, |i| (i as f64 * 0.2).cos() + 0.1 * i as f64);
        let design = QrFactorization::new(&design_matrix(&o1, &o2)).unwrap();
        let (a1, b1) = solve_relationship(&design, &t1, &t2).unwrap();
        let pinv = design.pseudo_inverse().unwrap();
        let (a2, b2) = solve_relationship_pinv(&pinv, &t1, &t2);
        for r in 0..2 {
            for c in 0..2 {
                assert!((a1[r][c] - a2[r][c]).abs() < 1e-9);
            }
            assert!((b1[r] - b2[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_propagation_is_exact_for_exact_relationships() {
        let o1 = series(60, |i| (i as f64 * 0.11).sin());
        let o2 = series(60, |i| (i as f64 * 0.23).cos());
        let t2: Vec<f64> = o1
            .iter()
            .zip(o2.iter())
            .map(|(a, b)| -0.4 * a + 2.0 * b - 3.0)
            .collect();
        let design = QrFactorization::new(&design_matrix(&o1, &o2)).unwrap();
        let (a, b) = solve_relationship(&design, &o1, &t2).unwrap();
        let rel = AffineRelationship {
            pair: SequencePair::new(0, 1),
            pivot: PivotPair {
                common: 0,
                cluster: 0,
            },
            common: 0,
            a,
            b,
        };
        let stats = PivotStats::compute(&o1, &o2);
        let prop = stats.propagate_covariance(&rel.beta());
        let exact = measures::covariance(&o1, &t2);
        assert!((prop - exact).abs() < 1e-10, "{prop} vs {exact}");
        // Variance of the other series propagates too.
        let var_prop = stats.propagate_other_variance(&rel.beta());
        let var_exact = affinity_linalg::vector::variance(&t2);
        assert!((var_prop - var_exact).abs() < 1e-9);
    }

    #[test]
    fn dot_propagation_is_exact_even_for_inexact_relationships() {
        // Lemma 1: the dot product with the common series is preserved by
        // any least-squares fit — even when the target is NOT an affine
        // image of the pivot.
        let o1 = series(80, |i| (i as f64 * 0.37).sin() + 0.5);
        let o2 = series(80, |i| (i as f64 * 0.12).cos());
        let noisy: Vec<f64> = (0..80)
            .map(|i| (i as f64 * 0.71).sin() * (i as f64 * 0.05).cos() + 0.3)
            .collect();
        let design = QrFactorization::new(&design_matrix(&o1, &o2)).unwrap();
        let (a, b) = solve_relationship(&design, &o1, &noisy).unwrap();
        let beta = [a[0][1], a[1][1], b[1]];
        let stats = PivotStats::compute(&o1, &o2);
        let prop = stats.propagate_dot(&beta);
        let exact = vector::dot(&o1, &noisy);
        assert!(
            (prop - exact).abs() < 1e-8 * exact.abs().max(1.0),
            "{prop} vs {exact}"
        );
    }

    #[test]
    fn location_propagation_mean_is_exact() {
        let o1 = series(25, |i| i as f64);
        let o2 = series(25, |i| (i as f64).sqrt());
        let t2: Vec<f64> = o1
            .iter()
            .zip(o2.iter())
            .map(|(a, b)| 0.1 * a + 3.0 * b + 2.0)
            .collect();
        let design = QrFactorization::new(&design_matrix(&o1, &o2)).unwrap();
        let (a, b) = solve_relationship(&design, &o1, &t2).unwrap();
        let beta = [a[0][1], a[1][1], b[1]];
        let prop = PivotStats::propagate_location(measures::mean(&o1), measures::mean(&o2), &beta);
        assert!((prop - measures::mean(&t2)).abs() < 1e-9);
    }

    #[test]
    fn alpha_vectors_reconstruct_measures() {
        let o1 = series(45, |i| (i as f64 * 0.3).sin() * 2.0 + 1.0);
        let o2 = series(45, |i| (i as f64 * 0.19).cos() - 0.5);
        let t2: Vec<f64> = o1
            .iter()
            .zip(o2.iter())
            .map(|(a, b)| 1.1 * a - 0.6 * b + 0.2)
            .collect();
        let design = QrFactorization::new(&design_matrix(&o1, &o2)).unwrap();
        let (a, b) = solve_relationship(&design, &o1, &t2).unwrap();
        let beta = [a[0][1], a[1][1], b[1]];
        let stats = PivotStats::compute(&o1, &o2);
        let dotp = |x: &[f64; 3], y: &[f64; 3]| x[0] * y[0] + x[1] * y[1] + x[2] * y[2];
        let cov_alpha = stats.alpha(PairwiseMeasure::Covariance);
        assert!((dotp(&cov_alpha, &beta) - measures::covariance(&o1, &t2)).abs() < 1e-9);
        let dot_alpha = stats.alpha(PairwiseMeasure::DotProduct);
        assert!((dotp(&dot_alpha, &beta) - vector::dot(&o1, &t2)).abs() < 1e-7);
        let loc_alpha = PivotStats::alpha_location(stats.mean1, stats.mean2);
        assert!((dotp(&loc_alpha, &beta) - measures::mean(&t2)).abs() < 1e-9);
    }

    #[test]
    fn relationship_accessors() {
        let rel = AffineRelationship {
            pair: SequencePair::new(2, 7),
            pivot: PivotPair {
                common: 7,
                cluster: 3,
            },
            common: 7,
            a: [[1.0, 0.5], [0.0, 2.0]],
            b: [0.0, -1.0],
        };
        assert_eq!(rel.other(), 2);
        assert_eq!(rel.beta(), [0.5, 2.0, -1.0]);
    }
}

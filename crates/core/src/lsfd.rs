//! The Least Significant Frobenius Distance (LSFD) metric — paper Def. 1
//! and Theorem 1.
//!
//! `D_F(X, Y)² = λ₃² + λ₄²` where `λ₃, λ₄` are the third and fourth
//! singular values of the column-concatenation `[X̂, Ŷ]` of the zero-mean
//! counterparts of two `m×2` pair matrices. It quantifies "the effort
//! required for making `y₁` or `y₂` linearly dependent on `x₁` and `x₂`"
//! — i.e. how far the pairs are from an exact affine relationship — and
//! obeys the triangle inequality (Thm. 1, via Eckart–Young), so AFCLST can
//! use it as a clustering distance.

use crate::error::CoreError;
use affinity_linalg::svd::singular_values;
use affinity_linalg::{vector, Matrix};

/// LSFD between two pair matrices given as column slices.
///
/// Inputs are the four raw columns (they are centred internally, per the
/// "zero-mean counterparts" of Def. 1).
///
/// # Errors
/// Propagates numerical errors from the singular-value computation.
///
/// # Panics
/// Panics if the columns differ in length or are empty.
pub fn lsfd(x1: &[f64], x2: &[f64], y1: &[f64], y2: &[f64]) -> Result<f64, CoreError> {
    let m = x1.len();
    assert!(m > 0, "lsfd: empty columns");
    assert!(
        x2.len() == m && y1.len() == m && y2.len() == m,
        "lsfd: column length mismatch"
    );
    let center = |c: &[f64]| {
        let mut v = c.to_vec();
        vector::center(&mut v);
        v
    };
    let concat = Matrix::from_columns(&[center(x1), center(x2), center(y1), center(y2)]);
    let sv = singular_values(&concat)?;
    debug_assert_eq!(sv.len(), 4);
    Ok((sv[2] * sv[2] + sv[3] * sv[3]).sqrt())
}

/// LSFD between two `m×2` matrices.
///
/// # Errors
/// See [`lsfd`].
///
/// # Panics
/// Panics if either matrix does not have exactly two columns.
pub fn lsfd_matrices(x: &Matrix, y: &Matrix) -> Result<f64, CoreError> {
    assert_eq!(x.cols(), 2, "lsfd: X must be m-by-2");
    assert_eq!(y.cols(), 2, "lsfd: Y must be m-by-2");
    lsfd(x.col(0), x.col(1), y.col(0), y.col(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn zero_for_exact_affine_images() {
        let x1 = series(40, |i| (i as f64 * 0.2).sin());
        let x2 = series(40, |i| (i as f64 * 0.45).cos());
        // Affine combinations (translations vanish after centring).
        let y1: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| 2.0 * a - b + 5.0).collect();
        let y2: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .map(|(a, b)| -a + 0.5 * b - 1.0)
            .collect();
        let d = lsfd(&x1, &x2, &y1, &y2).unwrap();
        assert!(d < 1e-6, "LSFD of exact affine images was {d}");
    }

    #[test]
    fn positive_for_independent_signals() {
        let x1 = series(60, |i| (i as f64 * 0.2).sin());
        let x2 = series(60, |i| (i as f64 * 0.45).cos());
        let y1 = series(60, |i| (i as f64 * 1.3).sin());
        let y2 = series(60, |i| ((i * i) as f64 * 0.01).cos());
        let d = lsfd(&x1, &x2, &y1, &y2).unwrap();
        assert!(
            d > 0.1,
            "independent signals should have LSFD >> 0, got {d}"
        );
    }

    #[test]
    fn symmetric() {
        let x1 = series(30, |i| i as f64);
        let x2 = series(30, |i| (i as f64).sqrt());
        let y1 = series(30, |i| (i as f64 * 0.7).sin());
        let y2 = series(30, |i| (i as f64 * 0.1).exp().min(5.0));
        let d1 = lsfd(&x1, &x2, &y1, &y2).unwrap();
        let d2 = lsfd(&y1, &y2, &x1, &x2).unwrap();
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_on_fixed_inputs() {
        // Thm. 1; also covered by a property test in the scape crate's
        // integration suite.
        let mk = |p: f64| {
            (
                series(25, move |i| (i as f64 * p).sin()),
                series(25, move |i| (i as f64 * (p + 0.3)).cos()),
            )
        };
        let (x1, x2) = mk(0.2);
        let (z1, z2) = mk(0.5);
        let (y1, y2) = mk(0.9);
        let dxy = lsfd(&x1, &x2, &y1, &y2).unwrap();
        let dxz = lsfd(&x1, &x2, &z1, &z2).unwrap();
        let dzy = lsfd(&z1, &z2, &y1, &y2).unwrap();
        assert!(dxy <= dxz + dzy + 1e-9, "{dxy} > {dxz} + {dzy}");
    }

    #[test]
    fn identity_of_indiscernibles() {
        let x1 = series(20, |i| (i as f64 * 0.3).sin());
        let x2 = series(20, |i| (i as f64 * 0.8).cos());
        let d = lsfd(&x1, &x2, &x1, &x2).unwrap();
        // Gram-based singular values floor tiny σ at ~√ε·σ₁.
        assert!(d < 1e-6, "{d}");
    }

    #[test]
    fn translation_invariance() {
        let x1 = series(35, |i| (i as f64 * 0.4).sin());
        let x2 = series(35, |i| (i as f64 * 0.9).cos());
        let y1 = series(35, |i| (i as f64 * 1.1).sin());
        let y2 = series(35, |i| (i as f64 * 0.25).cos());
        let shift = |v: &[f64], s: f64| v.iter().map(|a| a + s).collect::<Vec<f64>>();
        let d0 = lsfd(&x1, &x2, &y1, &y2).unwrap();
        let d1 = lsfd(
            &shift(&x1, 100.0),
            &shift(&x2, -50.0),
            &shift(&y1, 3.0),
            &shift(&y2, 7.0),
        )
        .unwrap();
        assert!((d0 - d1).abs() < 1e-6, "{d0} vs {d1}");
    }

    #[test]
    fn matrix_entry_point_agrees() {
        let x = Matrix::from_columns(&[series(15, |i| i as f64), series(15, |i| (i as f64).cos())]);
        let y = Matrix::from_columns(&[
            series(15, |i| (i as f64 * 2.0).sin()),
            series(15, |i| 1.0 / (i + 1) as f64),
        ]);
        let a = lsfd_matrices(&x, &y).unwrap();
        let b = lsfd(x.col(0), x.col(1), y.col(0), y.col(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "m-by-2")]
    fn wrong_arity_panics() {
        let x = Matrix::from_columns(&[series(10, |i| i as f64)]);
        let y = Matrix::from_columns(&[series(10, |i| i as f64), series(10, |i| i as f64)]);
        let _ = lsfd_matrices(&x, &y);
    }
}

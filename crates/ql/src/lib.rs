//! # affinity-ql
//!
//! A small textual query language over the AFFINITY framework — the
//! query surface a downstream application talks to (the "threshold /
//! range / computation queries" arrows in the paper's architecture
//! figure, Fig. 2).
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! statement := mec | met | mer
//! mec       := "MEC" measure "OF" ident ("," ident)*
//! met       := "MET" measure (">" | "<") number
//! mer       := "MER" measure "BETWEEN" number "AND" number
//! measure   := "mean" | "median" | "mode" | "covariance"
//!            | "dot"  | "correlation" | "cosine" | "dice"
//! ident     := series label (e.g. STK42) or numeric id
//! ```
//!
//! Execution goes through a [`Session`], which plans each statement:
//! MET/MER use the SCAPE index when the measure was indexed and fall
//! back to the affine (`W_A`) executor otherwise; MEC always uses the
//! MEC engine.
//!
//! ```
//! use affinity_core::prelude::*;
//! use affinity_data::generator::{sensor_dataset, SensorConfig};
//! use affinity_ql::Session;
//!
//! let data = sensor_dataset(&SensorConfig::reduced(12, 32));
//! let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
//! let session = Session::new(&data, &affine, &Measure::ALL).unwrap();
//! let result = session.execute("MET correlation > 0.9").unwrap();
//! println!("{result}");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cancel;
mod parser;
mod session;

pub use cancel::{CancelCause, CancelToken};
pub use parser::{parse, MeasureName, ParseError, Statement};
pub use session::{QlError, QueryOutput, Session};

//! Lexer and recursive-descent parser for the query language.

use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use std::fmt;

/// A parsed measure name, resolved to the framework's measure taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureName(pub Measure);

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `EXPLAIN <statement>` — describe the plan instead of executing.
    Explain(Box<Statement>),
    /// `MEC <measure> OF a, b, c` — measure computation (paper Query 1).
    Mec {
        /// The requested measure.
        measure: Measure,
        /// Series references, as written (labels or numeric ids).
        series: Vec<String>,
    },
    /// `MET <measure> > τ` / `< τ` — measure threshold (paper Query 2).
    Met {
        /// The requested measure.
        measure: Measure,
        /// `true` for `>`, `false` for `<`.
        greater: bool,
        /// The threshold `τ`.
        tau: f64,
    },
    /// `MER <measure> BETWEEN τl AND τu` — measure range (paper Query 3).
    Mer {
        /// The requested measure.
        measure: Measure,
        /// Lower bound `τ_l`.
        lo: f64,
        /// Upper bound `τ_u`.
        hi: f64,
    },
}

/// Parse failures, with positions in tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input had no tokens.
    Empty,
    /// Unknown statement keyword.
    UnknownStatement(String),
    /// Unknown measure name.
    UnknownMeasure(String),
    /// A specific token was expected.
    Expected {
        /// What the parser wanted.
        what: &'static str,
        /// What it found (`<end>` at end of input).
        found: String,
    },
    /// A number failed to parse.
    BadNumber(String),
    /// Extra tokens after a complete statement.
    TrailingInput(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty query"),
            ParseError::UnknownStatement(s) => {
                write!(f, "unknown statement '{s}' (expected MEC, MET or MER)")
            }
            ParseError::UnknownMeasure(s) => write!(f, "unknown measure '{s}'"),
            ParseError::Expected { what, found } => {
                write!(f, "expected {what}, found '{found}'")
            }
            ParseError::BadNumber(s) => write!(f, "'{s}' is not a number"),
            ParseError::TrailingInput(s) => write!(f, "unexpected trailing input '{s}'"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Tokenize: split on whitespace and commas, keeping `>`/`<` as their own
/// tokens even when glued to neighbours.
fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in input.chars() {
        match ch {
            c if c.is_whitespace() || c == ',' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            '>' | '<' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(ch.to_string());
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn parse_measure(tok: &str) -> Result<Measure, ParseError> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "mean" => Measure::Location(LocationMeasure::Mean),
        "median" => Measure::Location(LocationMeasure::Median),
        "mode" => Measure::Location(LocationMeasure::Mode),
        "covariance" | "cov" => Measure::Pairwise(PairwiseMeasure::Covariance),
        "dot" | "dotproduct" | "dot_product" => Measure::Pairwise(PairwiseMeasure::DotProduct),
        "correlation" | "corr" | "rho" => Measure::Pairwise(PairwiseMeasure::Correlation),
        "cosine" | "cos" => Measure::Pairwise(PairwiseMeasure::Cosine),
        "dice" => Measure::Pairwise(PairwiseMeasure::Dice),
        other => return Err(ParseError::UnknownMeasure(other.to_string())),
    })
}

fn parse_number(tok: Option<&String>) -> Result<f64, ParseError> {
    let tok = tok.ok_or(ParseError::Expected {
        what: "a number",
        found: "<end>".into(),
    })?;
    tok.parse().map_err(|_| ParseError::BadNumber(tok.clone()))
}

/// Parse a single statement.
///
/// # Errors
/// See [`ParseError`].
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input);
    let mut it = tokens.iter();
    let head = it.next().ok_or(ParseError::Empty)?;
    if head.eq_ignore_ascii_case("explain") {
        let rest: Vec<String> = it.cloned().collect();
        return Ok(Statement::Explain(Box::new(parse(&rest.join(" "))?)));
    }
    match head.to_ascii_uppercase().as_str() {
        "MEC" => {
            let measure_tok = it.next().ok_or(ParseError::Expected {
                what: "a measure",
                found: "<end>".into(),
            })?;
            let measure = parse_measure(measure_tok)?;
            let of = it.next().ok_or(ParseError::Expected {
                what: "OF",
                found: "<end>".into(),
            })?;
            if !of.eq_ignore_ascii_case("of") {
                return Err(ParseError::Expected {
                    what: "OF",
                    found: of.clone(),
                });
            }
            let series: Vec<String> = it.cloned().collect();
            if series.is_empty() {
                return Err(ParseError::Expected {
                    what: "at least one series",
                    found: "<end>".into(),
                });
            }
            Ok(Statement::Mec { measure, series })
        }
        "MET" => {
            let measure_tok = it.next().ok_or(ParseError::Expected {
                what: "a measure",
                found: "<end>".into(),
            })?;
            let measure = parse_measure(measure_tok)?;
            let op = it.next().ok_or(ParseError::Expected {
                what: "> or <",
                found: "<end>".into(),
            })?;
            let greater = match op.as_str() {
                ">" => true,
                "<" => false,
                other => {
                    return Err(ParseError::Expected {
                        what: "> or <",
                        found: other.to_string(),
                    })
                }
            };
            let tau = parse_number(it.next())?;
            if let Some(extra) = it.next() {
                return Err(ParseError::TrailingInput(extra.clone()));
            }
            Ok(Statement::Met {
                measure,
                greater,
                tau,
            })
        }
        "MER" => {
            let measure_tok = it.next().ok_or(ParseError::Expected {
                what: "a measure",
                found: "<end>".into(),
            })?;
            let measure = parse_measure(measure_tok)?;
            let kw = it.next().ok_or(ParseError::Expected {
                what: "BETWEEN",
                found: "<end>".into(),
            })?;
            if !kw.eq_ignore_ascii_case("between") {
                return Err(ParseError::Expected {
                    what: "BETWEEN",
                    found: kw.clone(),
                });
            }
            let lo = parse_number(it.next())?;
            let and = it.next().ok_or(ParseError::Expected {
                what: "AND",
                found: "<end>".into(),
            })?;
            if !and.eq_ignore_ascii_case("and") {
                return Err(ParseError::Expected {
                    what: "AND",
                    found: and.clone(),
                });
            }
            let hi = parse_number(it.next())?;
            if let Some(extra) = it.next() {
                return Err(ParseError::TrailingInput(extra.clone()));
            }
            Ok(Statement::Mer { measure, lo, hi })
        }
        other => Err(ParseError::UnknownStatement(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mec() {
        let s = parse("MEC correlation OF STK1, STK2, STK3").unwrap();
        assert_eq!(
            s,
            Statement::Mec {
                measure: Measure::Pairwise(PairwiseMeasure::Correlation),
                series: vec!["STK1".into(), "STK2".into(), "STK3".into()],
            }
        );
        // Lowercase keywords, numeric ids, aliases.
        let s = parse("mec cov of 0 1 2").unwrap();
        assert!(matches!(
            s,
            Statement::Mec {
                measure: Measure::Pairwise(PairwiseMeasure::Covariance),
                ..
            }
        ));
    }

    #[test]
    fn parses_met_both_ops_and_glued_tokens() {
        let s = parse("MET covariance > 0.25").unwrap();
        assert_eq!(
            s,
            Statement::Met {
                measure: Measure::Pairwise(PairwiseMeasure::Covariance),
                greater: true,
                tau: 0.25,
            }
        );
        let s = parse("met rho<-0.5").unwrap();
        assert_eq!(
            s,
            Statement::Met {
                measure: Measure::Pairwise(PairwiseMeasure::Correlation),
                greater: false,
                tau: -0.5,
            }
        );
    }

    #[test]
    fn parses_mer() {
        let s = parse("MER median BETWEEN 10 AND 20.5").unwrap();
        assert_eq!(
            s,
            Statement::Mer {
                measure: Measure::Location(LocationMeasure::Median),
                lo: 10.0,
                hi: 20.5,
            }
        );
    }

    #[test]
    fn parses_extended_measures() {
        assert!(matches!(
            parse("MET cosine > 0.99").unwrap(),
            Statement::Met {
                measure: Measure::Pairwise(PairwiseMeasure::Cosine),
                ..
            }
        ));
        assert!(matches!(
            parse("MER dice BETWEEN 0.9 AND 1.0").unwrap(),
            Statement::Mer {
                measure: Measure::Pairwise(PairwiseMeasure::Dice),
                ..
            }
        ));
    }

    #[test]
    fn parses_explain() {
        let s = parse("EXPLAIN MET correlation > 0.9").unwrap();
        match s {
            Statement::Explain(inner) => assert!(matches!(*inner, Statement::Met { .. })),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse("explain nonsense"),
            Err(ParseError::UnknownStatement(_))
        ));
        assert_eq!(parse("EXPLAIN"), Err(ParseError::Empty));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse(""), Err(ParseError::Empty));
        assert!(matches!(
            parse("SELECT *"),
            Err(ParseError::UnknownStatement(_))
        ));
        assert!(matches!(
            parse("MET sharpe > 1"),
            Err(ParseError::UnknownMeasure(_))
        ));
        assert!(matches!(
            parse("MET corr >"),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse("MET corr > banana"),
            Err(ParseError::BadNumber(_))
        ));
        assert!(matches!(
            parse("MET corr > 0.5 extra"),
            Err(ParseError::TrailingInput(_))
        ));
        assert!(matches!(
            parse("MER corr AROUND 0.5 AND 0.6"),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse("MER corr BETWEEN 0.5 OR 0.6"),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse("MEC mean"),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse("MEC mean OF"),
            Err(ParseError::Expected { .. })
        ));
        assert!(matches!(
            parse("MEC mean FROM a b"),
            Err(ParseError::Expected { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = parse("MET sharpe > 1").unwrap_err();
        assert!(e.to_string().contains("sharpe"));
        let e = parse("MET corr = 1").unwrap_err();
        assert!(e.to_string().contains("expected"));
    }
}

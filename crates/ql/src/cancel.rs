//! Cooperative cancellation for query execution.
//!
//! A [`CancelToken`] is a cheap, clonable handle carrying an explicit
//! cancel flag plus an optional wall-clock deadline. Long-running query
//! plans poll it at natural pruning boundaries (between per-pivot index
//! bands, between rows of a fallback scan), so a query that has lost its
//! caller — a shed request, an expired deadline — stops burning CPU
//! within one band instead of running to completion.
//!
//! The token is the serving layer's deadline-propagation primitive: the
//! admission queue stamps each request with a deadline, and the worker
//! hands the execution a token derived from it. Cancellation is
//! cooperative and lossless — a query either completes with a full
//! answer or returns a typed [`QlError`](crate::QlError), never a
//! partial result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why an execution was asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (caller gave up / shutdown).
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

/// A clonable cancellation handle checked cooperatively by query
/// execution.
///
/// ```
/// use affinity_ql::cancel::CancelToken;
/// use std::time::Duration;
///
/// let t = CancelToken::new();
/// assert!(t.cause().is_none());
/// t.cancel();
/// assert!(t.cause().is_some());
///
/// let t = CancelToken::with_deadline(Duration::from_secs(3600));
/// assert!(t.cause().is_none()); // an hour away
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels explicitly (no deadline).
    pub fn new() -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token that additionally expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::until(Instant::now() + timeout)
    }

    /// A token that additionally expires at `deadline`.
    pub fn until(deadline: Instant) -> Self {
        CancelToken {
            cancelled: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// The token's deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Why execution should stop, or `None` to keep going. The explicit
    /// flag wins over the deadline so a shed request reports shedding
    /// even after its deadline has also passed.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.cancelled.load(Ordering::Acquire) {
            return Some(CancelCause::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }

    /// `true` when execution should stop — the form the index layer's
    /// cancellation callbacks take.
    pub fn should_stop(&self) -> bool {
        self.cause().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.should_stop());
        a.cancel();
        assert_eq!(b.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::until(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(far.cause().is_none());
    }

    #[test]
    fn explicit_cancel_wins_over_expired_deadline() {
        let t = CancelToken::until(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Cancelled));
    }
}

//! Query execution: plan parsed statements against the framework.

use crate::cancel::{CancelCause, CancelToken};
use crate::parser::{parse, ParseError, Statement};
use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_core::mec::MecEngine;
use affinity_core::symex::AffineSet;
use affinity_data::{DataMatrix, SequencePair, SeriesId, SeriesSource};
use affinity_linalg::Matrix;
use affinity_scape::{ScapeError, ScapeIndex, ThresholdOp};
use affinity_shard::ShardedModel;
use affinity_stream::PersistedModel;
use std::fmt;

/// Errors raised by query execution.
#[derive(Debug)]
pub enum QlError {
    /// The statement failed to parse.
    Parse(ParseError),
    /// A series reference (label or id) did not resolve.
    UnknownSeries(String),
    /// A range query with `lo > hi`.
    EmptyRange {
        /// Lower bound as written.
        lo: f64,
        /// Upper bound as written.
        hi: f64,
    },
    /// Execution was cancelled via its [`CancelToken`] (the caller gave
    /// up, the request was shed, or the server is shutting down).
    Cancelled,
    /// The [`CancelToken`] deadline passed before execution finished.
    DeadlineExceeded,
    /// Internal engine error (should not occur for a valid session).
    Engine(String),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Parse(e) => write!(f, "parse error: {e}"),
            QlError::UnknownSeries(s) => write!(f, "unknown series '{s}'"),
            QlError::EmptyRange { lo, hi } => {
                write!(f, "empty range: {lo} > {hi}")
            }
            QlError::Cancelled => write!(f, "query cancelled"),
            QlError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            QlError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl QlError {
    /// Stable one-token wire-protocol code for this error, shared by
    /// every network front-end (the serve line protocol and the
    /// coordinator) so clients can match on a closed set.
    pub fn wire_code(&self) -> &'static str {
        match self {
            QlError::Parse(_) => "PARSE",
            QlError::UnknownSeries(_) => "UNKNOWN",
            QlError::EmptyRange { .. } => "RANGE",
            QlError::Cancelled => "CANCELLED",
            QlError::DeadlineExceeded => "DEADLINE",
            QlError::Engine(_) => "INTERNAL",
        }
    }
}

impl std::error::Error for QlError {}

impl From<ParseError> for QlError {
    fn from(e: ParseError) -> Self {
        QlError::Parse(e)
    }
}

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// MEC over a location measure: `(label, value)` per requested series.
    Values(Vec<(String, f64)>),
    /// MEC over a pairwise measure: requested labels + the `|ψ|×|ψ|`
    /// matrix.
    PairMatrix {
        /// Labels in request order.
        labels: Vec<String>,
        /// The measure matrix.
        matrix: Matrix,
    },
    /// MET/MER over a pairwise measure: qualifying pairs by label.
    Pairs(Vec<(String, String)>),
    /// MET/MER over a location measure: qualifying series by label.
    Series(Vec<String>),
    /// `EXPLAIN`: a one-line description of the chosen plan.
    Plan(String),
}

impl fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryOutput::Values(vs) => {
                for (label, v) in vs {
                    writeln!(f, "{label}\t{v:.6}")?;
                }
                Ok(())
            }
            QueryOutput::PairMatrix { labels, matrix } => {
                write!(f, " ")?;
                for l in labels {
                    write!(f, "\t{l}")?;
                }
                writeln!(f)?;
                for (i, l) in labels.iter().enumerate() {
                    write!(f, "{l}")?;
                    for j in 0..labels.len() {
                        write!(f, "\t{:.6}", matrix.get(i, j))?;
                    }
                    writeln!(f)?;
                }
                Ok(())
            }
            QueryOutput::Pairs(ps) => {
                writeln!(f, "{} pairs", ps.len())?;
                for (a, b) in ps {
                    writeln!(f, "{a}\t{b}")?;
                }
                Ok(())
            }
            QueryOutput::Series(ss) => {
                writeln!(f, "{} series", ss.len())?;
                for s in ss {
                    writeln!(f, "{s}")?;
                }
                Ok(())
            }
            QueryOutput::Plan(p) => writeln!(f, "{p}"),
        }
    }
}

/// A query session: series labels, the MEC engine over the affine
/// relationships, and a SCAPE index over a chosen measure set.
///
/// Planning rule: MET/MER statements run on the SCAPE index when the
/// measure was indexed, and fall back to scanning `W_A` values otherwise;
/// MEC statements always run on the MEC engine.
///
/// The session holds **no reference to raw series data** — after
/// construction every query is answered from the model alone, which is
/// what makes [`Session::from_source`] (fully out-of-core construction)
/// possible.
///
/// A session answers from one of two backends: a **global** model (one
/// MEC engine + one SCAPE index) or a borrowed **sharded** model
/// ([`Session::from_sharded`]), whose cross-shard merge layer returns
/// answers bit-identical to the global backend's.
pub struct Session<'a> {
    labels: Vec<String>,
    backend: Backend<'a>,
}

/// The model a session answers from.
enum Backend<'a> {
    /// The monolithic path: one engine, one index. The index is boxed
    /// to keep the enum near the size of its slimmest variant.
    Global {
        engine: MecEngine<'a>,
        index: Box<ScapeIndex>,
    },
    /// The sharded path: per-shard engines/indexes behind the exact
    /// merge layer. Borrowed, so one resident model can serve many
    /// sessions.
    Sharded(&'a ShardedModel),
}

impl<'a> Session<'a> {
    /// Open a session, building the MEC engine and a SCAPE index over
    /// `indexed` measures (pass `&Measure::ALL` or `&Measure::EXTENDED`
    /// for everything, `&[]` for no index).
    ///
    /// # Errors
    /// [`QlError::Engine`] when the index cannot be built (e.g. `affine`
    /// was not computed over `data`).
    pub fn new(
        data: &DataMatrix,
        affine: &'a AffineSet,
        indexed: &[Measure],
    ) -> Result<Self, QlError> {
        Self::from_source(data, data.labels().to_vec(), affine, indexed)
    }

    /// Open a session whose model construction streams columns through
    /// any [`SeriesSource`] — e.g. an on-disk `MatrixStore` or a
    /// bounded-memory `CachedStore` — so the matrix is never resident.
    /// `labels` provides the series names statements resolve against
    /// (a store keeps them in its header).
    ///
    /// The construction passes announce their column sequences via
    /// [`SeriesSource::prefetch`], so handing this a `CachedStore`
    /// built with a prefetch worker (the CLI's `--ooc --prefetch`
    /// combination) overlaps the session's cold reads with its
    /// preprocessing arithmetic; the session built is bit-for-bit the
    /// same either way.
    ///
    /// # Errors
    /// [`QlError::Engine`] on label/shape mismatches, fetch failures,
    /// or index-construction failures.
    pub fn from_source<S: SeriesSource + ?Sized>(
        source: &S,
        labels: Vec<String>,
        affine: &'a AffineSet,
        indexed: &[Measure],
    ) -> Result<Self, QlError> {
        if labels.len() != affine.series_count() {
            return Err(QlError::Engine(format!(
                "{} labels for {} series",
                labels.len(),
                affine.series_count()
            )));
        }
        Ok(Session {
            labels,
            backend: Backend::Global {
                engine: MecEngine::from_source(source, affine)
                    .map_err(|e| QlError::Engine(e.to_string()))?,
                index: Box::new(
                    ScapeIndex::build_from_source(
                        source,
                        affine,
                        indexed,
                        &affinity_par::ThreadPool::new(1),
                    )
                    .map_err(|e| QlError::Engine(e.to_string()))?,
                ),
            },
        })
    }

    /// Open a session over a sharded model: statements execute against
    /// the per-shard engines/indexes through the cross-shard merge
    /// layer, and every answer is bit-identical to a session over the
    /// unsharded model the shards were partitioned from.
    ///
    /// `labels` may be empty to auto-generate `S0..S{n-1}`.
    ///
    /// # Errors
    /// [`QlError::Engine`] when `labels` is non-empty but does not
    /// match the model's series count.
    pub fn from_sharded(model: &'a ShardedModel, labels: Vec<String>) -> Result<Self, QlError> {
        let n = model.series_count();
        let labels = if labels.is_empty() {
            (0..n).map(|v| format!("S{v}")).collect()
        } else if labels.len() == n {
            labels
        } else {
            return Err(QlError::Engine(format!(
                "{} labels for {} series",
                labels.len(),
                n
            )));
        };
        Ok(Session {
            labels,
            backend: Backend::Sharded(model),
        })
    }

    /// Open a session over a crash-recovered model
    /// ([`affinity_stream::open_model`]) in O(model bytes): the MEC
    /// engine is rebuilt from the restored reference data + affine set
    /// and the persisted SCAPE index is deep-copied — no clustering,
    /// fitting, or index construction is re-run, and every answer is
    /// bit-identical to a session over the live engine's model.
    ///
    /// `labels` names the series for statement resolution; pass an
    /// empty vector to auto-generate `S0..S{n-1}` (numeric-id
    /// references always work).
    ///
    /// # Errors
    /// [`QlError::Engine`] when `labels` is non-empty but does not
    /// match the model's series count.
    pub fn open_snapshot(model: &'a PersistedModel, labels: Vec<String>) -> Result<Self, QlError> {
        let n = model.affine.series_count();
        let labels = if labels.is_empty() {
            (0..n).map(|v| format!("S{v}")).collect()
        } else if labels.len() == n {
            labels
        } else {
            return Err(QlError::Engine(format!(
                "{} labels for {} series",
                labels.len(),
                n
            )));
        };
        Ok(Session {
            labels,
            backend: Backend::Global {
                engine: MecEngine::new(&model.data, &model.affine),
                index: Box::new(model.index.clone()),
            },
        })
    }

    /// Open a session directly over already-built model parts — the
    /// constructor the serving layer's epoch publication uses. `data`
    /// is the reference matrix `affine` was computed over; it is only
    /// read during engine preprocessing (the session itself keeps no
    /// reference to it). `index` is an already-built SCAPE index over
    /// the same model, moved in — no index construction runs.
    ///
    /// `labels` may be empty to auto-generate `S0..S{n-1}`.
    ///
    /// # Errors
    /// [`QlError::Engine`] when `labels` is non-empty but does not
    /// match the affine set's series count.
    pub fn from_parts(
        data: &DataMatrix,
        affine: &'a AffineSet,
        index: ScapeIndex,
        labels: Vec<String>,
    ) -> Result<Self, QlError> {
        let n = affine.series_count();
        let labels = if labels.is_empty() {
            (0..n).map(|v| format!("S{v}")).collect()
        } else if labels.len() == n {
            labels
        } else {
            return Err(QlError::Engine(format!(
                "{} labels for {} series",
                labels.len(),
                n
            )));
        };
        Ok(Session {
            labels,
            backend: Backend::Global {
                engine: MecEngine::new(data, affine),
                index: Box::new(index),
            },
        })
    }

    /// Resolve a series reference: exact label match first, then numeric
    /// id.
    fn resolve(&self, reference: &str) -> Result<SeriesId, QlError> {
        for (v, label) in self.labels.iter().enumerate() {
            if label == reference {
                return Ok(v);
            }
        }
        if let Ok(id) = reference.parse::<usize>() {
            if id < self.labels.len() {
                return Ok(id);
            }
        }
        Err(QlError::UnknownSeries(reference.to_string()))
    }

    fn label(&self, v: SeriesId) -> String {
        // Ids come back from the engine, but label rendering must not be
        // able to panic on a stale or corrupt id — fall back to the
        // numeric form instead.
        self.labels
            .get(v)
            .cloned()
            .unwrap_or_else(|| format!("series-{v}"))
    }

    fn pair_labels(&self, pairs: Vec<SequencePair>) -> Vec<(String, String)> {
        pairs
            .into_iter()
            .map(|p| (self.label(p.u), self.label(p.v)))
            .collect()
    }

    /// Parse and execute one statement.
    ///
    /// # Errors
    /// See [`QlError`].
    pub fn execute(&self, query: &str) -> Result<QueryOutput, QlError> {
        self.run(parse(query)?)
    }

    /// Parse and execute one statement under a [`CancelToken`]: long
    /// scans poll the token between pruning bands (indexed plans) or
    /// rows (fallback scans) and abort with [`QlError::Cancelled`] /
    /// [`QlError::DeadlineExceeded`] instead of running to completion.
    ///
    /// # Errors
    /// See [`QlError`].
    pub fn execute_with(&self, query: &str, token: &CancelToken) -> Result<QueryOutput, QlError> {
        self.run_with(parse(query)?, token)
    }

    /// Execute a pre-parsed statement.
    ///
    /// # Errors
    /// See [`QlError`].
    pub fn run(&self, statement: Statement) -> Result<QueryOutput, QlError> {
        self.run_with(statement, &CancelToken::new())
    }

    /// Translate the token's cause into the matching typed error.
    fn cancel_error(token: &CancelToken) -> QlError {
        match token.cause() {
            Some(CancelCause::DeadlineExceeded) => QlError::DeadlineExceeded,
            _ => QlError::Cancelled,
        }
    }

    /// Map an index error, routing [`ScapeError::Cancelled`] to the
    /// token's cause and everything else to [`QlError::Engine`].
    fn map_scape(e: ScapeError, token: &CancelToken) -> QlError {
        match e {
            ScapeError::Cancelled => Self::cancel_error(token),
            other => QlError::Engine(other.to_string()),
        }
    }

    // --- Backend dispatch ------------------------------------------
    //
    // Each helper forwards one query primitive to whichever backend the
    // session holds; the sharded merge layer's answers are bit-identical
    // to the global backend's, so planning above this line is
    // backend-oblivious.

    /// `true` when the backend's index covers `measure`.
    fn indexed(&self, measure: Measure) -> bool {
        match &self.backend {
            Backend::Global { index, .. } => index.supports(measure),
            Backend::Sharded(m) => m.supports(measure),
        }
    }

    /// Shard count when sharded (used only by `EXPLAIN` rendering).
    fn shard_count(&self) -> Option<usize> {
        match &self.backend {
            Backend::Global { .. } => None,
            Backend::Sharded(m) => Some(m.plan().shards()),
        }
    }

    fn location_values(
        &self,
        measure: LocationMeasure,
        ids: &[SeriesId],
    ) -> Result<Vec<f64>, QlError> {
        match &self.backend {
            Backend::Global { engine, .. } => engine.location(measure, ids),
            Backend::Sharded(m) => m.location(measure, ids),
        }
        .map_err(|e| QlError::Engine(e.to_string()))
    }

    fn pairwise_matrix(
        &self,
        measure: PairwiseMeasure,
        ids: &[SeriesId],
    ) -> Result<Matrix, QlError> {
        match &self.backend {
            Backend::Global { engine, .. } => engine.pairwise(measure, ids),
            Backend::Sharded(m) => m.pairwise(measure, ids),
        }
        .map_err(|e| QlError::Engine(e.to_string()))
    }

    fn threshold_pairs(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
        token: &CancelToken,
    ) -> Result<Vec<SequencePair>, QlError> {
        let stop = || token.should_stop();
        match &self.backend {
            Backend::Global { index, .. } => index.threshold_pairs_with(measure, op, tau, &stop),
            Backend::Sharded(m) => m.threshold_pairs_with(measure, op, tau, &stop),
        }
        .map_err(|e| Self::map_scape(e, token))
    }

    fn range_pairs(
        &self,
        measure: PairwiseMeasure,
        lo: f64,
        hi: f64,
        token: &CancelToken,
    ) -> Result<Vec<SequencePair>, QlError> {
        let stop = || token.should_stop();
        match &self.backend {
            Backend::Global { index, .. } => index.range_pairs_with(measure, lo, hi, &stop),
            Backend::Sharded(m) => m.range_pairs_with(measure, lo, hi, &stop),
        }
        .map_err(|e| Self::map_scape(e, token))
    }

    fn threshold_series_indexed(
        &self,
        measure: LocationMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Result<Vec<SeriesId>, QlError> {
        match &self.backend {
            Backend::Global { index, .. } => index.threshold_series(measure, op, tau),
            Backend::Sharded(m) => m.threshold_series(measure, op, tau),
        }
        .map_err(|e| QlError::Engine(e.to_string()))
    }

    fn range_series_indexed(
        &self,
        measure: LocationMeasure,
        lo: f64,
        hi: f64,
    ) -> Result<Vec<SeriesId>, QlError> {
        match &self.backend {
            Backend::Global { index, .. } => index.range_series(measure, lo, hi),
            Backend::Sharded(m) => m.range_series(measure, lo, hi),
        }
        .map_err(|e| QlError::Engine(e.to_string()))
    }

    /// One pairwise value for the fallback scan; errors mean "drop the
    /// pair", matching the global scan's behavior.
    fn scan_pair_value(&self, measure: PairwiseMeasure, pair: SequencePair) -> Option<f64> {
        match &self.backend {
            Backend::Global { engine, .. } => engine.pair_value(measure, pair).ok(),
            Backend::Sharded(m) => m.pair_value(measure, pair).ok(),
        }
    }

    /// One location value for the fallback scan.
    fn scan_location_value(&self, measure: LocationMeasure, v: SeriesId) -> Option<f64> {
        match &self.backend {
            Backend::Global { engine, .. } => engine.location_value(measure, v).ok(),
            Backend::Sharded(m) => m.location_value(measure, v).ok(),
        }
    }

    /// Execute a pre-parsed statement under a [`CancelToken`]; see
    /// [`execute_with`](Session::execute_with).
    ///
    /// # Errors
    /// See [`QlError`].
    pub fn run_with(
        &self,
        statement: Statement,
        token: &CancelToken,
    ) -> Result<QueryOutput, QlError> {
        if token.should_stop() {
            return Err(Self::cancel_error(token));
        }
        match statement {
            Statement::Explain(inner) => Ok(QueryOutput::Plan(self.plan(&inner))),
            Statement::Mec { measure, series } => {
                let ids: Vec<SeriesId> = series
                    .iter()
                    .map(|s| self.resolve(s))
                    .collect::<Result<_, _>>()?;
                match measure {
                    Measure::Location(l) => {
                        let values = self.location_values(l, &ids)?;
                        Ok(QueryOutput::Values(
                            ids.iter()
                                .zip(values)
                                .map(|(&v, x)| (self.label(v), x))
                                .collect(),
                        ))
                    }
                    Measure::Pairwise(p) => Ok(QueryOutput::PairMatrix {
                        labels: ids.iter().map(|&v| self.label(v)).collect(),
                        matrix: self.pairwise_matrix(p, &ids)?,
                    }),
                }
            }
            Statement::Met {
                measure,
                greater,
                tau,
            } => {
                let op = if greater {
                    ThresholdOp::Greater
                } else {
                    ThresholdOp::Less
                };
                match measure {
                    Measure::Pairwise(p) => {
                        let pairs = if self.indexed(measure) {
                            self.threshold_pairs(p, op, tau, token)?
                        } else {
                            self.scan_pairs(
                                p,
                                |v| match op {
                                    ThresholdOp::Greater => v > tau,
                                    ThresholdOp::Less => v < tau,
                                },
                                token,
                            )?
                        };
                        Ok(QueryOutput::Pairs(self.pair_labels(pairs)))
                    }
                    Measure::Location(l) => {
                        let series = if self.indexed(measure) {
                            self.threshold_series_indexed(l, op, tau)?
                        } else {
                            self.scan_series(
                                l,
                                |v| match op {
                                    ThresholdOp::Greater => v > tau,
                                    ThresholdOp::Less => v < tau,
                                },
                                token,
                            )?
                        };
                        Ok(QueryOutput::Series(
                            series.into_iter().map(|v| self.label(v)).collect(),
                        ))
                    }
                }
            }
            Statement::Mer { measure, lo, hi } => {
                if lo > hi {
                    return Err(QlError::EmptyRange { lo, hi });
                }
                match measure {
                    Measure::Pairwise(p) => {
                        let pairs = if self.indexed(measure) {
                            self.range_pairs(p, lo, hi, token)?
                        } else {
                            self.scan_pairs(p, |v| lo < v && v < hi, token)?
                        };
                        Ok(QueryOutput::Pairs(self.pair_labels(pairs)))
                    }
                    Measure::Location(l) => {
                        let series = if self.indexed(measure) {
                            self.range_series_indexed(l, lo, hi)?
                        } else {
                            self.scan_series(l, |v| lo < v && v < hi, token)?
                        };
                        Ok(QueryOutput::Series(
                            series.into_iter().map(|v| self.label(v)).collect(),
                        ))
                    }
                }
            }
        }
    }

    /// Describe how a statement would execute (the `EXPLAIN` output).
    fn plan(&self, statement: &Statement) -> String {
        // Rendered once so every plan line says when a cross-shard
        // merge participates in the answer.
        let sharded = self
            .shard_count()
            .map(|k| format!("; merged across {k} shards"))
            .unwrap_or_default();
        match statement {
            Statement::Explain(inner) => self.plan(inner),
            Statement::Mec { measure, series } => format!(
                "MEC {}: MecEngine (W_A) over {} series; pivot statistics from hash map, O(1) per value{}",
                measure.name(),
                series.len(),
                if self.shard_count().is_some() {
                    "; routed to owning shard"
                } else {
                    ""
                }
            ),
            Statement::Met { measure, .. } | Statement::Mer { measure, .. } => {
                let kind = if matches!(statement, Statement::Met { .. }) {
                    "MET"
                } else {
                    "MER"
                };
                if self.indexed(*measure) {
                    format!(
                        "{kind} {}: SCAPE index search with modified thresholds (tau' = tau/||alpha||){}{sharded}",
                        measure.name(),
                        if matches!(
                            measure,
                            Measure::Pairwise(p) if p.is_derived()
                        ) {
                            " + normalizer-bound pruning"
                        } else {
                            ""
                        }
                    )
                } else {
                    format!(
                        "{kind} {}: full scan of W_A values (measure not indexed){sharded}",
                        measure.name()
                    )
                }
            }
        }
    }

    /// Fallback plan: filter `W_A` values over all pairs, polling the
    /// token once per anchor row.
    fn scan_pairs(
        &self,
        measure: PairwiseMeasure,
        keep: impl Fn(f64) -> bool,
        token: &CancelToken,
    ) -> Result<Vec<SequencePair>, QlError> {
        let n = self.labels.len();
        let mut out = Vec::new();
        for u in 0..n {
            if token.should_stop() {
                return Err(Self::cancel_error(token));
            }
            for v in u + 1..n {
                let p = SequencePair::new(u, v);
                // A full-set engine answers every pair; if it ever does
                // not, drop the pair rather than panic mid-query.
                if self.scan_pair_value(measure, p).is_some_and(&keep) {
                    out.push(p);
                }
            }
        }
        Ok(out)
    }

    /// Fallback plan: filter `W_A` values over all series.
    fn scan_series(
        &self,
        measure: LocationMeasure,
        keep: impl Fn(f64) -> bool,
        token: &CancelToken,
    ) -> Result<Vec<SeriesId>, QlError> {
        if token.should_stop() {
            return Err(Self::cancel_error(token));
        }
        Ok((0..self.labels.len())
            .filter(|&v| self.scan_location_value(measure, v).is_some_and(&keep))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_data::generator::{stock_dataset, StockConfig};

    fn fixture() -> (DataMatrix, AffineSet) {
        let data = stock_dataset(&StockConfig::reduced(14, 60));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        (data, affine)
    }

    #[test]
    fn mec_location_by_label_and_id() {
        let (data, affine) = fixture();
        let s = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let out = s.execute("MEC mean OF STK0, 3").unwrap();
        match out {
            QueryOutput::Values(vs) => {
                assert_eq!(vs.len(), 2);
                assert_eq!(vs[0].0, "STK0");
                assert_eq!(vs[1].0, "STK3");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mec_pairwise_returns_symmetric_matrix() {
        let (data, affine) = fixture();
        let s = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let out = s.execute("MEC correlation OF STK0 STK1 STK2").unwrap();
        match out {
            QueryOutput::PairMatrix { labels, matrix } => {
                assert_eq!(labels, vec!["STK0", "STK1", "STK2"]);
                assert_eq!(matrix.rows(), 3);
                assert_eq!(matrix.get(0, 0), 1.0);
                assert_eq!(matrix.get(0, 1), matrix.get(1, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn met_uses_index_and_matches_fallback() {
        let (data, affine) = fixture();
        let indexed = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let bare = Session::new(&data, &affine, &[]).unwrap();
        for q in [
            "MET correlation > 0.8",
            "MET covariance < 0",
            "MET median > 100",
        ] {
            let a = indexed.execute(q).unwrap();
            let b = bare.execute(q).unwrap();
            let norm = |o: QueryOutput| match o {
                QueryOutput::Pairs(mut p) => {
                    p.sort();
                    format!("{p:?}")
                }
                QueryOutput::Series(mut s) => {
                    s.sort();
                    format!("{s:?}")
                }
                other => format!("{other:?}"),
            };
            assert_eq!(norm(a), norm(b), "query {q}");
        }
    }

    #[test]
    fn mer_and_extended_measures() {
        let (data, affine) = fixture();
        let s = Session::new(&data, &affine, &Measure::EXTENDED).unwrap();
        let out = s.execute("MER cosine BETWEEN 0.999 AND 1.0").unwrap();
        assert!(matches!(out, QueryOutput::Pairs(_)));
        let out = s.execute("MET dice > 0.99").unwrap();
        assert!(matches!(out, QueryOutput::Pairs(_)));
        let out = s.execute("MER mode BETWEEN 0 AND 10000").unwrap();
        match out {
            QueryOutput::Series(ss) => assert_eq!(ss.len(), data.series_count()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        let (data, affine) = fixture();
        let s = Session::new(&data, &affine, &Measure::ALL).unwrap();
        assert!(matches!(
            s.execute("MEC mean OF NOPE"),
            Err(QlError::UnknownSeries(_))
        ));
        assert!(matches!(
            s.execute("MER corr BETWEEN 1 AND 0"),
            Err(QlError::EmptyRange { .. })
        ));
        assert!(matches!(s.execute("HELLO"), Err(QlError::Parse(_))));
        let e = s.execute("MEC mean OF NOPE").unwrap_err();
        assert!(e.to_string().contains("NOPE"));
    }

    #[test]
    fn explain_reports_plan_choice() {
        let (data, affine) = fixture();
        let indexed = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let bare = Session::new(&data, &affine, &[]).unwrap();
        let p1 = indexed.execute("EXPLAIN MET correlation > 0.9").unwrap();
        match &p1 {
            QueryOutput::Plan(text) => {
                assert!(text.contains("SCAPE"), "{text}");
                assert!(text.contains("pruning"), "{text}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let p2 = bare.execute("EXPLAIN MET correlation > 0.9").unwrap();
        match &p2 {
            QueryOutput::Plan(text) => assert!(text.contains("full scan"), "{text}"),
            other => panic!("unexpected {other:?}"),
        }
        let p3 = indexed.execute("EXPLAIN MEC mean OF STK0").unwrap();
        match &p3 {
            QueryOutput::Plan(text) => assert!(text.contains("MecEngine"), "{text}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p1.to_string().contains("SCAPE"));
    }

    #[test]
    fn cancelled_and_expired_tokens_yield_typed_errors() {
        let (data, affine) = fixture();
        let indexed = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let bare = Session::new(&data, &affine, &[]).unwrap();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let expired = CancelToken::until(std::time::Instant::now());
        for s in [&indexed, &bare] {
            for q in ["MET correlation > 0.5", "MER covariance BETWEEN -1 AND 1"] {
                assert!(matches!(
                    s.execute_with(q, &cancelled),
                    Err(QlError::Cancelled)
                ));
                assert!(matches!(
                    s.execute_with(q, &expired),
                    Err(QlError::DeadlineExceeded)
                ));
            }
        }
        // A live token is answer-preserving.
        let live = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
        let a = indexed.execute("MET correlation > 0.5").unwrap();
        let b = indexed
            .execute_with("MET correlation > 0.5", &live)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_matches_full_session() {
        let (data, affine) = fixture();
        let full = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let index = affinity_scape::ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let parts = Session::from_parts(&data, &affine, index, data.labels().to_vec()).unwrap();
        for q in [
            "MET correlation > 0.7",
            "MER covariance BETWEEN -0.5 AND 0.5",
            "MEC mean OF STK0, STK1",
        ] {
            assert_eq!(full.execute(q).unwrap(), parts.execute(q).unwrap(), "{q}");
        }
        // Auto-generated labels when none are supplied.
        let index = affinity_scape::ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        let anon = Session::from_parts(&data, &affine, index, Vec::new()).unwrap();
        assert!(anon.execute("MEC mean OF S0").is_ok());
        let index = affinity_scape::ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap();
        assert!(Session::from_parts(&data, &affine, index, vec!["x".into()]).is_err());
    }

    #[test]
    fn sharded_backend_matches_global() {
        let (data, affine) = fixture();
        let global = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let model =
            affinity_shard::ShardedModel::build(&data, &SymexParams::default(), 3, &Measure::ALL)
                .unwrap();
        let sharded = Session::from_sharded(&model, data.labels().to_vec()).unwrap();
        for q in [
            "MET correlation > 0.7",
            "MET median > 100",
            "MER covariance BETWEEN -0.5 AND 0.5",
            "MEC mean OF STK0, STK1",
            "MEC correlation OF STK0 STK1 STK2",
        ] {
            assert_eq!(
                global.execute(q).unwrap(),
                sharded.execute(q).unwrap(),
                "{q}"
            );
        }
        let plan = sharded
            .execute("EXPLAIN MET correlation > 0.9")
            .unwrap()
            .to_string();
        assert!(plan.contains("3 shards"), "{plan}");
        let plan = sharded
            .execute("EXPLAIN MEC mean OF STK0")
            .unwrap()
            .to_string();
        assert!(plan.contains("owning shard"), "{plan}");
        // Label validation mirrors the other constructors.
        assert!(Session::from_sharded(&model, vec!["x".into()]).is_err());
        let anon = Session::from_sharded(&model, Vec::new()).unwrap();
        assert!(anon.execute("MEC mean OF S0").is_ok());
    }

    #[test]
    fn display_renders_output() {
        let (data, affine) = fixture();
        let s = Session::new(&data, &affine, &Measure::ALL).unwrap();
        let text = s.execute("MET correlation > 0.99").unwrap().to_string();
        assert!(text.contains("pairs"));
        let text = s.execute("MEC mean OF STK0").unwrap().to_string();
        assert!(text.contains("STK0"));
        let text = s
            .execute("MEC covariance OF STK0 STK1")
            .unwrap()
            .to_string();
        assert!(text.contains('\t'));
        let text = s.execute("MET mean > -1e18").unwrap().to_string();
        assert!(text.contains("series"));
    }
}

//! Parser/session hardening: feeding `Session::execute` arbitrary
//! bytes, grammar-token soup, or corrupted valid statements must
//! always produce a *typed* [`QlError`] (or a valid answer) — never a
//! panic, hang, or unbounded allocation. The server admits untrusted
//! network input straight into this path, so "no panic for any input"
//! is a load-bearing property, not a nicety.

use affinity_core::measures::Measure;
use affinity_core::prelude::*;
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_ql::Session;
use proptest::collection::vec;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One small shared model: the property is about the *parser and
/// planner*, not the math, so the cheapest valid session suffices.
fn session_fixture() -> (affinity_data::DataMatrix, affinity_core::symex::AffineSet) {
    let data = sensor_dataset(&SensorConfig::reduced(6, 48));
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    (data, affine)
}

/// Execute a statement and assert it returned *something typed* —
/// panics unwind out and fail the property.
fn must_not_panic(session: &Session, stmt: &str) -> Result<(), TestCaseError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| match session.execute(stmt) {
        Ok(out) => {
            // Rendering must be total too (the CLI prints it).
            let _ = out.to_string();
            true
        }
        Err(e) => {
            // Typed error with a total Display.
            let _ = e.to_string();
            true
        }
    }));
    prop_assert!(
        outcome.unwrap_or(false),
        "session.execute panicked on {stmt:?}"
    );
    Ok(())
}

/// Grammar fragments a fuzzer recombines into near-miss statements —
/// the inputs most likely to trip a lexer/planner edge the purely
/// random bytes never reach.
const TOKENS: &[&str] = &[
    "MET",
    "MER",
    "MEC",
    "OF",
    "BETWEEN",
    "AND",
    ">",
    "<",
    ">=",
    "<=",
    "=",
    "correlation",
    "covariance",
    "mean",
    "median",
    "mode",
    "dot",
    "S0",
    "S1",
    "S99",
    "s0",
    ",",
    ".",
    "-",
    "0.5",
    "-1e308",
    "1e-308",
    "NaN",
    "inf",
    "9999999999999999999999",
    "",
    " ",
    "\t",
    "(",
    ")",
    "'",
    "\"",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes (lossily decoded, as the CLI and server do)
    /// never panic the session.
    #[test]
    fn arbitrary_bytes_yield_typed_results(bytes in vec(0u32..=255, 0..120)) {
        let (data, affine) = session_fixture();
        let session = Session::new(&data, &affine, &Measure::EXTENDED).unwrap();
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let stmt = String::from_utf8_lossy(&bytes);
        must_not_panic(&session, &stmt)?;
    }

    /// Token soup — valid keywords in invalid orders, extreme numbers,
    /// unknown series, stray punctuation — never panics.
    #[test]
    fn token_soup_yields_typed_results(picks in vec(0usize..1_000_000, 0..12), glue in 0u32..4) {
        let (data, affine) = session_fixture();
        let session = Session::new(&data, &affine, &Measure::EXTENDED).unwrap();
        let sep = match glue { 0 => " ", 1 => "", 2 => "  ", _ => "\t" };
        let stmt: String = picks
            .iter()
            .map(|&p| TOKENS[p % TOKENS.len()])
            .collect::<Vec<_>>()
            .join(sep);
        must_not_panic(&session, &stmt)?;
    }

    /// Corrupted valid statements: truncations and single-byte edits of
    /// statements that parse cleanly never panic, and still execute
    /// cleanly when the corruption happens to be benign.
    #[test]
    fn corrupted_valid_statements_yield_typed_results(
        which in 0usize..4,
        cut in 0usize..64,
        edit in 0u32..=255,
        at in 0usize..64,
    ) {
        const VALID: &[&str] = &[
            "MET correlation > 0.5",
            "MER covariance BETWEEN -10 AND 10",
            "MEC mean OF S0, S1, S2",
            "MET dot <= 1000",
        ];
        let (data, affine) = session_fixture();
        let session = Session::new(&data, &affine, &Measure::EXTENDED).unwrap();
        let base = VALID[which % VALID.len()];
        // Truncation at an arbitrary char boundary.
        let truncated: String = base.chars().take(cut % (base.len() + 1)).collect();
        must_not_panic(&session, &truncated)?;
        // Single-byte substitution (kept on a char boundary by
        // rebuilding through chars).
        let mut chars: Vec<char> = base.chars().collect();
        let pos = at % chars.len();
        chars[pos] = char::from_u32(edit).unwrap_or('\u{fffd}');
        let edited: String = chars.into_iter().collect();
        must_not_panic(&session, &edited)?;
    }
}

//! # affinity-par
//!
//! A minimal work-stealing thread pool for the data-parallel hot paths of
//! the AFFINITY pipeline: the SYMEX pair-fitting phase and the batched MEC
//! measure sweeps. No external dependencies — `std::thread` plus the
//! workspace-local `parking_lot` shim.
//!
//! ## Scheduling model
//!
//! [`ThreadPool::parallel_for`] splits an index range `0..len` into one
//! contiguous block per *lane* (the calling thread is lane 0, each worker
//! thread is another lane). A lane pops small chunks off the **front** of
//! its own block; when its block is empty it **steals the back half** of
//! another lane's block and continues there. Both operations are a single
//! CAS on a packed `(start, end)` atomic, so an idle lane converges on the
//! busiest block without any locks in the steady state.
//!
//! ## The pivot-sharding invariant
//!
//! SYMEX and MEC shard their work **by pivot pair**: one parallel-for item
//! is one pivot group (every sequence pair anchored at that pivot). The
//! expensive per-pivot artifacts — the SYMEX+ pseudo-inverse, the MEC
//! β-matrix and α-vector — are therefore computed exactly once, by the one
//! lane that owns the group, and never cross a thread boundary. There is
//! no shared cache and no locking in the compute phase, and because every
//! item writes only its own pre-assigned output slots, results are merged
//! deterministically by index: the output is **bit-identical for any lane
//! count**, including 1.
//!
//! ```
//! use affinity_par::ThreadPool;
//!
//! let pool = ThreadPool::new(0); // 0 = available_parallelism
//! let squares = pool.parallel_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use parking_lot::Mutex;
use std::any::Any;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, Once};
use std::thread;

/// The number of lanes a `threads` knob resolves to: the value itself, or
/// [`std::thread::available_parallelism`] when it is `0` (the "auto"
/// setting every `threads` parameter in this workspace defaults to).
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// A pool of worker threads executing scoped data-parallel index loops.
///
/// The pool owns `lanes − 1` parked worker threads; the thread calling
/// [`parallel_for`](ThreadPool::parallel_for) acts as lane 0, so a pool
/// with one lane never spawns or synchronizes at all and runs the loop
/// inline — the `threads = 1` setting is exactly the serial code path.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Worker handles; spawned lazily by the first multi-lane job so
    /// engines that only ever run small/serial queries cost nothing.
    workers: StdMutex<Vec<thread::JoinHandle<()>>>,
    spawn_workers: Once,
    /// Serializes jobs: the pool broadcasts one job at a time, so
    /// concurrent submissions (the pool is `Sync` and lives inside `Sync`
    /// engines) queue here instead of clobbering each other's slot or
    /// draining each other's panic payloads. Poison-free so a panicking
    /// job does not wedge the pool.
    run_lock: Mutex<()>,
    lanes: usize,
}

/// Job broadcast slot + completion accounting, all guarded by one mutex.
struct Slot {
    /// Bumped once per published job so parked workers can tell a new job
    /// from a spurious wakeup.
    epoch: u64,
    /// The current job, type-erased; `None` once retired.
    job: Option<JobRef>,
    /// Lanes currently inside the job body.
    active: usize,
    /// Set once by `Drop` to terminate the workers.
    shutdown: bool,
}

struct Shared {
    slot: StdMutex<Slot>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// The caller parks here waiting for `active` to drain.
    done_cv: Condvar,
    /// First panic payload observed in a worker lane.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Type-erased pointer to the caller-stack job closure. Only dereferenced
/// by lanes registered in `Slot::active`, which the publishing caller
/// drains before returning — see the safety argument in `run_job`.
#[derive(Copy, Clone)]
struct JobRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync (shared-called from many lanes) and the
// pointer itself is only a capability to call it; see `run_job`.
unsafe impl Send for JobRef {}

thread_local! {
    /// Set while this thread is executing a pool job body; reentrant
    /// pool calls check it and fall back to inline execution.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII flag for [`IN_POOL_JOB`]: restores the previous value even when
/// the job body panics.
struct JobScope {
    prev: bool,
}

impl JobScope {
    fn enter() -> Self {
        JobScope {
            prev: IN_POOL_JOB.with(|in_job| in_job.replace(true)),
        }
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL_JOB.with(|in_job| in_job.set(prev));
    }
}

impl ThreadPool {
    /// Create a pool with the given lane count; `0` means
    /// [`std::thread::available_parallelism`]. Worker threads are not
    /// spawned until the first job that can use them, so constructing a
    /// pool (e.g. inside every `MecEngine`) is essentially free.
    pub fn new(threads: usize) -> Self {
        let lanes = resolve_threads(threads).max(1);
        let shared = Arc::new(Shared {
            slot: StdMutex::new(Slot {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        ThreadPool {
            shared,
            workers: StdMutex::new(Vec::new()),
            spawn_workers: Once::new(),
            run_lock: Mutex::new(()),
            lanes,
        }
    }

    /// Spawn the `lanes − 1` worker threads on first use.
    fn ensure_workers(&self) {
        self.spawn_workers.call_once(|| {
            let handles: Vec<_> = (1..self.lanes)
                .map(|lane| {
                    let shared = Arc::clone(&self.shared);
                    thread::Builder::new()
                        .name(format!("affinity-par-{lane}"))
                        .spawn(move || worker_loop(&shared, lane))
                        .expect("spawn pool worker")
                })
                .collect();
            *self.workers.lock().expect("pool mutex") = handles;
        });
    }

    /// Number of lanes (calling thread included).
    pub fn threads(&self) -> usize {
        self.lanes
    }

    /// Run `f(lane)` exactly once on every lane — the caller is lane 0 —
    /// with no work stealing, returning when the last lane finishes. A
    /// panic in `f` is propagated like
    /// [`parallel_for`](ThreadPool::parallel_for)'s.
    ///
    /// This is the broadcast primitive for long-running cooperative lane
    /// loops (a server's worker lanes draining a queue until shutdown):
    /// unlike `parallel_for`, a lane owns its index for the job's whole
    /// lifetime, so no lane can end up running two loops back to back.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.lanes == 1 || IN_POOL_JOB.with(|in_job| in_job.get()) {
            f(0);
            return;
        }
        // Lane 0 holds the job published until every lane has taken it;
        // otherwise a fast caller body could retire the job before a
        // freshly woken worker ever sees the epoch.
        let started = AtomicU64::new(0);
        let lanes = self.lanes as u64;
        self.run_job(&|lane| {
            started.fetch_add(1, Ordering::AcqRel);
            f(lane);
            if lane == 0 {
                while started.load(Ordering::Acquire) < lanes {
                    thread::yield_now();
                }
            }
        });
    }

    /// Run `f(i)` for every `i in 0..len`, work-stealing across lanes.
    ///
    /// Every index is executed exactly once; the call returns after the
    /// last index finished. A panic in `f` is propagated to the caller
    /// (after all lanes have quiesced), like a serial loop would.
    pub fn parallel_for<F>(&self, len: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        assert!(
            len <= u32::MAX as usize,
            "parallel_for supports at most u32::MAX items"
        );
        if len == 0 {
            return;
        }
        let lanes = self.lanes.min(len);
        // Reentrant calls (a job body invoking the pool again, from any
        // lane) run inline: lane 0 would self-deadlock on run_lock and a
        // worker lane would wait on its own quiescence. Inline execution
        // is semantically identical — the outer job already owns the
        // parallelism.
        if lanes == 1 || IN_POOL_JOB.with(|in_job| in_job.get()) {
            // Inline serial path: identical semantics, zero synchronization.
            for i in 0..len {
                f(i);
            }
            return;
        }
        // One packed (start, end) block per lane.
        let blocks: Vec<AtomicU64> = (0..lanes)
            .map(|t| {
                let start = len * t / lanes;
                let end = len * (t + 1) / lanes;
                AtomicU64::new(pack(start as u32, end as u32))
            })
            .collect();
        let runner = |lane: usize| {
            if lane >= lanes {
                return; // more lanes than items: nothing assigned
            }
            loop {
                if let Some((s, e)) = pop_front(&blocks[lane], GRAIN) {
                    for i in s..e {
                        f(i as usize);
                    }
                    continue;
                }
                // Own block empty: steal the back half of a victim's block
                // and install it as our own.
                match steal(&blocks, lane) {
                    Some(range) => blocks[lane].store(range, Ordering::Release),
                    None => break,
                }
            }
        };
        self.run_job(&runner);
    }

    /// Run `f(i)` for every `i in 0..len` and collect the results in index
    /// order — the deterministic-merge primitive: the output order never
    /// depends on the execution schedule.
    pub fn parallel_map<T, F>(&self, len: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: MaybeUninit needs no initialization; every slot is
        // written below before the transmute.
        unsafe { out.set_len(len) };
        {
            let writer = DisjointWriter::new(&mut out);
            // SAFETY: each index is executed exactly once by parallel_for,
            // so each slot is written exactly once, without overlap.
            self.parallel_for(len, |i| unsafe {
                writer.write(i, MaybeUninit::new(f(i)));
            });
            // (On panic, `out` drops as Vec<MaybeUninit<T>>: initialized
            // elements leak, which is safe.)
        }
        // SAFETY: all len slots are initialized; MaybeUninit<T> has the
        // same layout as T.
        unsafe {
            let mut out = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), len, out.capacity())
        }
    }

    /// Publish `runner` to all lanes, run lane 0 inline, and wait for the
    /// workers to quiesce.
    fn run_job(&self, runner: &(dyn Fn(usize) + Sync)) {
        // Erase the borrow lifetime. SAFETY: the pointer is dereferenced
        // only by lanes counted in `Slot::active`; a lane registers while
        // the job is still published and deregisters when done, and this
        // function retires the job and blocks until `active == 0` before
        // returning — so no lane can touch `runner` (or anything it
        // borrows from this stack frame) after we return.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(
                runner,
            )
        };
        let job = JobRef(erased);
        // One broadcast job at a time; a concurrent caller blocks here
        // until the current job fully quiesces (correct, just serialized).
        let _serialize = self.run_lock.lock();
        self.ensure_workers();
        {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            slot.epoch += 1;
            slot.job = Some(job);
            self.shared.work_cv.notify_all();
        }
        // Lane 0 is the caller. Catch a panic so we still quiesce the
        // workers before unwinding past the borrowed state.
        let caller_panic = catch_unwind(AssertUnwindSafe(|| {
            let _scope = JobScope::enter();
            runner(0)
        }))
        .err();
        {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            slot.job = None; // late wakers skip this epoch
            while slot.active > 0 {
                slot = self.shared.done_cv.wait(slot).expect("pool condvar");
            }
        }
        // Drain any worker payload unconditionally so a panic in this job
        // can never leak into (and spuriously fail) a later clean job.
        let worker_panic = self.shared.panic.lock().take();
        if let Some(payload) = caller_panic {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        let workers = std::mem::take(self.workers.get_mut().expect("pool mutex"));
        for w in workers {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("lanes", &self.lanes)
            .finish()
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool mutex");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch != seen {
                    seen = slot.epoch;
                    if let Some(job) = slot.job {
                        // Register while the job is still published: the
                        // caller cannot return before we deregister.
                        slot.active += 1;
                        break job;
                    }
                    // Job already retired — wait for the next epoch.
                }
                slot = shared.work_cv.wait(slot).expect("pool condvar");
            }
        };
        // SAFETY: see `run_job` — we are counted in `active`.
        let runner = unsafe { &*job.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
            let _scope = JobScope::enter();
            runner(lane)
        })) {
            let mut first = shared.panic.lock();
            first.get_or_insert(payload);
        }
        let mut slot = shared.slot.lock().expect("pool mutex");
        slot.active -= 1;
        if slot.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Chunk size a lane pops off the front of its own block. Items in this
/// workspace are chunky (a whole pivot group, a full least-squares fit),
/// so a small grain keeps the load balanced without measurable CAS cost.
const GRAIN: u32 = 1;

#[inline]
fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Pop up to `grain` items off the front of a block.
fn pop_front(block: &AtomicU64, grain: u32) -> Option<(u32, u32)> {
    let mut cur = block.load(Ordering::Acquire);
    loop {
        let (s, e) = unpack(cur);
        if s >= e {
            return None;
        }
        let ns = e.min(s + grain);
        match block.compare_exchange_weak(cur, pack(ns, e), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some((s, ns)),
            Err(now) => cur = now,
        }
    }
}

/// Steal the back half of the fullest victim block; returns the stolen
/// range still packed, ready to install as the thief's own block.
fn steal(blocks: &[AtomicU64], thief: usize) -> Option<u64> {
    let lanes = blocks.len();
    loop {
        // Pick the victim with the most remaining work (racy read is fine;
        // the CAS below revalidates).
        let mut best: Option<(usize, u64, u32)> = None;
        for off in 1..lanes {
            let v = (thief + off) % lanes;
            let cur = blocks[v].load(Ordering::Acquire);
            let (s, e) = unpack(cur);
            let remaining = e.saturating_sub(s);
            if remaining > 0 && best.is_none_or(|(_, _, r)| remaining > r) {
                best = Some((v, cur, remaining));
            }
        }
        let (victim, cur, _) = best?;
        let (s, e) = unpack(cur);
        let mid = s + (e - s).div_ceil(2);
        if blocks[victim]
            .compare_exchange(cur, pack(s, mid), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            return Some(pack(mid, e));
        }
        // Lost the race — rescan.
    }
}

/// Shared-writable view over a slice for provably disjoint index writes —
/// the scatter half of a deterministic merge (each parallel item owns a
/// distinct set of output slots).
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: writes are the caller's responsibility (see `write`); the
// wrapper itself only carries the pointer across lanes.
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}
// SAFETY: same invariant as Send — `write` requires every lane to
// target disjoint indices, so shared references never race on a slot.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wrap a mutable slice; the borrow keeps the slice alive and
    /// exclusive for the writer's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the slice has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Overwrite slot `i`.
    ///
    /// # Safety
    /// No two concurrent calls may target the same `i`, and the previous
    /// value is overwritten without being dropped (use only with `Copy`
    /// payloads or slots known to be uninitialized/trivial).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "DisjointWriter: index out of bounds");
        self.ptr.add(i).write(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn resolve_threads_auto_is_at_least_one() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_map(257, |i| i * 3);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn map_results_are_identical_across_lane_counts() {
        let serial = ThreadPool::new(1).parallel_map(500, |i| (i as f64).sqrt().sin());
        for threads in [2, 3, 8] {
            let par = ThreadPool::new(threads).parallel_map(500, |i| (i as f64).sqrt().sin());
            assert!(
                serial
                    .iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn skewed_work_is_stolen() {
        // Front-loaded work: lane 0 owns the heavy prefix; with stealing
        // the loop still terminates quickly and covers everything.
        let pool = ThreadPool::new(4);
        let done = AtomicUsize::new(0);
        pool.parallel_for(64, |i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let pool = ThreadPool::new(8);
        pool.parallel_for(0, |_| panic!("must not run"));
        let out = pool.parallel_map(3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(4);
        for round in 0..20 {
            let sum = AtomicUsize::new(0);
            pool.parallel_for(100, |i| {
                sum.fetch_add(i + round, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4950 + 100 * round);
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(32, |i| {
                if i == 17 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives a panicked job.
        let out = pool.parallel_map(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reentrant_calls_run_inline_instead_of_deadlocking() {
        let pool = ThreadPool::new(4);
        let inner_sums = pool.parallel_map(8, |i| {
            // A job body using the pool again must not deadlock.
            pool.parallel_map(4, |j| i * 10 + j).iter().sum::<usize>()
        });
        for (i, s) in inner_sums.iter().enumerate() {
            assert_eq!(*s, 4 * (i * 10) + 6);
        }
    }

    #[test]
    fn concurrent_submissions_serialize_correctly() {
        let pool = ThreadPool::new(4);
        let totals: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        thread::scope(|s| {
            for (job, total) in totals.iter().enumerate() {
                let pool = &pool;
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.parallel_for(200, |i| {
                            total.fetch_add(i + job, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(totals[0].load(Ordering::Relaxed), 10 * 19900);
        assert_eq!(totals[1].load(Ordering::Relaxed), 10 * (19900 + 200));
    }

    #[test]
    fn stale_worker_panic_does_not_poison_the_next_job() {
        // Every index panics, so the caller lane AND worker lanes all
        // record payloads; the caller's is rethrown, the workers' must be
        // drained — a later clean job on the same pool must succeed.
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(64, |_| panic!("boom"));
        }));
        assert!(result.is_err());
        for _ in 0..3 {
            let out = pool.parallel_map(16, |i| i);
            assert_eq!(out, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn workers_spawn_lazily() {
        let pool = ThreadPool::new(4);
        assert!(pool.workers.lock().unwrap().is_empty());
        pool.parallel_for(2, |_| {});
        // min(lanes, len) == 2 lanes used, but all workers spawn together
        // on first multi-lane use.
        assert_eq!(pool.workers.lock().unwrap().len(), 3);
        // Serial pools never spawn.
        let serial = ThreadPool::new(1);
        serial.parallel_for(100, |_| {});
        assert!(serial.workers.lock().unwrap().is_empty());
    }

    #[test]
    fn threads_reports_lanes() {
        assert_eq!(ThreadPool::new(5).threads(), 5);
        assert!(ThreadPool::new(0).threads() >= 1);
    }

    #[test]
    fn broadcast_runs_each_lane_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|lane| {
            hits[lane].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
        // Serial pools run the caller lane inline.
        let serial = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        serial.broadcast(|lane| {
            assert_eq!(lane, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}

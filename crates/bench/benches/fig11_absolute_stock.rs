//! Fig. 11 — absolute time comparison on stock-data.
//!
//! The same sweep as Fig. 10 but reported as absolute `W_N` vs `W_A`
//! seconds per measure and k, which is how the paper demonstrates that
//! the speedups are not artifacts of tiny denominators.

use affinity_bench::{header, stock, tradeoff, Scale};

fn main() {
    let scale = Scale::from_env();
    header("Fig. 11", "Absolute time comparison, stock-data", scale);
    let data = stock(scale);
    println!(
        "dataset: {} series x {} samples",
        data.series_count(),
        data.samples()
    );
    let rows = tradeoff::run(&data);
    tradeoff::print(&rows, true);

    // Shape: W_N is flat across k; W_A stays well below W_N for the
    // expensive measures (mode/covariance/median).
    for measure in ["mode", "covariance", "median"] {
        let worst_wa = rows
            .iter()
            .filter(|r| r.measure == measure)
            .map(|r| r.affine_secs)
            .fold(0.0f64, f64::max);
        let wn = rows
            .iter()
            .filter(|r| r.measure == measure)
            .map(|r| r.naive_secs)
            .fold(0.0f64, f64::max);
        println!(
            "\nshape check [{measure}]: worst W_A {:.3}s vs W_N {:.3}s",
            worst_wa, wn
        );
    }
}

//! Table 3 — summary of the datasets.
//!
//! Prints the characteristics of the synthetic stand-ins at the active
//! scale alongside the paper's values, and verifies the "max. affine
//! relationships" arithmetic.

use affinity_bench::{header, sensor, stock, Scale};

fn main() {
    let scale = Scale::from_env();
    header("Table 3", "Summary of the datasets", scale);

    let sensor_dm = sensor(scale);
    let stock_dm = stock(scale);

    println!("\n{:<28} {:>14} {:>14}", "", "sensor-data", "stock-data");
    println!(
        "{:<28} {:>14} {:>14}",
        "sampling interval", "2 min.", "1 min."
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "#time series (n)",
        sensor_dm.series_count(),
        stock_dm.series_count()
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "#samples per series (m)",
        sensor_dm.samples(),
        stock_dm.samples()
    );
    println!(
        "{:<28} {:>14} {:>14}",
        "max. affine relationships",
        sensor_dm.pair_count(),
        stock_dm.pair_count()
    );

    println!("\npaper values (full scale): sensor 670 x 720 (224,115 rels), stock 996 x 1,950 (495,510 rels)");
    if scale == Scale::Full {
        assert_eq!(sensor_dm.pair_count(), 224_115);
        assert_eq!(stock_dm.pair_count(), 495_510);
        println!("full-scale shapes match the paper exactly.");
    }
}

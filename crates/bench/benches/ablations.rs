//! Ablations of AFFINITY's design choices (DESIGN.md §2):
//!
//! 1. **AFCLST vs random clustering** — does LSFD-guided clustering
//!    actually buy accuracy, or would arbitrary centres do?
//! 2. **Common series in the pivot pair (Lemma 1)** — replace
//!    `O_p = [s_u, r_ω(v)]` with `[r_ω(u), r_ω(v)]` and watch the dot
//!    product lose its exactness.
//! 3. **W_F sketch size** — the accuracy/cost curve behind "the five
//!    largest DFT coefficients".

use affinity_bench::{default_symex, header, sensor, symex_params, time, Scale};
use affinity_core::affine::{design_matrix, solve_relationship, PivotStats};
use affinity_core::measures::{self, PairwiseMeasure};
use affinity_core::mec::MecEngine;
use affinity_core::rmse::percent_rmse;
use affinity_core::symex::{Symex, SymexVariant};
use affinity_linalg::qr::QrFactorization;
use affinity_linalg::vector;
use affinity_query::DftExecutor;

fn main() {
    let scale = Scale::from_env();
    header("Ablations", "Design-choice ablations", scale);
    let data = sensor(scale);
    let n = data.series_count();

    // ----- 1. AFCLST vs degenerate clustering --------------------------
    // Pairwise T/D-measures are exact regardless of the centres (the
    // least-squares residual is orthogonal to span{s_u, 1}), so the
    // clustering quality shows up exactly where the paper's Figs. 9b/9c
    // show it: the L-measures propagated through centre similarity.
    println!("\n(1) clustering ablation: L-measure %RMSE at k = 6");
    let affine = default_symex().run(&data).expect("symex");
    let engine = MecEngine::new(&data, &affine);
    let degenerate = Symex::new({
        let mut p = symex_params(6, SymexVariant::Plus);
        p.afclst.gamma_max = 1;
        p.afclst.seed = 0xBAD5EED;
        p
    });
    let affine_deg = degenerate.run(&data).expect("symex degenerate");
    let engine_deg = MecEngine::new(&data, &affine_deg);
    use affinity_core::measures::LocationMeasure;
    for measure in [LocationMeasure::Median, LocationMeasure::Mode] {
        let exact = measures::location_all(measure, &data);
        let rmse_afclst = percent_rmse(&exact, &engine.location_all(measure));
        let rmse_deg = percent_rmse(&exact, &engine_deg.location_all(measure));
        println!(
            "    {:<8} AFCLST (γ_max = 10): {:>8.3}   single-pass random centres: {:>8.3}   ({:.1}x worse)",
            measure.name(),
            rmse_afclst,
            rmse_deg,
            rmse_deg / rmse_afclst.max(1e-300)
        );
    }
    // Sanity: covariance stays exact under BOTH clusterings (the
    // Lemma-1-style argument extends to any measure computed against the
    // common series with an intercept in the design).
    let exact_cov = measures::pairwise_all(PairwiseMeasure::Covariance, &data);
    println!(
        "    covariance stays machine-exact under both: {:.1e} vs {:.1e}",
        percent_rmse(
            &exact_cov,
            &engine
                .pairwise_all(PairwiseMeasure::Covariance)
                .expect("full affine set")
        ),
        percent_rmse(
            &exact_cov,
            &engine_deg
                .pairwise_all(PairwiseMeasure::Covariance)
                .expect("full affine set")
        )
    );

    // ----- 2. Common series vs centre-only pivots (Lemma 1) ------------
    println!("\n(2) pivot ablation: dot-product error with / without a common series");
    let clusters = affine.clusters();
    let pairs = data.sequence_pairs();
    let sample: Vec<_> = pairs.iter().step_by((pairs.len() / 400).max(1)).collect();
    let mut with_common = Vec::new();
    let mut without_common = Vec::new();
    let mut exact_dots = Vec::new();
    for &&pair in &sample {
        let su = data.series(pair.u);
        let sv = data.series(pair.v);
        exact_dots.push(vector::dot(su, sv));
        // With common series: O_p = [s_u, r_ω(v)] (the paper's design).
        {
            let center = clusters.center(clusters.cluster_of(pair.v));
            let qr = QrFactorization::new(&design_matrix(su, center)).unwrap();
            let (a, b) = solve_relationship(&qr, su, sv).unwrap();
            let stats = PivotStats::compute(su, center);
            with_common.push(stats.propagate_dot(&[a[0][1], a[1][1], b[1]]));
        }
        // Without: O_p = [r_ω(u), r_ω(v)] — no column of S_e in the span.
        {
            let cu = clusters.center(clusters.cluster_of(pair.u));
            let cv = clusters.center(clusters.cluster_of(pair.v));
            let qr = match QrFactorization::new(&design_matrix(cu, cv)) {
                Ok(q) => q,
                Err(_) => continue,
            };
            let Ok((a, b)) = solve_relationship(&qr, su, sv) else {
                continue;
            };
            let stats = PivotStats::compute(cu, cv);
            // Π₁₂ ≈ β₂ᵀ Π(O_p) β₁ + translation terms (Eq. 7 general
            // form); evaluate the reconstruction y₂ᵀy₁ from fitted
            // coefficients.
            let b1 = [a[0][0], a[1][0], b[0]];
            let b2 = [a[0][1], a[1][1], b[1]];
            // y1ᵀy2 = Σ over basis dots with both betas.
            let g = [
                [stats.dot11, stats.dot12, stats.h1],
                [stats.dot12, stats.dot22, stats.h2],
                [stats.h1, stats.h2, su.len() as f64],
            ];
            let mut acc = 0.0;
            for i in 0..3 {
                for j in 0..3 {
                    acc += b1[i] * g[i][j] * b2[j];
                }
            }
            without_common.push(acc);
        }
    }
    let exact_w: Vec<f64> = exact_dots[..with_common.len()].to_vec();
    let exact_wo: Vec<f64> = exact_dots[..without_common.len()].to_vec();
    println!(
        "    with common series (paper):  %RMSE = {:.3e}  (Lemma 1: exact)",
        percent_rmse(&exact_w, &with_common)
    );
    println!(
        "    centre-only pivots:          %RMSE = {:.3e}",
        percent_rmse(&exact_wo, &without_common)
    );

    // ----- 3. W_F sketch size ------------------------------------------
    println!("\n(3) W_F sketch size: correlation accuracy vs build cost");
    let exact_corr = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
    println!("    {:>4} {:>12} {:>12}", "k", "build", "%RMSE");
    for k in [1usize, 2, 5, 10, 20, 40] {
        let (wf, build) = time(|| DftExecutor::with_coefficients(&data, k));
        let approx: Vec<f64> = data
            .sequence_pairs()
            .iter()
            .map(|&p| wf.correlation(p))
            .collect();
        println!(
            "    {:>4} {:>12} {:>12.3}",
            k,
            affinity_bench::fmt_secs(build),
            percent_rmse(&exact_corr, &approx)
        );
    }
    let _ = n;
    println!("\nthe paper's k = 5 sits at the knee of the curve: more coefficients cost build time and buy little on smooth series.");
}

//! Fig. 21 (repo extension) — distributed shard serving through the
//! coordinator.
//!
//! PR 9 sharded the model inside one process; the coordinator puts
//! each shard behind its own TCP server and merges answers across the
//! fleet. This bench prices that hop honestly:
//!
//! 1. **in-process baseline** — `Session::from_sharded` over the same
//!    sharded model, no sockets, no coordinator;
//! 2. **distributed K ∈ {2, 4}** — closed-loop clients against a
//!    `CoordServer` routing to K real shard servers over loopback TCP;
//!    p50/p99 latency and aggregate QPS;
//! 3. **degraded mode** — one shard server shut down mid-run: every
//!    answer must come back *typed* `DEGRADED` (never a silent
//!    subset), and the latency of degraded answers stays bounded by
//!    the fast-fail path, not by retry pile-ups.
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to write the measurements as a
//! JSON baseline (CI uploads `BENCH_coord.json`).

use affinity_bench::{fmt_secs, header, Scale};
use affinity_coord::{
    BreakerPolicy, CoordServer, CoordStats, Coordinator, RemoteShard, RetryPolicy, ShardBackend,
};
use affinity_core::measures::Measure;
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_data::DataMatrix;
use affinity_par::ThreadPool;
use affinity_ql::Session;
use affinity_serve::{ServeConfig, Server, ShardServing};
use affinity_shard::{ShardPlan, ShardedModel};
use affinity_stream::{StreamingConfig, StreamingEngine};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERIES: &[&str] = &[
    "MET correlation > 0.5",
    "MER covariance BETWEEN -1000 AND 1000",
    "MET mean > 0",
    "MER correlation BETWEEN 0.2 AND 0.9",
];

/// One running shard server (in-process, real TCP).
struct ShardServer {
    server: Arc<Server>,
    addr: String,
    accept: std::thread::JoinHandle<String>,
}

fn start_shard(n: usize, window: usize, data: &DataMatrix, shard: usize, k: usize) -> ShardServer {
    let mut scfg = StreamingConfig::new(window);
    scfg.indexed = Measure::EXTENDED.to_vec();
    let mut engine = StreamingEngine::new(n, scfg);
    let mut row = vec![0.0; n];
    for t in 0..window {
        for (v, slot) in row.iter_mut().enumerate() {
            *slot = data.series(v)[t];
        }
        engine.push(&row).expect("warm-up push");
    }
    let cfg = ServeConfig {
        workers: 2,
        shard: Some(ShardServing::new(shard, k)),
        ..ServeConfig::default()
    };
    let server = Server::new(engine, data.clone(), cfg).expect("shard server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind shard");
    let addr = listener.local_addr().expect("addr").to_string();
    let accept = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.serve(listener).expect("shard serve loop"))
    };
    ShardServer {
        server,
        addr,
        accept,
    }
}

/// A coordinator fleet: K shard servers + a CoordServer, all loopback.
struct Fleet {
    shards: Vec<ShardServer>,
    coord: Arc<CoordServer>,
    addr: String,
    accept: std::thread::JoinHandle<String>,
}

fn start_fleet(n: usize, window: usize, data: &DataMatrix, k: usize) -> Fleet {
    let shards: Vec<ShardServer> = (0..k).map(|i| start_shard(n, window, data, i, k)).collect();
    let stats = Arc::new(CoordStats::new());
    let retry = RetryPolicy {
        attempts: 2,
        timeout: Duration::from_millis(2000),
        ..RetryPolicy::default()
    };
    let remotes: Vec<Arc<RemoteShard>> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Arc::new(RemoteShard::new(
                i,
                s.addr.clone(),
                retry,
                BreakerPolicy::default(),
                Arc::clone(&stats),
            ))
        })
        .collect();
    let backends = remotes
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ShardBackend>)
        .collect();
    let coordinator =
        Coordinator::new(backends, Vec::new(), false, stats).expect("coordinator construction");
    let coord = CoordServer::new(coordinator, remotes);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coord");
    let addr = listener.local_addr().expect("addr").to_string();
    let accept = {
        let srv = Arc::clone(&coord);
        std::thread::spawn(move || srv.serve(listener).expect("coord serve loop"))
    };
    Fleet {
        shards,
        coord,
        addr,
        accept,
    }
}

impl Fleet {
    fn stop(self) {
        self.coord.request_shutdown();
        // Nudge the accept loop so it notices the flag.
        if let Ok(mut s) = TcpStream::connect(&self.addr) {
            let _ = s.write_all(b".ping\n");
        }
        self.accept.join().expect("coord accept loop");
        for sh in self.shards {
            sh.server.request_shutdown();
            if let Ok(mut s) = TcpStream::connect(&sh.addr) {
                let _ = s.write_all(b".ping\n");
            }
            sh.accept.join().expect("shard accept loop");
        }
    }
}

/// One closed-loop client; returns (latency, was_degraded) per request.
fn closed_loop(addr: &str, client_id: usize, count: usize) -> Vec<(f64, bool)> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(count);
    let mut line = String::new();
    for i in 0..count {
        let q = QUERIES[i % QUERIES.len()];
        let t0 = Instant::now();
        writer
            .write_all(format!("c{client_id}q{i} {q}\n").as_bytes())
            .expect("send");
        line.clear();
        reader.read_line(&mut line).expect("response header");
        let trimmed = line.trim_end().to_string();
        let mut parts = trimmed.split(' ');
        let kind = parts.next().expect("kind");
        let degraded = match kind {
            "OK" => {
                let body: usize = parts.nth(1).expect("count").parse().expect("body count");
                for _ in 0..body {
                    line.clear();
                    reader.read_line(&mut line).expect("body line");
                }
                false
            }
            "DEGRADED" => {
                let body: usize = parts.nth(2).expect("count").parse().expect("body count");
                for _ in 0..body {
                    line.clear();
                    reader.read_line(&mut line).expect("body line");
                }
                true
            }
            _ => panic!("query failed: {trimmed}"),
        };
        out.push((t0.elapsed().as_secs_f64(), degraded));
    }
    out
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// (p50, p99, qps, degraded_count, total) across `clients` closed loops.
fn run_load(addr: &str, clients: usize, per_client: usize) -> (f64, f64, f64, usize, usize) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || closed_loop(&addr, c, per_client))
        })
        .collect();
    let results: Vec<(f64, bool)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let degraded = results.iter().filter(|(_, d)| *d).count();
    let mut lat: Vec<f64> = results.iter().map(|&(l, _)| l).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let qps = lat.len() as f64 / wall;
    (
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        qps,
        degraded,
        lat.len(),
    )
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 21",
        "distributed shard serving: coordinator vs in-process, degraded mode",
        scale,
    );
    let (n, window, clients, per_client) = match scale {
        Scale::Quick => (16, 48, 2, 100),
        Scale::Mid => (48, 96, 4, 300),
        Scale::Full => (96, 128, 8, 500),
    };
    println!(
        "dataset: {n} series x {window}-tick window; {clients} closed-loop clients x {per_client} requests\n"
    );
    let data = sensor_dataset(&SensorConfig {
        series: n,
        samples: window * 4,
        ..SensorConfig::default()
    });

    // --- 1. in-process baseline ------------------------------------------
    // The same sharded model the fleet serves — built from an engine
    // warmed exactly like each shard server's — queried directly.
    let mut scfg = StreamingConfig::new(window);
    scfg.indexed = Measure::EXTENDED.to_vec();
    let mut engine = StreamingEngine::new(n, scfg);
    let mut row = vec![0.0; n];
    for t in 0..window {
        for (v, slot) in row.iter_mut().enumerate() {
            *slot = data.series(v)[t];
        }
        engine.push(&row).expect("warm-up push");
    }
    let global = engine.model().expect("warm model");
    let plan = ShardPlan::blocked(n, 2);
    let model = ShardedModel::from_global(
        global.data(),
        global.affine(),
        plan,
        &Measure::EXTENDED,
        Arc::new(ThreadPool::new(2)),
    )
    .expect("sharded build");
    let session = Session::from_sharded(&model, Vec::new()).expect("local session");
    let reps = clients * per_client;
    let mut local_lat = Vec::with_capacity(reps);
    for i in 0..reps {
        let q = QUERIES[i % QUERIES.len()];
        let t0 = Instant::now();
        session.execute(q).expect("local query");
        local_lat.push(t0.elapsed().as_secs_f64());
    }
    let wall: f64 = local_lat.iter().sum();
    local_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (lp50, lp99) = (percentile(&local_lat, 0.50), percentile(&local_lat, 0.99));
    let lqps = reps as f64 / wall;
    println!(
        "in-process (K=2):   p50 {}  p99 {}  {lqps:.0} q/s",
        fmt_secs(lp50),
        fmt_secs(lp99)
    );

    // --- 2. distributed K ∈ {2, 4} ---------------------------------------
    let mut dist = Vec::new();
    for k in [2usize, 4] {
        let fleet = start_fleet(n, window, &data, k);
        let (p50, p99, qps, degraded, _) = run_load(&fleet.addr, clients, per_client);
        assert_eq!(degraded, 0, "healthy fleet answered degraded");
        fleet.stop();
        println!(
            "distributed K={k}:    p50 {}  p99 {}  {qps:.0} q/s",
            fmt_secs(p50),
            fmt_secs(p99)
        );
        dist.push((k, p50, p99, qps));
    }

    // --- 3. degraded mode -------------------------------------------------
    // Shut one shard server down and keep querying: every answer must
    // be typed DEGRADED, at fast-fail latency (the breaker opens after
    // its threshold, so steady-state degraded answers skip the socket).
    let fleet = start_fleet(n, window, &data, 2);
    let dead = &fleet.shards[1];
    dead.server.request_shutdown();
    if let Ok(mut s) = TcpStream::connect(&dead.addr) {
        let _ = s.write_all(b".ping\n");
    }
    // Give the accept loop a beat to release the port.
    std::thread::sleep(Duration::from_millis(100));
    let (dp50, dp99, dqps, dcount, dtotal) = run_load(&fleet.addr, clients, per_client);
    assert_eq!(
        dcount, dtotal,
        "a dead shard must degrade every pair answer"
    );
    let dfrac = dcount as f64 / dtotal as f64;
    println!(
        "degraded (1 of 2):  p50 {}  p99 {}  {dqps:.0} q/s  (100% typed DEGRADED)",
        fmt_secs(dp50),
        fmt_secs(dp99)
    );
    let ledger = fleet.coord.stats().render();
    println!("                    {ledger}");
    assert!(
        fleet.coord.stats().balanced(),
        "degraded-phase ledger unbalanced: {ledger}"
    );
    // Stop the coordinator and the surviving shard; the dead one's
    // accept loop already returned.
    let Fleet {
        shards,
        coord,
        addr,
        accept,
    } = fleet;
    coord.request_shutdown();
    if let Ok(mut s) = TcpStream::connect(&addr) {
        let _ = s.write_all(b".ping\n");
    }
    accept.join().expect("coord accept loop");
    for (i, sh) in shards.into_iter().enumerate() {
        if i != 1 {
            sh.server.request_shutdown();
            if let Ok(mut s) = TcpStream::connect(&sh.addr) {
                let _ = s.write_all(b".ping\n");
            }
        }
        sh.accept.join().expect("shard accept loop");
    }

    if let Ok(out) = std::env::var("AFFINITY_BENCH_JSON") {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"fig21_coord\",");
        let _ = writeln!(
            s,
            "  \"scale\": \"{}\",",
            scale.tag().split(' ').next().expect("tag")
        );
        let _ = writeln!(
            s,
            "  \"hardware_threads\": {},",
            affinity_par::resolve_threads(0)
        );
        let _ = writeln!(s, "  \"series\": {n},");
        let _ = writeln!(s, "  \"window\": {window},");
        let _ = writeln!(s, "  \"clients\": {clients},");
        let _ = writeln!(s, "  \"requests_per_client\": {per_client},");
        let _ = writeln!(s, "  \"inproc_p50_secs\": {lp50:.6},");
        let _ = writeln!(s, "  \"inproc_p99_secs\": {lp99:.6},");
        let _ = writeln!(s, "  \"inproc_qps\": {lqps:.1},");
        for (k, p50, p99, qps) in &dist {
            let _ = writeln!(s, "  \"dist_k{k}_p50_secs\": {p50:.6},");
            let _ = writeln!(s, "  \"dist_k{k}_p99_secs\": {p99:.6},");
            let _ = writeln!(s, "  \"dist_k{k}_qps\": {qps:.1},");
        }
        let _ = writeln!(s, "  \"degraded_p50_secs\": {dp50:.6},");
        let _ = writeln!(s, "  \"degraded_p99_secs\": {dp99:.6},");
        let _ = writeln!(s, "  \"degraded_qps\": {dqps:.1},");
        let _ = writeln!(s, "  \"degraded_typed_fraction\": {dfrac:.3}");
        let _ = writeln!(s, "}}");
        std::fs::write(&out, s).expect("write bench JSON");
        println!("wrote baseline to {out}");
    }
}

//! Fig. 12 — query processing efficiency in online environments.
//!
//! Workloads of 15k–90k MEC queries (scaled down at quick/mid), each
//! picking a measure uniformly and 10 power-law-popular series. `W_A`
//! times *include* the SYMEX+ setup, as in the paper; the paper reports
//! `W_A` 10–23× faster at 90k queries and 2.5–9× at 15k.

use affinity_bench::{default_symex, fmt_secs, header, sensor, stock, time, Scale};
use affinity_core::mec::MecEngine;
use affinity_data::DataMatrix;
use affinity_query::workload::{generate, run_affine, run_naive, WorkloadConfig};
use affinity_query::{AffineExecutor, NaiveExecutor};

fn run_dataset(name: &str, data: &DataMatrix, counts: &[usize]) {
    println!(
        "\n--- {name} ({} series x {} samples) ---",
        data.series_count(),
        data.samples()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>9}",
        "#queries", "W_N", "W_A(+setup)", "speedup"
    );
    // One-time W_A setup, charged to every W_A figure like the paper.
    let (affine, setup_secs) = time(|| default_symex().run(data).expect("symex"));
    let (_, engine_secs) = time(|| MecEngine::new(data, &affine));
    let wa_exec = AffineExecutor::new(data, &affine);
    let wn_exec = NaiveExecutor::new(data);

    let mut first_speedup = None;
    let mut last_speedup = None;
    for &q in counts {
        let queries = generate(
            &WorkloadConfig {
                queries: q,
                ids_per_query: 10,
                zipf_exponent: 1.0,
                seed: 0x00F1_612A,
            },
            data.series_count(),
        );
        let (naive_sum, wn_secs) = time(|| run_naive(&wn_exec, &queries));
        let (affine_sum, wa_query_secs) = time(|| run_affine(&wa_exec, &queries));
        let wa_secs = wa_query_secs + setup_secs + engine_secs;
        let speedup = wn_secs / wa_secs;
        if first_speedup.is_none() {
            first_speedup = Some(speedup);
        }
        last_speedup = Some(speedup);
        // Checksums keep the optimizer honest and sanity-check agreement.
        assert!(
            (naive_sum - affine_sum).abs() / naive_sum.abs().max(1.0) < 0.1,
            "checksum divergence"
        );
        println!(
            "{:>10} {:>12} {:>12} {:>8.1}x",
            q,
            fmt_secs(wn_secs),
            fmt_secs(wa_secs),
            speedup
        );
    }
    println!(
        "shape check: speedup grows with workload size ({:.1}x -> {:.1}x); paper: 2.5-9x at 15k to 10-23x at 90k",
        first_speedup.unwrap_or(0.0),
        last_speedup.unwrap_or(0.0)
    );
}

fn main() {
    let scale = Scale::from_env();
    header("Fig. 12", "Online MEC workloads", scale);
    let counts: Vec<usize> = match scale {
        Scale::Quick => vec![1_500, 3_000, 4_500, 6_000, 7_500, 9_000],
        Scale::Mid => vec![5_000, 10_000, 15_000, 20_000, 25_000, 30_000],
        Scale::Full => vec![15_000, 30_000, 45_000, 60_000, 75_000, 90_000],
    };
    println!("query counts: {counts:?} (paper: 15k..90k)");
    let s = sensor(scale);
    run_dataset("sensor-data", &s, &counts);
    let k = stock(scale);
    run_dataset("stock-data", &k, &counts);
}

//! Fig. 16 — MER (measure range) query efficiency on sensor-data.
//!
//! Two panels: (a) correlation (W_N/W_A/W_F/SCAPE), (b) covariance
//! (W_N/W_A/SCAPE). Ranges are centred on the value distribution and
//! widened to sweep the result size, per the paper's x-axis.

use affinity_bench::{default_symex, fmt_secs, header, quantile_thresholds, sensor, time, Scale};
use affinity_core::measures::{self, Measure, PairwiseMeasure};
use affinity_query::{AffineExecutor, DftExecutor, NaiveExecutor};
use affinity_scape::ScapeIndex;

fn main() {
    let scale = Scale::from_env();
    header("Fig. 16", "MER query efficiency, sensor-data", scale);
    let data = sensor(scale);
    println!(
        "dataset: {} series, {} pairs",
        data.series_count(),
        data.pair_count()
    );

    let (affine, t_setup) = time(|| default_symex().run(&data).expect("symex"));
    let (index, t_index) =
        time(|| ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index"));
    let wf = DftExecutor::new(&data);
    println!(
        "setup: SYMEX+ {}, SCAPE build {}",
        fmt_secs(t_setup),
        fmt_secs(t_index)
    );
    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);

    // Widening ranges around the median of the value distribution.
    let widths = [0.1, 0.3, 0.5, 0.7, 0.999];

    println!("\n(a) correlation coefficient (range)");
    println!(
        "{:>10} {:>22} {:>12} {:>12} {:>12} {:>12}",
        "|result|", "range", "W_N", "W_A", "W_F", "SCAPE"
    );
    let corr_values = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
    for w in widths {
        let lo = quantile_thresholds(&corr_values, &[0.5 + w / 2.0])[0];
        let hi = quantile_thresholds(&corr_values, &[0.5 - w / 2.0])[0];
        let (_, t_n) = time(|| wn.mer_pairs(PairwiseMeasure::Correlation, lo, hi));
        let (_, t_a) = time(|| wa.mer_pairs(PairwiseMeasure::Correlation, lo, hi));
        let (_, t_f) = time(|| wf.mer_pairs(lo, hi));
        let (r_s, t_s) = time(|| {
            index
                .range_pairs(PairwiseMeasure::Correlation, lo, hi)
                .unwrap()
        });
        println!(
            "{:>10} {:>22} {:>12} {:>12} {:>12} {:>12}",
            r_s.len(),
            format!("({lo:.3}, {hi:.3})"),
            fmt_secs(t_n),
            fmt_secs(t_a),
            fmt_secs(t_f),
            fmt_secs(t_s)
        );
    }

    println!("\n(b) covariance (range)");
    println!(
        "{:>10} {:>22} {:>12} {:>12} {:>12} {:>10}",
        "|result|", "range", "W_N", "W_A", "SCAPE", "speedupN"
    );
    let cov_values = measures::pairwise_all(PairwiseMeasure::Covariance, &data);
    for w in widths {
        let lo = quantile_thresholds(&cov_values, &[0.5 + w / 2.0])[0];
        let hi = quantile_thresholds(&cov_values, &[0.5 - w / 2.0])[0];
        let (_, t_n) = time(|| wn.mer_pairs(PairwiseMeasure::Covariance, lo, hi));
        let (_, t_a) = time(|| wa.mer_pairs(PairwiseMeasure::Covariance, lo, hi));
        let (r_s, t_s) = time(|| {
            index
                .range_pairs(PairwiseMeasure::Covariance, lo, hi)
                .unwrap()
        });
        println!(
            "{:>10} {:>22} {:>12} {:>12} {:>12} {:>9.0}x",
            r_s.len(),
            format!("({lo:.3}, {hi:.3})"),
            fmt_secs(t_n),
            fmt_secs(t_a),
            fmt_secs(t_s),
            t_n / t_s
        );
    }
    println!("\nshape check: SCAPE stays orders of magnitude under W_N across the sweep (paper Table 4: 27x/155x at max result size); W_F sits between W_N and SCAPE on correlation.");
}

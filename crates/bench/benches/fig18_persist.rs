//! Fig. 18 (repo extension) — crash-safe model persistence: cold build
//! vs snapshot open.
//!
//! The paper's premise is that relationships are computed **once** and
//! reused while queries run continuously (Sec. 1); persistence extends
//! that economy across process restarts. This bench measures the two
//! ways to get a queryable model into memory:
//!
//! 1. **cold build** — AFCLST + SYMEX+ + SCAPE index from the raw
//!    window, the price every restart pays without persistence;
//! 2. **snapshot open** — decode the persisted snapshot and replay the
//!    delta journal (`open_model`, read-only) or warm-restart the full
//!    engine (`StreamingEngine::resume`), O(model bytes) either way.
//!
//! The opened model is asserted bit-identical to the live one (affine
//! set and index compared by their canonical encodings), and at mid/
//! full scale the headline ratio — cold build over snapshot open — is
//! asserted to be at least 10×: if decoding ever gets within an order
//! of magnitude of re-deriving the model, persistence has regressed
//! into pointlessness.
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to write the measurements as a JSON
//! baseline (CI uploads `BENCH_persist.json`).

use affinity_bench::{fmt_secs, header, symex_params, time, Scale};
use affinity_core::symex::SymexVariant;
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_stream::{open_model, StreamingConfig, StreamingEngine, JOURNAL_FILE, SNAPSHOT_FILE};
use std::fmt::Write as _;

/// Journaled delta refreshes between snapshot and "crash".
const JOURNALED_REFRESHES: u64 = 4;

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 18",
        "crash-safe persistence: cold model build vs snapshot open",
        scale,
    );
    // The acceptance shape is n = 400 (mid); quick keeps CI smokes
    // short and full doubles the pair count again.
    let (n, window) = match scale {
        Scale::Quick => (120, 240),
        Scale::Mid => (400, 480),
        Scale::Full => (800, 480),
    };
    println!(
        "dataset: {n} series x {window}-tick window ({} pairs)\n",
        n * (n - 1) / 2
    );
    let data = sensor_dataset(&SensorConfig {
        series: n,
        samples: window,
        ..SensorConfig::default()
    });

    let cfg = || {
        let mut c = StreamingConfig::new(window);
        c.refresh_every = 8;
        c.symex = symex_params(6, SymexVariant::Plus);
        c
    };

    let dir = std::env::temp_dir().join(format!("affinity-fig18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Cold build: the no-persistence restart price --------------------
    let (engine, cold_secs) = time(|| StreamingEngine::from_source(cfg(), &data).expect("build"));
    let mut engine = engine;
    println!(
        "cold build (AFCLST + SYMEX+ + SCAPE): {}",
        fmt_secs(cold_secs)
    );

    // --- Commit + journaled tail ----------------------------------------
    let (_, commit_secs) = time(|| engine.persist_to(&dir).expect("persist"));
    // Keep streaming: each due refresh journals a delta record, so the
    // open below replays a realistic journal, not just a bare snapshot.
    let journaled_from = engine.delta_refreshes();
    let mut t = 0u64;
    while engine.delta_refreshes() - journaled_from < JOURNALED_REFRESHES {
        t += 1;
        let tick: Vec<f64> = (0..n)
            .map(|v| data.series(v)[(t as usize) % window] * (1.0 + 1e-3 * ((t % 7) as f64)))
            .collect();
        engine.push(&tick).expect("push");
    }
    let journal_records = engine.delta_refreshes() - journaled_from;
    let snapshot_bytes = std::fs::metadata(dir.join(SNAPSHOT_FILE))
        .expect("snap")
        .len();
    let journal_bytes = std::fs::metadata(dir.join(JOURNAL_FILE))
        .expect("journal")
        .len();
    println!(
        "snapshot commit: {} ({:.1} MB on disk, + {journal_records} journal records, {:.1} KB)",
        fmt_secs(commit_secs),
        snapshot_bytes as f64 / (1024.0 * 1024.0),
        journal_bytes as f64 / 1024.0
    );

    // --- Snapshot open: read-only, then full engine resume ---------------
    // Best of 3 against page-cache and scheduler noise; first iteration
    // also carries the model-equality assertion.
    let mut open_secs = f64::INFINITY;
    for attempt in 0..3 {
        let ((model, report), secs) = time(|| open_model(&dir).expect("open"));
        open_secs = open_secs.min(secs);
        assert_eq!(report.replayed_records as u64, journal_records);
        if attempt == 0 {
            let live = engine.model().expect("live model");
            assert_eq!(
                model.affine.to_bytes(),
                live.affine().to_bytes(),
                "opened affine set must be bit-identical to the live one"
            );
            assert_eq!(
                model.index.to_bytes(),
                live.index().to_bytes(),
                "opened index must be bit-identical to the live one"
            );
        }
    }
    let mut resume_secs = f64::INFINITY;
    for _ in 0..3 {
        let ((resumed, _), secs) = time(|| StreamingEngine::resume(cfg(), &dir).expect("resume"));
        resume_secs = resume_secs.min(secs);
        drop(resumed);
    }

    let speedup = cold_secs / open_secs;
    println!("snapshot open (read-only):  {}", fmt_secs(open_secs));
    println!("engine resume (warm-start): {}", fmt_secs(resume_secs));
    println!("\ncold build / snapshot open: {speedup:.1}x");
    println!("opened == live: bit-for-bit (asserted)");
    if scale != Scale::Quick {
        assert!(
            speedup >= 10.0,
            "snapshot open must beat the cold build by >= 10x, got {speedup:.1}x"
        );
    }

    if let Ok(out) = std::env::var("AFFINITY_BENCH_JSON") {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"fig18_persist\",");
        let _ = writeln!(
            s,
            "  \"scale\": \"{}\",",
            scale.tag().split(' ').next().expect("tag")
        );
        let _ = writeln!(
            s,
            "  \"hardware_threads\": {},",
            affinity_par::resolve_threads(0)
        );
        let _ = writeln!(s, "  \"series\": {n},");
        let _ = writeln!(s, "  \"window\": {window},");
        let _ = writeln!(s, "  \"snapshot_bytes\": {snapshot_bytes},");
        let _ = writeln!(s, "  \"journal_bytes\": {journal_bytes},");
        let _ = writeln!(s, "  \"journal_records\": {journal_records},");
        let _ = writeln!(s, "  \"cold_build_secs\": {cold_secs:.6},");
        let _ = writeln!(s, "  \"snapshot_commit_secs\": {commit_secs:.6},");
        let _ = writeln!(s, "  \"snapshot_open_secs\": {open_secs:.6},");
        let _ = writeln!(s, "  \"engine_resume_secs\": {resume_secs:.6},");
        let _ = writeln!(s, "  \"cold_over_open\": {speedup:.4},");
        let _ = writeln!(s, "  \"bit_identical\": true");
        let _ = writeln!(s, "}}");
        std::fs::write(&out, s).expect("write bench JSON");
        println!("wrote baseline to {out}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

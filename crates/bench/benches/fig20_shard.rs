//! Fig. 20 (repo extension) — sharded model scale-out.
//!
//! One global affine set walls AFFINITY at the `O(n²)` pair sweep;
//! `affinity_shard` partitions the series along AFCLST cluster cuts and
//! builds each shard's affine set + SCAPE trees on the shared worker
//! pool. This bench reports what that buys and what it costs:
//!
//! 1. **build scaling** — wall-clock of `ShardedModel::build` at
//!    K ∈ {1, 2, 4} against the monolithic Symex + ScapeIndex build.
//!    The global SYMEX fit is shared work; the per-shard index builds
//!    are the parallel section, so multi-shard speedup needs real
//!    cores — on a 1-core runner the honest expectation is parity (a
//!    few percent of partition overhead), and the JSON records the
//!    hardware thread count so readers can judge the numbers;
//! 2. **query parity** — MET (indexed threshold) and MEC (full pair
//!    sweep) latency per K, with every answer checked equal to the
//!    monolithic build's: sharding is a scale-out knob, not an
//!    approximation, so any speed difference must come for free.
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to write the measurements as a JSON
//! baseline (CI uploads `BENCH_shard.json`).

use affinity_bench::{fmt_secs, header, sensor, time, Scale};
use affinity_core::measures::{Measure, PairwiseMeasure};
use affinity_core::symex::{Symex, SymexParams};
use affinity_scape::{ScapeIndex, ThresholdOp};
use affinity_shard::ShardedModel;
use std::fmt::Write as _;

const SHARD_COUNTS: &[usize] = &[1, 2, 4];
const TAU: f64 = 0.5;

struct Row {
    shards: usize,
    build_secs: f64,
    met_secs: f64,
    mec_secs: f64,
    met_hits: usize,
}

fn main() {
    let scale = Scale::from_env();
    header(
        "fig20_shard",
        "sharded scale-out vs monolithic build",
        scale,
    );
    let data = sensor(scale);
    let n = data.series_count();
    let m = data.samples();
    println!("dataset: {n} series x {m} samples\n");

    let params = SymexParams::default();

    // Monolithic baseline: one global affine set + one index.
    let (affine, global_fit_secs) = time(|| Symex::new(params.clone()).run(&data).unwrap());
    let (index, global_index_secs) =
        time(|| ScapeIndex::build(&data, &affine, &Measure::ALL).unwrap());
    let global_build_secs = global_fit_secs + global_index_secs;
    let (expected_met, global_met_secs) = time(|| {
        index
            .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, TAU)
            .unwrap()
    });
    let engine_input = affinity_core::mec::MecEngine::new(&data, &affine);
    let (expected_mec, global_mec_secs) = time(|| {
        engine_input
            .pairwise_all(PairwiseMeasure::Correlation)
            .unwrap()
    });
    println!(
        "global    build {:>9}  MET {:>9} ({} hits)  MEC sweep {:>9}",
        fmt_secs(global_build_secs),
        fmt_secs(global_met_secs),
        expected_met.len(),
        fmt_secs(global_mec_secs),
    );

    let never = || false;
    let mut rows = Vec::new();
    for &k in SHARD_COUNTS {
        let (model, build_secs) =
            time(|| ShardedModel::build(&data, &params, k, &Measure::ALL).unwrap());
        assert_eq!(model.shards().len(), k);
        let (met, met_secs) = time(|| {
            model
                .threshold_pairs_with(
                    PairwiseMeasure::Correlation,
                    ThresholdOp::Greater,
                    TAU,
                    &never,
                )
                .unwrap()
        });
        let (mec, mec_secs) = time(|| model.pairwise_all(PairwiseMeasure::Correlation).unwrap());
        // Scale-out must be free of drift: identical hits, identical bits.
        assert_eq!(met, expected_met, "K={k}: MET answers diverged");
        assert_eq!(mec.len(), expected_mec.len());
        for (a, b) in mec.iter().zip(&expected_mec) {
            assert_eq!(a.to_bits(), b.to_bits(), "K={k}: MEC bits diverged");
        }
        println!(
            "K={k:<2}      build {:>9}  MET {:>9} ({} hits)  MEC sweep {:>9}",
            fmt_secs(build_secs),
            fmt_secs(met_secs),
            met.len(),
            fmt_secs(mec_secs),
        );
        rows.push(Row {
            shards: k,
            build_secs,
            met_secs,
            mec_secs,
            met_hits: met.len(),
        });
    }
    println!("\nall sharded answers verified bit-identical to the global build");

    if let Ok(out) = std::env::var("AFFINITY_BENCH_JSON") {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"fig20_shard\",");
        let _ = writeln!(
            s,
            "  \"scale\": \"{}\",",
            scale.tag().split(' ').next().expect("tag")
        );
        let _ = writeln!(
            s,
            "  \"hardware_threads\": {},",
            affinity_par::resolve_threads(0)
        );
        let _ = writeln!(s, "  \"series\": {n},");
        let _ = writeln!(s, "  \"samples\": {m},");
        let _ = writeln!(s, "  \"global_build_secs\": {global_build_secs:.6},");
        let _ = writeln!(s, "  \"global_met_secs\": {global_met_secs:.6},");
        let _ = writeln!(s, "  \"global_mec_secs\": {global_mec_secs:.6},");
        let _ = writeln!(s, "  \"shard_counts\": [");
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{ \"shards\": {}, \"build_secs\": {:.6}, \"met_secs\": {:.6}, \"mec_secs\": {:.6}, \"met_hits\": {} }}{comma}",
                r.shards, r.build_secs, r.met_secs, r.mec_secs, r.met_hits
            );
        }
        let _ = writeln!(s, "  ],");
        let _ = writeln!(s, "  \"answers_bit_identical\": true");
        let _ = writeln!(s, "}}");
        std::fs::write(&out, s).expect("write bench json");
        println!("wrote {out}");
    }
}

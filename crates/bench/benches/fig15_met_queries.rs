//! Fig. 15 — MET (measure threshold) query efficiency on sensor-data.
//!
//! Four panels: (a) correlation with W_N/W_A/W_F/SCAPE, (b) covariance,
//! (c) median (series-level), (d) dot product. The x-axis sweeps the
//! result-set size by moving the threshold; times are per query on
//! pre-built structures (relationships for W_A, sketches for W_F, index
//! for SCAPE), while W_N recomputes from scratch per query — exactly the
//! paper's setup. Paper shape: SCAPE is orders of magnitude faster
//! everywhere except median, where only O(n) relationships exist.

use affinity_bench::{
    default_symex, fmt_secs, header, quantile_thresholds, sensor, threads_from_env, time, Scale,
};
use affinity_core::measures::{self, LocationMeasure, Measure, PairwiseMeasure};
use affinity_query::{AffineExecutor, DftExecutor, NaiveExecutor};
use affinity_scape::{ScapeIndex, ThresholdOp};

const FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 0.999];

fn main() {
    let scale = Scale::from_env();
    header("Fig. 15", "MET query efficiency, sensor-data", scale);
    let data = sensor(scale);
    println!(
        "dataset: {} series, {} pairs; threads = {} (AFFINITY_THREADS, 0 = auto -> {})",
        data.series_count(),
        data.pair_count(),
        threads_from_env(),
        affinity_par::resolve_threads(threads_from_env())
    );

    let (affine, t_setup) = time(|| default_symex().run(&data).expect("symex"));
    let (index, t_index) =
        time(|| ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index"));
    let (wf, t_wf) = time(|| DftExecutor::new(&data));
    println!(
        "setup (excluded from per-query times, as in the paper): SYMEX+ {}, SCAPE build {}, W_F sketches {}",
        fmt_secs(t_setup),
        fmt_secs(t_index),
        fmt_secs(t_wf)
    );
    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);

    // Panel (a): correlation — all four methods.
    println!("\n(a) correlation coefficient (threshold)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "|result|", "W_N", "W_A", "W_F", "SCAPE", "speedupN"
    );
    let corr_values = measures::pairwise_all(PairwiseMeasure::Correlation, &data);
    for tau in quantile_thresholds(&corr_values, &FRACTIONS) {
        let (r_n, t_n) =
            time(|| wn.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau));
        let (_, t_a) =
            time(|| wa.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau));
        let (_, t_f) = time(|| wf.met_pairs(ThresholdOp::Greater, tau));
        let (r_s, t_s) = time(|| {
            index
                .threshold_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, tau)
                .unwrap()
        });
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>9.0}x",
            r_s.len(),
            fmt_secs(t_n),
            fmt_secs(t_a),
            fmt_secs(t_f),
            fmt_secs(t_s),
            t_n / t_s
        );
        let _ = r_n;
    }

    // Panels (b) and (d): covariance and dot product — no W_F.
    for (panel, measure) in [
        ("(b) covariance (threshold)", PairwiseMeasure::Covariance),
        ("(d) dot product (threshold)", PairwiseMeasure::DotProduct),
    ] {
        println!("\n{panel}");
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>10}",
            "|result|", "W_N", "W_A", "SCAPE", "speedupN"
        );
        let values = measures::pairwise_all(measure, &data);
        for tau in quantile_thresholds(&values, &FRACTIONS) {
            let (_, t_n) = time(|| wn.met_pairs(measure, ThresholdOp::Greater, tau));
            let (_, t_a) = time(|| wa.met_pairs(measure, ThresholdOp::Greater, tau));
            let (r_s, t_s) = time(|| {
                index
                    .threshold_pairs(measure, ThresholdOp::Greater, tau)
                    .unwrap()
            });
            println!(
                "{:>10} {:>12} {:>12} {:>12} {:>9.0}x",
                r_s.len(),
                fmt_secs(t_n),
                fmt_secs(t_a),
                fmt_secs(t_s),
                t_n / t_s
            );
        }
    }

    // Panel (c): median — series-level query, O(n) relationships.
    println!("\n(c) median (threshold, series-level)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "|result|", "W_N", "W_A", "SCAPE", "speedupN"
    );
    let medians = measures::location_all(LocationMeasure::Median, &data);
    for tau in quantile_thresholds(&medians, &FRACTIONS) {
        let (_, t_n) = time(|| wn.met_series(LocationMeasure::Median, ThresholdOp::Greater, tau));
        let (_, t_a) = time(|| wa.met_series(LocationMeasure::Median, ThresholdOp::Greater, tau));
        let (r_s, t_s) = time(|| {
            index
                .threshold_series(LocationMeasure::Median, ThresholdOp::Greater, tau)
                .unwrap()
        });
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>9.0}x",
            r_s.len(),
            fmt_secs(t_n),
            fmt_secs(t_a),
            fmt_secs(t_s),
            t_n / t_s
        );
    }
    println!("\nshape check: SCAPE wins by orders of magnitude on pairwise measures; median's advantage is modest (only n relationships) — both as in the paper (Table 4: median speedup 5x vs 41-160x elsewhere).");
}

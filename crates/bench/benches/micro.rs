//! Criterion microbenchmarks for the framework's hot kernels — the
//! ablation-level numbers behind the figure-level harnesses.

use affinity_bench::{sensor, Scale};
use affinity_core::afclst::{afclst, AfclstParams};
use affinity_core::affine::{design_matrix, PivotStats};
use affinity_core::lsfd::lsfd;
use affinity_core::measures;
use affinity_core::mec::MecEngine;
use affinity_core::symex::{pivot_pseudo_inverse, Symex, SymexParams, SymexVariant};
use affinity_data::SequencePair;
use affinity_dft::{fft, Complex64, DftSketch};
use affinity_index::BPlusTree;
use affinity_linalg::qr::QrFactorization;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::ops::Bound;
use std::time::Duration;

fn series(m: usize, p: f64) -> Vec<f64> {
    (0..m)
        .map(|i| (i as f64 * p).sin() + 0.1 * (i as f64 * p * 3.3).cos())
        .collect()
}

fn bench_linalg(c: &mut Criterion) {
    let m = 720;
    let common = series(m, 0.013);
    let center = series(m, 0.029);
    let target = series(m, 0.041);
    c.bench_function("least_squares_qr_720x3", |b| {
        let design = design_matrix(&common, &center);
        b.iter(|| {
            let qr = QrFactorization::new(black_box(&design)).unwrap();
            black_box(qr.solve(&target).unwrap())
        })
    });
    c.bench_function("pivot_pseudo_inverse_720", |b| {
        b.iter(|| black_box(pivot_pseudo_inverse(black_box(&common), black_box(&center))))
    });
    c.bench_function("lsfd_720x4", |b| {
        let y1 = series(m, 0.051);
        let y2 = series(m, 0.007);
        b.iter(|| black_box(lsfd(&common, &center, &y1, &y2).unwrap()))
    });
    c.bench_function("pivot_stats_720", |b| {
        b.iter(|| black_box(PivotStats::compute(&common, &center)))
    });
}

fn bench_measures(c: &mut Criterion) {
    let x = series(720, 0.013);
    let y = series(720, 0.031);
    c.bench_function("covariance_720", |b| {
        b.iter(|| black_box(measures::covariance(&x, &y)))
    });
    c.bench_function("median_720", |b| b.iter(|| black_box(measures::median(&x))));
    c.bench_function("mode_kde_720", |b| b.iter(|| black_box(measures::mode(&x))));
}

fn bench_dft(c: &mut Criterion) {
    let x1950: Vec<Complex64> = (0..1950)
        .map(|i| Complex64::from_real((i as f64 * 0.013).sin()))
        .collect();
    c.bench_function("fft_bluestein_1950", |b| {
        b.iter(|| black_box(fft(black_box(&x1950))))
    });
    let raw = series(1950, 0.013);
    c.bench_function("dft_sketch_build_1950_k5", |b| {
        b.iter(|| black_box(DftSketch::build(black_box(&raw), 5)))
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("bptree_insert_10k", |b| {
        let keys: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761_u64 as usize) % 99991) as f64)
            .collect();
        b.iter_batched(
            BPlusTree::<u32>::new,
            |mut t| {
                for (i, k) in keys.iter().enumerate() {
                    t.insert(*k, i as u32);
                }
                black_box(t.len())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("bptree_range_scan_10k", |b| {
        let mut t = BPlusTree::new();
        for i in 0..10_000 {
            t.insert((i % 4999) as f64, i);
        }
        b.iter(|| {
            black_box(
                t.range(Bound::Included(1000.0), Bound::Excluded(2000.0))
                    .count(),
            )
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let data = sensor(Scale::Quick).prefix(60);
    c.bench_function("afclst_k6_60x240", |b| {
        let params = AfclstParams {
            k: 6,
            gamma_max: 10,
            delta_min: 10,
            seed: 1,
        };
        b.iter(|| black_box(afclst(&data, &params).unwrap()))
    });
    let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
    let engine = MecEngine::new(&data, &affine);
    c.bench_function("mec_pair_value_correlation", |b| {
        let pair = SequencePair::new(3, 41);
        b.iter(|| {
            black_box(
                engine
                    .pair_value(measures::PairwiseMeasure::Correlation, pair)
                    .unwrap(),
            )
        })
    });
    c.bench_function("symex_plus_60x240", |b| {
        let symex = Symex::new(SymexParams {
            variant: SymexVariant::Plus,
            ..Default::default()
        });
        b.iter(|| black_box(symex.run(&data).unwrap().len()))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_linalg, bench_measures, bench_dft, bench_btree, bench_pipeline
}
criterion_main!(benches);

//! Fig. 9 — efficiency/accuracy tradeoff on sensor-data.
//!
//! For k ∈ {6, 10, 14, 18, 22}: speedup of `W_A` over `W_N` and %RMSE
//! (Eq. 16) for mean, median, mode, covariance and dot product.
//!
//! Paper shapes to reproduce: mean ~4–8× (tiny error), median ~6–18×
//! (≤3% error), mode 10²–10⁴× (≤8% error, log scale), covariance
//! ~6–18× (~1e-12 error), dot product ~1.3–2× (~1e-12 error).

use affinity_bench::{header, sensor, tradeoff, Scale};

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 9",
        "Efficiency and accuracy tradeoff, sensor-data",
        scale,
    );
    let data = sensor(scale);
    println!(
        "dataset: {} series x {} samples",
        data.series_count(),
        data.samples()
    );
    let rows = tradeoff::run(&data);
    tradeoff::print(&rows, false);

    // Shape assertions (who wins, roughly by how much).
    let mode_speedup = rows
        .iter()
        .filter(|r| r.measure == "mode")
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    let dot_speedup = rows
        .iter()
        .filter(|r| r.measure == "dot product")
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    println!("\nshape check: max mode speedup {mode_speedup:.0}x (paper ~3500x, log-scale panel),");
    println!("             max dot speedup {dot_speedup:.1}x (paper reports the smallest gains for dot product)");
}

//! Fig. 10 — efficiency/accuracy tradeoff on stock-data.
//!
//! Same sweep as Fig. 9 on the larger dataset; the paper's point is that
//! gains are *more* pronounced here (e.g. covariance up to ~24× vs ~18×
//! on sensor-data) because the naive scan grows with n²·m.

use affinity_bench::{header, stock, tradeoff, Scale};

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 10",
        "Efficiency and accuracy tradeoff, stock-data",
        scale,
    );
    let data = stock(scale);
    println!(
        "dataset: {} series x {} samples",
        data.series_count(),
        data.samples()
    );
    let rows = tradeoff::run(&data);
    tradeoff::print(&rows, false);

    let cov_speedup = rows
        .iter()
        .filter(|r| r.measure == "covariance")
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    println!("\nshape check: max covariance speedup {cov_speedup:.1}x (paper: up to ~24x, larger than sensor-data)");
}

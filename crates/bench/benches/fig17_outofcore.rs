//! Fig. 17 (repo extension) — out-of-core model construction.
//!
//! Builds the full model (AFCLST + SYMEX+ + SCAPE index) twice over the
//! same long-series dataset:
//!
//! 1. **resident** — the classical path over an in-memory `DataMatrix`;
//! 2. **streamed** — through a [`CachedStore`] holding only a small,
//!    fixed number of columns (the cache budget), with the matrix on
//!    disk and dropped from memory.
//!
//! A counting global allocator tracks the **peak live heap** of each
//! phase; the point of the figure is that the streamed peak is bounded
//! by the cache budget plus model size — *not* by `n·m` — while the
//! produced model is asserted bit-for-bit identical to the resident
//! one. The dataset shape is deliberately long (`m ≫ n`): the matrix
//! dwarfs the model, which is the regime where out-of-core matters.
//!
//! A third section measures the **cold-read** regime the OS page cache
//! hides on a developer box: the store is wrapped in a latency-injecting
//! [`SlowSource`] (per-request delay, `AFFINITY_LATENCY_US`, default
//! 2500 — a contended spinning disk or a networked store) and the
//! streamed build runs twice — prefetch off, then prefetch on
//! (`AFFINITY_PREFETCH` readahead depth, default 12), best of three
//! attempts each against host steal-time noise. The cold section
//! uses its own dataset shape (many, shorter columns) because that is
//! the regime where per-request latency — not per-sample arithmetic —
//! dominates the build. With the delay standing in for seek-dominated
//! media, the announced-pattern prefetcher overlaps reads with compute
//! and batches contiguous runs into single region requests; both
//! builds are asserted bit-identical to a resident build of the same
//! data, and the off/on wall-clock ratio is the headline number.
//! `AFFINITY_LATENCY_US=0` skips the section; `AFFINITY_CACHE_COLS`
//! overrides the cache budget (CI runs a starved 2-column config).
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to write the measurements as a JSON
//! baseline (CI uploads `BENCH_outofcore.json`).

use affinity_bench::{fmt_secs, header, time, Scale};
use affinity_core::symex::{AffineSet, Symex};
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_data::slow::SlowSource;
use affinity_data::ColumnRead;
use affinity_par::ThreadPool;
use affinity_scape::ScapeIndex;
use affinity_storage::{CacheStats, CachedStore, MatrixStore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Counting allocator: live bytes + high-water mark, resettable between
/// phases. Counts every allocation in the process, so a phase's peak is
/// its true heap footprint (model, caches, scratch — everything).
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: pure pass-through to `System`; the only additions are relaxed
// atomic counters, which never touch the allocation itself.
unsafe impl GlobalAlloc for PeakAlloc {
    // SAFETY: forwards the layout untouched to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY: forwards ptr/layout untouched to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: forwards the layout untouched to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY: forwards all arguments untouched to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Reset the high-water mark to the current live bytes.
fn reset_peak() {
    // afflint: allow(relaxed) -- bench-only peak tracker: the counter is a heuristic high-water mark, no memory is published through this store
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// `VmHWM` (peak resident set of the whole process) in kB, if readable.
/// Monotonic over the process lifetime — reported for context only; the
/// per-phase comparison uses the resettable heap counter above.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

struct Phase {
    secs: f64,
    peak_heap: usize,
}

fn build_resident(data: &affinity_data::DataMatrix, symex: &Symex) -> (AffineSet, ScapeIndex) {
    let affine = symex.run(data).expect("resident symex");
    let index = ScapeIndex::build(data, &affine, &affinity_core::measures::Measure::ALL)
        .expect("resident index");
    (affine, index)
}

fn build_streamed<B: ColumnRead>(
    source: &CachedStore<B>,
    symex: &Symex,
) -> (AffineSet, ScapeIndex) {
    let affine = symex.run(source).expect("streamed symex");
    let index = ScapeIndex::build_from_source(
        source,
        &affine,
        &affinity_core::measures::Measure::ALL,
        &ThreadPool::new(affinity_bench::threads_from_env()),
    )
    .expect("streamed index");
    (affine, index)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn assert_same_model(
    resident_affine: &AffineSet,
    resident_index: &ScapeIndex,
    affine: &AffineSet,
    index: &ScapeIndex,
    what: &str,
) {
    assert_eq!(
        resident_affine.relationships(),
        affine.relationships(),
        "{what}: relationships must be bit-identical"
    );
    assert_eq!(
        resident_affine.series_relationships(),
        affine.series_relationships(),
        "{what}"
    );
    assert_eq!(resident_affine.pivots(), affine.pivots(), "{what}");
    assert_eq!(resident_index.stats(), index.stats(), "{what}");
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 17",
        "out-of-core model construction: peak memory bounded by the cache budget",
        scale,
    );
    // Long-series shapes: the matrix (n·m·8 bytes) dwarfs the O(n²)
    // model, which is the out-of-core regime.
    let (n, m) = match scale {
        Scale::Quick => (32, 16_000),
        Scale::Mid => (48, 60_000),
        Scale::Full => (96, 250_000),
    };
    let cache_cols = env_usize("AFFINITY_CACHE_COLS", (n / 8).max(4));
    let matrix_bytes = n * m * 8;
    let cache_bytes = cache_cols * m * 8;
    println!(
        "dataset: {n} series x {m} samples = {:.1} MB; cache budget: {cache_cols} columns = {:.1} MB\n",
        mb(matrix_bytes),
        mb(cache_bytes)
    );

    let dir = std::env::temp_dir().join("affinity-fig17");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("outofcore-{}.afn", std::process::id()));

    let symex = affinity_bench::default_symex();

    // --- Resident phase -------------------------------------------------
    let data = sensor_dataset(&SensorConfig::reduced(n, m));
    MatrixStore::create(&path, &data).expect("write store");
    reset_peak();
    let ((resident_affine, resident_index), resident_secs) = time(|| build_resident(&data, &symex));
    let resident = Phase {
        secs: resident_secs,
        peak_heap: peak_bytes(),
    };
    drop(data);

    // --- Streamed phase -------------------------------------------------
    let source = CachedStore::new(MatrixStore::open(&path).expect("open store"), cache_cols);
    reset_peak();
    let ((streamed_affine, streamed_index), streamed_secs) =
        time(|| build_streamed(&source, &symex));
    let streamed = Phase {
        secs: streamed_secs,
        peak_heap: peak_bytes(),
    };
    let cache_stats = source.stats();
    drop(source);

    // --- Equivalence (the whole point: same model, bounded memory) ------
    assert_same_model(
        &resident_affine,
        &resident_index,
        &streamed_affine,
        &streamed_index,
        "streamed",
    );
    drop((streamed_affine, streamed_index));

    // The resident peak necessarily carries the matrix; the streamed
    // peak must not scale with it.
    assert!(
        resident.peak_heap >= matrix_bytes,
        "resident peak {} below the matrix itself {}",
        resident.peak_heap,
        matrix_bytes
    );
    if scale != Scale::Quick {
        assert!(
            streamed.peak_heap < matrix_bytes,
            "streamed peak {:.1} MB is not below the {:.1} MB matrix — out-of-core regression",
            mb(streamed.peak_heap),
            mb(matrix_bytes)
        );
    }
    // The long-series model is no longer needed; free it so the cold
    // section's heap floor is its own models only.
    drop((resident_affine, resident_index));

    // --- Cold-read section: injected latency, prefetch off vs on --------
    // The OS page cache serves the store reads above from RAM, which
    // hides exactly the latency asynchronous prefetching overlaps; a
    // per-read sleep stands in for seek-dominated media. The section
    // runs its own dataset *shape* — many short columns — because that
    // is the regime where per-request latency (not per-sample
    // arithmetic) dominates the build; the long-series dataset above
    // answers the memory-bound question, this one the I/O-scheduling
    // question.
    // 2.5 ms per request models a contended spinning disk or a networked
    // store; depth 12 keeps one span in flight while the rest of the
    // readahead buffers the consumer (the cache clamps the depth to its
    // capacity − 1 either way).
    let latency_us = env_usize("AFFINITY_LATENCY_US", 2500);
    let prefetch_depth = env_usize("AFFINITY_PREFETCH", 12);
    let (default_cold_n, default_cold_m) = match scale {
        Scale::Quick => (48, 3_000),
        Scale::Mid => (96, 10_000),
        Scale::Full => (192, 25_000),
    };
    let cold_n = env_usize("AFFINITY_COLD_SERIES", default_cold_n);
    let cold_m = env_usize("AFFINITY_COLD_SAMPLES", default_cold_m);
    // A sixth of the columns: headroom for the readahead depth while
    // the budget stays well under the matrix (the assertion below) and
    // the prefetch-off baseline still misses like cold storage.
    let cold_cache_cols = env_usize("AFFINITY_CACHE_COLS", (cold_n / 6).max(8));
    let cold_matrix_bytes = cold_n * cold_m * 8;
    let cold = (latency_us > 0).then(|| {
        let delay = Duration::from_micros(latency_us as u64);
        let cold_path = dir.join(format!("outofcore-cold-{}.afn", std::process::id()));
        let cold_data = sensor_dataset(&SensorConfig::reduced(cold_n, cold_m));
        MatrixStore::create(&cold_path, &cold_data).expect("write cold store");
        let (cold_affine, cold_index) = build_resident(&cold_data, &symex);
        drop(cold_data);
        let mut phases = Vec::new();
        // AFFINITY_PREFETCH=0 degenerates to the off-phase alone (no
        // duplicate JSON key, no off-vs-off "speedup").
        let depths: &[usize] = if prefetch_depth == 0 {
            &[0]
        } else {
            &[0, prefetch_depth]
        };
        for &depth in depths {
            // Best of 3: the wall clock of a sleep-heavy phase is at
            // the mercy of host steal time on shared boxes; the min of
            // a few runs is robust against an intermittent burst while
            // still honest (a burst can only inflate, never deflate).
            let mut best: Option<(Phase, CacheStats, u64)> = None;
            for _attempt in 0..3 {
                let slow =
                    SlowSource::new(MatrixStore::open(&cold_path).expect("open store"), delay);
                let source = CachedStore::with_prefetch(slow, cold_cache_cols, depth);
                reset_peak();
                let ((affine, index), secs) = time(|| build_streamed(&source, &symex));
                let phase = Phase {
                    secs,
                    peak_heap: peak_bytes(),
                };
                assert_same_model(
                    &cold_affine,
                    &cold_index,
                    &affine,
                    &index,
                    &format!("cold, prefetch depth {depth}"),
                );
                // As for the long-series phases: at quick scale the
                // O(n²) model rivals the deliberately tiny matrix, so
                // the bound is only meaningful at mid/full.
                if scale != Scale::Quick {
                    assert!(
                        phase.peak_heap < cold_matrix_bytes,
                        "cold streamed peak (depth {depth}) {:.1} MB exceeds the {:.1} MB matrix",
                        mb(phase.peak_heap),
                        mb(cold_matrix_bytes)
                    );
                }
                source.quiesce();
                let stats = source.stats();
                let reads = source.store().reads();
                if best.as_ref().is_none_or(|(b, _, _)| phase.secs < b.secs) {
                    best = Some((phase, stats, reads));
                }
            }
            let (phase, stats, reads) = best.expect("two attempts ran");
            phases.push((depth, phase, stats, reads));
        }
        std::fs::remove_file(&cold_path).ok();
        phases
    });
    std::fs::remove_file(&path).ok();

    println!(
        "{:>22} {:>12} {:>16} {:>16}",
        "path", "build", "peak heap", "vs matrix"
    );
    let mut rows: Vec<(String, &Phase)> = vec![
        ("resident".into(), &resident),
        ("streamed (page cache)".into(), &streamed),
    ];
    if let Some(cold) = &cold {
        for (depth, phase, _, _) in cold {
            rows.push((format!("cold, prefetch={depth}"), phase));
        }
    }
    for (name, phase) in rows {
        println!(
            "{name:>22} {:>12} {:>13.1} MB {:>15.2}x",
            fmt_secs(phase.secs),
            mb(phase.peak_heap),
            phase.peak_heap as f64 / matrix_bytes as f64
        );
    }
    println!(
        "\nwarm cache: {} hits, {} misses, {} evictions, {} bypasses ({:.1}% hit rate)",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.evictions,
        cache_stats.bypasses,
        100.0 * cache_stats.hits as f64 / (cache_stats.hits + cache_stats.misses).max(1) as f64
    );
    if let Some(cold) = &cold {
        println!(
            "cold reads: {cold_n} series x {cold_m} samples ({:.1} MB), {latency_us} us per read \
             request, {cold_cache_cols} columns cached",
            mb(cold_matrix_bytes)
        );
        for (depth, phase, stats, reads) in cold {
            println!(
                "  prefetch={depth}: {} build, {reads} read requests; cache {} hits / {} misses; \
                 prefetcher issued {} (hits {}, wasted {}, queue-full events {})",
                fmt_secs(phase.secs),
                stats.hits,
                stats.misses,
                stats.prefetch.issued,
                stats.prefetch.hits,
                stats.prefetch.wasted,
                stats.prefetch.queue_full
            );
        }
        if let [(_, off, _, _), (_, on, _, _)] = cold.as_slice() {
            println!(
                "  cold-build speedup, prefetch on vs off: {:.2}x",
                off.secs / on.secs
            );
        }
    }
    if let Some(hwm) = vm_hwm_kb() {
        println!(
            "process VmHWM (monotonic, all phases): {:.1} MB",
            hwm as f64 / 1024.0
        );
    }
    println!("\nstreamed == resident: bit-for-bit (asserted, every variant)");

    if let Ok(out) = std::env::var("AFFINITY_BENCH_JSON") {
        let json = to_json(
            scale,
            n,
            m,
            matrix_bytes,
            cache_cols,
            cache_bytes,
            &resident,
            &streamed,
            &cache_stats,
            latency_us,
            (cold_n, cold_m, cold_cache_cols),
            cold.as_deref(),
        );
        std::fs::write(&out, json).expect("write bench JSON");
        println!("wrote baseline to {out}");
    }
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    scale: Scale,
    n: usize,
    m: usize,
    matrix_bytes: usize,
    cache_cols: usize,
    cache_bytes: usize,
    resident: &Phase,
    streamed: &Phase,
    cache: &CacheStats,
    latency_us: usize,
    cold_shape: (usize, usize, usize),
    cold: Option<&[(usize, Phase, CacheStats, u64)]>,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"fig17_outofcore\",");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        scale.tag().split(' ').next().expect("tag")
    );
    let _ = writeln!(
        s,
        "  \"hardware_threads\": {},",
        affinity_par::resolve_threads(0)
    );
    let _ = writeln!(s, "  \"series\": {n},");
    let _ = writeln!(s, "  \"samples\": {m},");
    let _ = writeln!(s, "  \"matrix_bytes\": {matrix_bytes},");
    let _ = writeln!(s, "  \"cache_columns\": {cache_cols},");
    let _ = writeln!(s, "  \"cache_budget_bytes\": {cache_bytes},");
    let _ = writeln!(
        s,
        "  \"resident\": {{\"build_secs\": {:.6}, \"peak_heap_bytes\": {}}},",
        resident.secs, resident.peak_heap
    );
    let _ = writeln!(
        s,
        "  \"streamed\": {{\"build_secs\": {:.6}, \"peak_heap_bytes\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}}},",
        streamed.secs, streamed.peak_heap, cache.hits, cache.misses, cache.evictions
    );
    let _ = writeln!(
        s,
        "  \"streamed_peak_over_matrix\": {:.4},",
        streamed.peak_heap as f64 / matrix_bytes as f64
    );
    if let Some(cold) = cold {
        let (cold_n, cold_m, cold_cache_cols) = cold_shape;
        let _ = writeln!(s, "  \"cold_latency_us\": {latency_us},");
        let _ = writeln!(s, "  \"cold_series\": {cold_n},");
        let _ = writeln!(s, "  \"cold_samples\": {cold_m},");
        let _ = writeln!(s, "  \"cold_cache_columns\": {cold_cache_cols},");
        for (depth, phase, stats, reads) in cold {
            let key = if *depth == 0 {
                "cold_prefetch_off".to_string()
            } else {
                format!("cold_prefetch_on_depth_{depth}")
            };
            let _ = writeln!(
                s,
                "  \"{key}\": {{\"build_secs\": {:.6}, \"peak_heap_bytes\": {}, \"read_requests\": {reads}, \"cache_hits\": {}, \"cache_misses\": {}, \"prefetch_issued\": {}, \"prefetch_hits\": {}, \"prefetch_wasted\": {}, \"prefetch_queue_full\": {}}},",
                phase.secs,
                phase.peak_heap,
                stats.hits,
                stats.misses,
                stats.prefetch.issued,
                stats.prefetch.hits,
                stats.prefetch.wasted,
                stats.prefetch.queue_full
            );
        }
        if let [(_, off, _, _), (_, on, _, _)] = cold {
            let _ = writeln!(s, "  \"cold_prefetch_speedup\": {:.4},", off.secs / on.secs);
        }
    }
    let _ = writeln!(s, "  \"bit_identical\": true");
    let _ = writeln!(s, "}}");
    s
}

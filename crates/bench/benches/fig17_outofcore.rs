//! Fig. 17 (repo extension) — out-of-core model construction.
//!
//! Builds the full model (AFCLST + SYMEX+ + SCAPE index) twice over the
//! same long-series dataset:
//!
//! 1. **resident** — the classical path over an in-memory `DataMatrix`;
//! 2. **streamed** — through a [`CachedStore`] holding only a small,
//!    fixed number of columns (the cache budget), with the matrix on
//!    disk and dropped from memory.
//!
//! A counting global allocator tracks the **peak live heap** of each
//! phase; the point of the figure is that the streamed peak is bounded
//! by the cache budget plus model size — *not* by `n·m` — while the
//! produced model is asserted bit-for-bit identical to the resident
//! one. The dataset shape is deliberately long (`m ≫ n`): the matrix
//! dwarfs the model, which is the regime where out-of-core matters.
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to write the measurements as a JSON
//! baseline (CI uploads `BENCH_outofcore.json`).

use affinity_bench::{fmt_secs, header, time, Scale};
use affinity_core::symex::{AffineSet, Symex};
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_par::ThreadPool;
use affinity_scape::ScapeIndex;
use affinity_storage::{CachedStore, MatrixStore};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting allocator: live bytes + high-water mark, resettable between
/// phases. Counts every allocation in the process, so a phase's peak is
/// its true heap footprint (model, caches, scratch — everything).
struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Reset the high-water mark to the current live bytes.
fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// `VmHWM` (peak resident set of the whole process) in kB, if readable.
/// Monotonic over the process lifetime — reported for context only; the
/// per-phase comparison uses the resettable heap counter above.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

struct Phase {
    secs: f64,
    peak_heap: usize,
}

fn build_resident(data: &affinity_data::DataMatrix, symex: &Symex) -> (AffineSet, ScapeIndex) {
    let affine = symex.run(data).expect("resident symex");
    let index = ScapeIndex::build(data, &affine, &affinity_core::measures::Measure::ALL)
        .expect("resident index");
    (affine, index)
}

fn build_streamed(source: &CachedStore, symex: &Symex) -> (AffineSet, ScapeIndex) {
    let affine = symex.run(source).expect("streamed symex");
    let index = ScapeIndex::build_from_source(
        source,
        &affine,
        &affinity_core::measures::Measure::ALL,
        &ThreadPool::new(affinity_bench::threads_from_env()),
    )
    .expect("streamed index");
    (affine, index)
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 17",
        "out-of-core model construction: peak memory bounded by the cache budget",
        scale,
    );
    // Long-series shapes: the matrix (n·m·8 bytes) dwarfs the O(n²)
    // model, which is the out-of-core regime.
    let (n, m) = match scale {
        Scale::Quick => (32, 16_000),
        Scale::Mid => (48, 60_000),
        Scale::Full => (96, 250_000),
    };
    let cache_cols = (n / 8).max(4);
    let matrix_bytes = n * m * 8;
    let cache_bytes = cache_cols * m * 8;
    println!(
        "dataset: {n} series x {m} samples = {:.1} MB; cache budget: {cache_cols} columns = {:.1} MB\n",
        mb(matrix_bytes),
        mb(cache_bytes)
    );

    let dir = std::env::temp_dir().join("affinity-fig17");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("outofcore-{}.afn", std::process::id()));

    let symex = affinity_bench::default_symex();

    // --- Resident phase -------------------------------------------------
    let data = sensor_dataset(&SensorConfig::reduced(n, m));
    MatrixStore::create(&path, &data).expect("write store");
    reset_peak();
    let ((resident_affine, resident_index), resident_secs) = time(|| build_resident(&data, &symex));
    let resident = Phase {
        secs: resident_secs,
        peak_heap: peak_bytes(),
    };
    drop(data);

    // --- Streamed phase -------------------------------------------------
    let source = CachedStore::new(MatrixStore::open(&path).expect("open store"), cache_cols);
    reset_peak();
    let ((streamed_affine, streamed_index), streamed_secs) =
        time(|| build_streamed(&source, &symex));
    let streamed = Phase {
        secs: streamed_secs,
        peak_heap: peak_bytes(),
    };
    let cache_stats = source.stats();
    std::fs::remove_file(&path).ok();

    // --- Equivalence (the whole point: same model, bounded memory) ------
    assert_eq!(
        resident_affine.relationships(),
        streamed_affine.relationships(),
        "streamed relationships must be bit-identical"
    );
    assert_eq!(
        resident_affine.series_relationships(),
        streamed_affine.series_relationships()
    );
    assert_eq!(resident_affine.pivots(), streamed_affine.pivots());
    assert_eq!(resident_index.stats(), streamed_index.stats());

    // The resident peak necessarily carries the matrix; the streamed
    // peak must not scale with it.
    assert!(
        resident.peak_heap >= matrix_bytes,
        "resident peak {} below the matrix itself {}",
        resident.peak_heap,
        matrix_bytes
    );
    if scale != Scale::Quick {
        assert!(
            streamed.peak_heap < matrix_bytes,
            "streamed peak {:.1} MB is not below the {:.1} MB matrix — out-of-core regression",
            mb(streamed.peak_heap),
            mb(matrix_bytes)
        );
    }

    println!(
        "{:>10} {:>12} {:>16} {:>16}",
        "path", "build", "peak heap", "vs matrix"
    );
    for (name, phase) in [("resident", &resident), ("streamed", &streamed)] {
        println!(
            "{:>10} {:>12} {:>13.1} MB {:>15.2}x",
            name,
            fmt_secs(phase.secs),
            mb(phase.peak_heap),
            phase.peak_heap as f64 / matrix_bytes as f64
        );
    }
    println!(
        "\ncache: {} hits, {} misses, {} evictions, {} bypasses ({:.1}% hit rate)",
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.evictions,
        cache_stats.bypasses,
        100.0 * cache_stats.hits as f64 / (cache_stats.hits + cache_stats.misses).max(1) as f64
    );
    if let Some(hwm) = vm_hwm_kb() {
        println!(
            "process VmHWM (monotonic, both phases): {:.1} MB",
            hwm as f64 / 1024.0
        );
    }
    println!("\nstreamed == resident: bit-for-bit (asserted)");

    if let Ok(out) = std::env::var("AFFINITY_BENCH_JSON") {
        let json = to_json(
            scale,
            n,
            m,
            matrix_bytes,
            cache_cols,
            cache_bytes,
            &resident,
            &streamed,
            &cache_stats,
        );
        std::fs::write(&out, json).expect("write bench JSON");
        println!("wrote baseline to {out}");
    }
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    scale: Scale,
    n: usize,
    m: usize,
    matrix_bytes: usize,
    cache_cols: usize,
    cache_bytes: usize,
    resident: &Phase,
    streamed: &Phase,
    cache: &affinity_storage::CacheStats,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"fig17_outofcore\",");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        scale.tag().split(' ').next().expect("tag")
    );
    let _ = writeln!(
        s,
        "  \"hardware_threads\": {},",
        affinity_par::resolve_threads(0)
    );
    let _ = writeln!(s, "  \"series\": {n},");
    let _ = writeln!(s, "  \"samples\": {m},");
    let _ = writeln!(s, "  \"matrix_bytes\": {matrix_bytes},");
    let _ = writeln!(s, "  \"cache_columns\": {cache_cols},");
    let _ = writeln!(s, "  \"cache_budget_bytes\": {cache_bytes},");
    let _ = writeln!(
        s,
        "  \"resident\": {{\"build_secs\": {:.6}, \"peak_heap_bytes\": {}}},",
        resident.secs, resident.peak_heap
    );
    let _ = writeln!(
        s,
        "  \"streamed\": {{\"build_secs\": {:.6}, \"peak_heap_bytes\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}}},",
        streamed.secs, streamed.peak_heap, cache.hits, cache.misses, cache.evictions
    );
    let _ = writeln!(
        s,
        "  \"streamed_peak_over_matrix\": {:.4},",
        streamed.peak_heap as f64 / matrix_bytes as f64
    );
    let _ = writeln!(s, "  \"bit_identical\": true");
    let _ = writeln!(s, "}}");
    s
}

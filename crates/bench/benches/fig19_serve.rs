//! Fig. 19 (repo extension) — the concurrent query service under load.
//!
//! The paper's operating model (Sec. 1) is compute-once, query-forever:
//! relationships are derived up front and a stream of MET/MER/MEC
//! queries runs against them continuously. `affinity_serve` turns that
//! into a long-lived TCP service with epoch-swapped model snapshots, so
//! this bench measures what serving adds to the story:
//!
//! 1. **steady state** — closed-loop clients over real sockets; report
//!    p50/p99 latency and aggregate QPS;
//! 2. **refresh churn** — the same load while the engine keeps
//!    re-publishing epochs (readers never block on a swap; the cost
//!    shows up only as background CPU);
//! 3. **overload** — an open-loop burst far beyond the admission
//!    queue's capacity with a short per-request deadline: every request
//!    is answered (result or typed rejection) and the p99 of *answered*
//!    requests stays bounded by the deadline, not by the backlog.
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to write the measurements as a JSON
//! baseline (CI uploads `BENCH_serve.json`).

use affinity_bench::{fmt_secs, header, Scale};
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_serve::{ServeConfig, Server, ShedPolicy};
use affinity_stream::{StreamingConfig, StreamingEngine};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERIES: &[&str] = &[
    "MET correlation > 0.5",
    "MER covariance BETWEEN -1000 AND 1000",
    "MEC mean OF S0, S1, S2",
    "MET mean > 0",
];

/// Spawn an in-process server on an ephemeral port; returns the handle,
/// the bound address, and the join handle of the accept loop.
fn start_server(
    n: usize,
    window: usize,
    data: &affinity_data::DataMatrix,
    cfg: ServeConfig,
) -> (Arc<Server>, String, std::thread::JoinHandle<String>) {
    let mut scfg = StreamingConfig::new(window);
    // An aggressive refresh cadence so the churn phase publishes real
    // epochs within the bench's short load window.
    scfg.refresh_every = (window as u64 / 8).max(1);
    let mut engine = StreamingEngine::new(n, scfg);
    let mut row = vec![0.0; n];
    for t in 0..window {
        for (v, slot) in row.iter_mut().enumerate() {
            *slot = data.series(v)[t];
        }
        engine.push(&row).expect("warm-up push");
    }
    let server = Server::new(engine, data.clone(), cfg).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let accept = {
        let srv = Arc::clone(&server);
        std::thread::spawn(move || srv.serve(listener).expect("serve"))
    };
    (server, addr, accept)
}

/// One closed-loop client: `count` sequential request/response round
/// trips; returns per-request latencies in seconds.
fn closed_loop(addr: &str, client_id: usize, count: usize) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut lat = Vec::with_capacity(count);
    let mut line = String::new();
    for i in 0..count {
        let q = QUERIES[i % QUERIES.len()];
        let t0 = Instant::now();
        writer
            .write_all(format!("c{client_id}q{i} {q}\n").as_bytes())
            .expect("send");
        line.clear();
        reader.read_line(&mut line).expect("response header");
        let mut parts = line.trim_end().splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("OK"), _, Some(cnt)) => {
                let body: usize = cnt.parse().expect("body count");
                for _ in 0..body {
                    line.clear();
                    reader.read_line(&mut line).expect("body line");
                }
            }
            (Some("ERR"), _, Some(rest)) => panic!("steady-state query failed: {rest}"),
            other => panic!("malformed response {other:?}"),
        }
        lat.push(t0.elapsed().as_secs_f64());
    }
    lat
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Run `clients` closed-loop clients of `per_client` requests each;
/// returns (p50, p99, qps).
fn run_load(addr: &str, clients: usize, per_client: usize) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || closed_loop(&addr, c, per_client))
        })
        .collect();
    let mut lat: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let qps = lat.len() as f64 / wall;
    (percentile(&lat, 0.50), percentile(&lat, 0.99), qps)
}

fn shutdown(addr: &str) {
    if let Ok(mut s) = TcpStream::connect(addr) {
        let _ = s.write_all(b".shutdown\n");
    }
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 19",
        "concurrent query service: latency, refresh churn, overload",
        scale,
    );
    let (n, window, clients, per_client) = match scale {
        Scale::Quick => (16, 48, 2, 150),
        Scale::Mid => (48, 96, 4, 400),
        Scale::Full => (96, 128, 8, 600),
    };
    println!(
        "dataset: {n} series x {window}-tick window; {clients} closed-loop clients x {per_client} requests\n"
    );
    let data = sensor_dataset(&SensorConfig {
        series: n,
        samples: window * 4,
        ..SensorConfig::default()
    });

    // --- 1. steady state -------------------------------------------------
    let cfg = ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    };
    let (_srv, addr, accept) = start_server(n, window, &data, cfg);
    let (p50, p99, qps) = run_load(&addr, clients, per_client);
    shutdown(&addr);
    accept.join().expect("accept loop");
    println!(
        "steady state: p50 {}  p99 {}  {qps:.0} q/s",
        fmt_secs(p50),
        fmt_secs(p99)
    );

    // --- 2. refresh churn ------------------------------------------------
    let cfg = ServeConfig {
        workers: 4,
        churn_every: Some(Duration::from_millis(2)),
        ..ServeConfig::default()
    };
    let (srv, addr, accept) = start_server(n, window, &data, cfg);
    let (p50_churn, p99_churn, qps_churn) = run_load(&addr, clients, per_client);
    let epochs = srv.epochs_published();
    shutdown(&addr);
    accept.join().expect("accept loop");
    println!(
        "with churn:   p50 {}  p99 {}  {qps_churn:.0} q/s  ({epochs} epochs published)",
        fmt_secs(p50_churn),
        fmt_secs(p99_churn)
    );

    // --- 3. overload -----------------------------------------------------
    // Open-loop burst: everything is fired before anything is read, into
    // a 4-deep queue with a short deadline and shed-oldest admission.
    let deadline = Duration::from_millis(250);
    let cfg = ServeConfig {
        workers: 2,
        queue: affinity_serve::QueuePolicy {
            capacity: 4,
            deadline: Some(deadline),
            shed: ShedPolicy::ShedOldest,
        },
        ..ServeConfig::default()
    };
    let (srv, addr, accept) = start_server(n, window, &data, cfg);
    let burst = clients * per_client;
    let stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    let reader = BufReader::new(stream);
    let t0 = Instant::now();

    // Drain concurrently with the send storm — a one-sided burst would
    // wedge on full socket buffers once responses back up. The reader
    // records each response's arrival; latencies are joined with the
    // send timestamps afterwards.
    let drain = std::thread::spawn(move || {
        let mut reader = reader;
        let mut line = String::new();
        let mut arrivals: Vec<(usize, bool, Instant)> = Vec::with_capacity(burst);
        while arrivals.len() < burst {
            line.clear();
            reader.read_line(&mut line).expect("burst response");
            let trimmed = line.trim_end();
            let mut parts = trimmed.splitn(3, ' ');
            let (kind, id, rest) = (
                parts.next().expect("kind"),
                parts.next().expect("id"),
                parts.next().unwrap_or("").to_string(),
            );
            let idx: usize = id.trim_start_matches('b').parse().expect("burst id");
            match kind {
                "OK" => {
                    let body: usize = rest.parse().expect("body count");
                    for _ in 0..body {
                        line.clear();
                        reader.read_line(&mut line).expect("body line");
                    }
                    arrivals.push((idx, true, Instant::now()));
                }
                "ERR" => {
                    let code = rest.split(' ').next().expect("code");
                    assert!(
                        matches!(code, "OVERLOADED" | "DEADLINE"),
                        "overload produced an untyped failure: {kind} {id} {rest}"
                    );
                    arrivals.push((idx, false, Instant::now()));
                }
                other => panic!("malformed burst response kind {other}"),
            }
        }
        arrivals
    });
    let send_times: Vec<Instant> = (0..burst)
        .map(|i| {
            let q = QUERIES[i % QUERIES.len()];
            writer
                .write_all(format!("b{i} {q}\n").as_bytes())
                .expect("send burst");
            Instant::now()
        })
        .collect();
    let arrivals = drain.join().expect("drain thread");
    let burst_wall = t0.elapsed().as_secs_f64();
    let answered = arrivals.iter().filter(|(_, ok, _)| *ok).count();
    let rejected = burst - answered;
    let mut answer_lat: Vec<f64> = arrivals
        .iter()
        .filter(|(_, ok, _)| *ok)
        .map(|&(idx, _, at)| (at - send_times[idx]).as_secs_f64())
        .collect();
    answer_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_overload = percentile(&answer_lat, 0.99);
    let ledger = srv.ledger();
    shutdown(&addr);
    accept.join().expect("accept loop");
    println!(
        "overload:     {burst} open-loop requests in {} — {answered} answered, {rejected} typed rejections",
        fmt_secs(burst_wall)
    );
    println!(
        "              answered p99 {} (deadline {})",
        fmt_secs(p99_overload),
        fmt_secs(deadline.as_secs_f64())
    );
    println!("              {ledger}");
    // The admission queue, not the backlog, bounds answered latency:
    // p99 must sit within the deadline plus execution/transport slack.
    assert_eq!(answered + rejected, burst, "every request must be answered");
    assert!(
        p99_overload <= deadline.as_secs_f64() + 1.0,
        "overload p99 {p99_overload:.3}s escaped the deadline bound"
    );

    if let Ok(out) = std::env::var("AFFINITY_BENCH_JSON") {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"bench\": \"fig19_serve\",");
        let _ = writeln!(
            s,
            "  \"scale\": \"{}\",",
            scale.tag().split(' ').next().expect("tag")
        );
        let _ = writeln!(
            s,
            "  \"hardware_threads\": {},",
            affinity_par::resolve_threads(0)
        );
        let _ = writeln!(s, "  \"series\": {n},");
        let _ = writeln!(s, "  \"window\": {window},");
        let _ = writeln!(s, "  \"clients\": {clients},");
        let _ = writeln!(s, "  \"requests_per_client\": {per_client},");
        let _ = writeln!(s, "  \"steady_p50_secs\": {p50:.6},");
        let _ = writeln!(s, "  \"steady_p99_secs\": {p99:.6},");
        let _ = writeln!(s, "  \"steady_qps\": {qps:.1},");
        let _ = writeln!(s, "  \"churn_p50_secs\": {p50_churn:.6},");
        let _ = writeln!(s, "  \"churn_p99_secs\": {p99_churn:.6},");
        let _ = writeln!(s, "  \"churn_qps\": {qps_churn:.1},");
        let _ = writeln!(s, "  \"churn_epochs_published\": {epochs},");
        let _ = writeln!(s, "  \"overload_requests\": {burst},");
        let _ = writeln!(s, "  \"overload_answered\": {answered},");
        let _ = writeln!(s, "  \"overload_typed_rejections\": {rejected},");
        let _ = writeln!(s, "  \"overload_answered_p99_secs\": {p99_overload:.6},");
        let _ = writeln!(
            s,
            "  \"overload_deadline_secs\": {:.6},",
            deadline.as_secs_f64()
        );
        let _ = writeln!(s, "  \"every_request_answered\": true");
        let _ = writeln!(s, "}}");
        std::fs::write(&out, s).expect("write bench JSON");
        println!("wrote baseline to {out}");
    }
}

//! Table 4 — query processing speedups at maximum result size.
//!
//! SCAPE's speedup over W_N, W_A and (for correlation) W_F when the MET /
//! MER query returns the maximum-size result set, on sensor-data.
//!
//! Paper values for orientation:
//!   MET: correlation 59x/13.4x/32x, covariance 160x/21x,
//!        dot product 41x/35x, median 5x/1.1x
//!   MER: correlation 27x/6.4x/14x, covariance 155x/22x

use affinity_bench::{default_symex, header, sensor, time, Scale};
use affinity_core::measures::{self, LocationMeasure, Measure, PairwiseMeasure};
use affinity_query::{AffineExecutor, DftExecutor, NaiveExecutor};
use affinity_scape::{ScapeIndex, ThresholdOp};

/// Median of several timed repetitions (max-result queries are cheap for
/// the indexed path; single-shot timings would be noise).
fn timed_median<T>(mut f: impl FnMut() -> T, reps: usize) -> f64 {
    let mut times: Vec<f64> = (0..reps).map(|_| time(&mut f).1).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Table 4",
        "Speedups at maximum result size, sensor-data",
        scale,
    );
    let data = sensor(scale);
    let affine = default_symex().run(&data).expect("symex");
    let index = ScapeIndex::build(&data, &affine, &Measure::ALL).expect("index");
    let wn = NaiveExecutor::new(&data);
    let wa = AffineExecutor::new(&data, &affine);
    let wf = DftExecutor::new(&data);
    let reps = 3;

    // Thresholds below every value => maximum result set.
    let min_of = |m: PairwiseMeasure| {
        measures::pairwise_all(m, &data)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
            - 1.0
    };
    let med_min = measures::location_all(LocationMeasure::Median, &data)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
        - 1.0;

    println!(
        "\n{:<6} {:<22} {:>8} {:>8} {:>8}",
        "query", "measure", "W_N", "W_A", "W_F"
    );

    // ---- MET ----
    for m in [
        PairwiseMeasure::Correlation,
        PairwiseMeasure::Covariance,
        PairwiseMeasure::DotProduct,
    ] {
        let tau = min_of(m);
        let t_s = timed_median(
            || index.threshold_pairs(m, ThresholdOp::Greater, tau).unwrap(),
            reps,
        );
        let t_n = timed_median(|| wn.met_pairs(m, ThresholdOp::Greater, tau), reps);
        let t_a = timed_median(|| wa.met_pairs(m, ThresholdOp::Greater, tau), reps);
        let wf_col = if m == PairwiseMeasure::Correlation {
            let t_f = timed_median(|| wf.met_pairs(ThresholdOp::Greater, tau), reps);
            format!("{:>7.1}x", t_f / t_s)
        } else {
            format!("{:>8}", "x")
        };
        println!(
            "{:<6} {:<22} {:>7.1}x {:>7.1}x {}",
            "MET",
            m.name(),
            t_n / t_s,
            t_a / t_s,
            wf_col
        );
    }
    {
        let t_s = timed_median(
            || {
                index
                    .threshold_series(LocationMeasure::Median, ThresholdOp::Greater, med_min)
                    .unwrap()
            },
            reps,
        );
        let t_n = timed_median(
            || wn.met_series(LocationMeasure::Median, ThresholdOp::Greater, med_min),
            reps,
        );
        let t_a = timed_median(
            || wa.met_series(LocationMeasure::Median, ThresholdOp::Greater, med_min),
            reps,
        );
        println!(
            "{:<6} {:<22} {:>7.1}x {:>7.1}x {:>8}",
            "MET",
            "median",
            t_n / t_s,
            t_a / t_s,
            "x"
        );
    }

    // ---- MER ----
    for m in [PairwiseMeasure::Correlation, PairwiseMeasure::Covariance] {
        let values = measures::pairwise_all(m, &data);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min) - 1.0;
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1.0;
        let t_s = timed_median(|| index.range_pairs(m, lo, hi).unwrap(), reps);
        let t_n = timed_median(|| wn.mer_pairs(m, lo, hi), reps);
        let t_a = timed_median(|| wa.mer_pairs(m, lo, hi), reps);
        let wf_col = if m == PairwiseMeasure::Correlation {
            let t_f = timed_median(|| wf.mer_pairs(lo, hi), reps);
            format!("{:>7.1}x", t_f / t_s)
        } else {
            format!("{:>8}", "x")
        };
        println!(
            "{:<6} {:<22} {:>7.1}x {:>7.1}x {}",
            "MER",
            m.name(),
            t_n / t_s,
            t_a / t_s,
            wf_col
        );
    }

    println!("\npaper (for shape comparison):");
    println!("  MET  correlation 59x / 13.4x / 32x; covariance 160x / 21x; dot 41x / 35x; median 5x / 1.1x");
    println!("  MER  correlation 27x / 6.4x / 14x; covariance 155x / 22x");
    println!("'x' marks methods the paper also excludes (W_F computes only the correlation coefficient).");
}

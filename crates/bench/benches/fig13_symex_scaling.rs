//! Fig. 13 — scalability of SYMEX vs SYMEX+.
//!
//! Runtime of both variants as the number of affine relationships grows
//! (series prefixes of each dataset). Paper: both scale linearly, with
//! SYMEX+ a factor 3.5–4 faster thanks to the pseudo-inverse cache.

use affinity_bench::{fmt_secs, header, sensor, stock, symex_params, time, Scale};
use affinity_core::symex::{Symex, SymexVariant};
use affinity_data::DataMatrix;

fn prefix_sizes(n: usize) -> Vec<usize> {
    // Five prefixes, quadratically spaced so relationship counts spread
    // roughly linearly.
    (1..=5)
        .map(|i| ((n as f64) * (i as f64 / 5.0).sqrt()).round() as usize)
        .map(|v| v.max(8))
        .collect()
}

fn run_dataset(name: &str, data: &DataMatrix) -> Vec<f64> {
    println!("\n--- {name} ---");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>8}",
        "#series", "#relationships", "SYMEX", "SYMEX+", "ratio"
    );
    let mut ratios = Vec::new();
    for n in prefix_sizes(data.series_count()) {
        let slice = data.prefix(n);
        let basic = Symex::new(symex_params(6.min(n - 1).max(1), SymexVariant::Basic));
        let plus = Symex::new(symex_params(6.min(n - 1).max(1), SymexVariant::Plus));
        let ((set, stats_b), t_basic) = time(|| basic.run_with_stats(&slice).expect("symex basic"));
        let ((_, stats_p), t_plus) = time(|| plus.run_with_stats(&slice).expect("symex plus"));
        assert_eq!(stats_b.pinv_cache_hits, 0);
        assert!(stats_p.pinv_cache_hits > 0 || n < 4);
        let ratio = t_basic / t_plus;
        ratios.push(ratio);
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>7.1}x",
            n,
            set.len(),
            fmt_secs(t_basic),
            fmt_secs(t_plus),
            ratio
        );
    }
    ratios
}

fn main() {
    let scale = Scale::from_env();
    header("Fig. 13", "Scalability of SYMEX vs SYMEX+", scale);
    let s = sensor(scale);
    let r1 = run_dataset("sensor-data", &s);
    let k = stock(scale);
    let r2 = run_dataset("stock-data", &k);
    let max_ratio = r1.iter().chain(r2.iter()).fold(0.0f64, |m, &v| m.max(v));
    println!(
        "\nshape check: both variants scale ~linearly in relationships; SYMEX+ up to {max_ratio:.1}x faster (paper: 3.5-4x)"
    );
}

//! Fig. 13 — scalability of SYMEX vs SYMEX+, plus the parallel build and
//! batched-sweep scaling the pool crate adds on top.
//!
//! Three sections per dataset:
//!
//! 1. the paper's comparison — runtime of both variants as the number of
//!    affine relationships grows (series prefixes; paper: both scale
//!    linearly, SYMEX+ a factor 3.5–4 faster via the pseudo-inverse
//!    cache);
//! 2. SYMEX+ build wall-clock across `threads ∈ {1, 2, 4, 8}` (the
//!    pivot-sharded fit phase; bit-identical output asserted);
//! 3. MEC measure sweeps — the scalar per-pair `pair_value` loop vs the
//!    batched GEMV-per-pivot `pairwise_all`, serial and parallel.
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to also write the measurements as a
//! JSON baseline (CI commits/uploads `BENCH_symex.json` so every PR has
//! a perf trajectory).

use affinity_bench::{fmt_secs, header, sensor, stock, symex_params_threads, time, Scale};
use affinity_core::measures::PairwiseMeasure;
use affinity_core::mec::MecEngine;
use affinity_core::symex::{Symex, SymexVariant};
use affinity_data::{DataMatrix, SequencePair};
use std::fmt::Write as _;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn prefix_sizes(n: usize) -> Vec<usize> {
    // Five prefixes, quadratically spaced so relationship counts spread
    // roughly linearly.
    (1..=5)
        .map(|i| ((n as f64) * (i as f64 / 5.0).sqrt()).round() as usize)
        .map(|v| v.max(8))
        .collect()
}

/// The pre-batching reference: one scalar `pair_value` per pair.
fn scalar_sweep(engine: &MecEngine<'_>, measure: PairwiseMeasure, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            out.push(
                engine
                    .pair_value(measure, SequencePair::new(u, v))
                    .expect("full affine set"),
            );
        }
    }
    out
}

struct DatasetReport {
    name: &'static str,
    series: usize,
    samples: usize,
    basic_secs: f64,
    plus_secs: f64,
    build_by_threads: Vec<(usize, f64)>,
    sweep_rows: Vec<SweepRow>,
}

struct SweepRow {
    measure: &'static str,
    scalar_secs: f64,
    batched_serial_secs: f64,
    batched_parallel_secs: f64,
}

fn run_dataset(name: &'static str, data: &DataMatrix) -> DatasetReport {
    println!("\n--- {name} ---");
    let n = data.series_count();
    let k = |n: usize| 6.min(n - 1).max(1);

    // (1) Paper comparison over prefixes, serial (threads = 1) so the
    // variant ratio is apples to apples.
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>8}",
        "#series", "#relationships", "SYMEX", "SYMEX+", "ratio"
    );
    let mut basic_secs = 0.0;
    let mut plus_secs = 0.0;
    for p in prefix_sizes(n) {
        let slice = data.prefix(p);
        let basic = Symex::new(symex_params_threads(k(p), SymexVariant::Basic, 1));
        let plus = Symex::new(symex_params_threads(k(p), SymexVariant::Plus, 1));
        let ((set, stats_b), t_basic) = time(|| basic.run_with_stats(&slice).expect("symex basic"));
        let ((_, stats_p), t_plus) = time(|| plus.run_with_stats(&slice).expect("symex plus"));
        assert_eq!(stats_b.pinv_cache_hits, 0);
        assert!(stats_p.pinv_cache_hits > 0 || p < 4);
        println!(
            "{:>8} {:>14} {:>12} {:>12} {:>7.1}x",
            p,
            set.len(),
            fmt_secs(t_basic),
            fmt_secs(t_plus),
            t_basic / t_plus
        );
        basic_secs = t_basic; // keep the full-prefix numbers
        plus_secs = t_plus;
    }

    // (2) SYMEX+ build across thread counts on the full dataset; results
    // must be bit-identical to the serial build.
    println!("\nSYMEX+ build, threads sweep ({n} series):");
    println!("{:>8} {:>12} {:>8}", "threads", "build", "speedup");
    let mut build_by_threads = Vec::new();
    let mut serial_set = None;
    let mut serial_secs = 0.0;
    for &t in THREAD_SWEEP.iter() {
        let symex = Symex::new(symex_params_threads(k(n), SymexVariant::Plus, t));
        let (set, secs) = time(|| symex.run(data).expect("symex plus"));
        if t == 1 {
            serial_secs = secs;
            serial_set = Some(set);
        } else {
            let base = serial_set.as_ref().expect("serial ran first");
            assert_eq!(base.relationships(), set.relationships(), "threads = {t}");
        }
        println!(
            "{:>8} {:>12} {:>7.1}x",
            t,
            fmt_secs(secs),
            serial_secs / secs
        );
        build_by_threads.push((t, secs));
    }
    let affine = serial_set.expect("serial build");

    // (3) MEC sweeps: scalar per-pair loop vs batched GEMV per pivot.
    println!("\nMEC pairwise_all sweep ({} pairs):", n * (n - 1) / 2);
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>8}",
        "measure", "scalar", "batched(t=1)", "batched(auto)", "speedup"
    );
    let serial_engine = MecEngine::with_threads(data, &affine, 1);
    let auto_engine = MecEngine::new(data, &affine);
    // Warm the lazily-built β-batches so the rows time steady-state
    // sweeps (batch construction is one-time preprocessing, charged
    // separately in the paper's W_A accounting).
    let _ = serial_engine.pairwise_all(PairwiseMeasure::Covariance);
    let _ = auto_engine.pairwise_all(PairwiseMeasure::Covariance);
    let mut sweep_rows = Vec::new();
    for measure in [
        PairwiseMeasure::Covariance,
        PairwiseMeasure::DotProduct,
        PairwiseMeasure::Correlation,
    ] {
        let (scalar, t_scalar) = time(|| scalar_sweep(&serial_engine, measure, n));
        let (batched, t_serial) = time(|| {
            serial_engine
                .pairwise_all(measure)
                .expect("full affine set")
        });
        let (_, t_auto) = time(|| auto_engine.pairwise_all(measure).expect("full affine set"));
        assert_eq!(scalar.len(), batched.len());
        for (s, b) in scalar.iter().zip(&batched) {
            assert!((s - b).abs() <= 1e-12 * s.abs().max(1.0));
        }
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>7.1}x",
            measure.name(),
            fmt_secs(t_scalar),
            fmt_secs(t_serial),
            fmt_secs(t_auto),
            t_scalar / t_serial.min(t_auto)
        );
        sweep_rows.push(SweepRow {
            measure: measure.name(),
            scalar_secs: t_scalar,
            batched_serial_secs: t_serial,
            batched_parallel_secs: t_auto,
        });
    }

    DatasetReport {
        name,
        series: n,
        samples: data.samples(),
        basic_secs,
        plus_secs,
        build_by_threads,
        sweep_rows,
    }
}

fn json_escape_free(reports: &[DatasetReport], scale: Scale) -> String {
    // All strings are static identifiers — no escaping needed.
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"fig13_symex_scaling\",");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        scale.tag().split(' ').next().unwrap()
    );
    let _ = writeln!(
        s,
        "  \"hardware_threads\": {},",
        affinity_par::resolve_threads(0)
    );
    let _ = writeln!(s, "  \"datasets\": [");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"series\": {},", r.series);
        let _ = writeln!(s, "      \"samples\": {},", r.samples);
        let _ = writeln!(s, "      \"symex_basic_secs\": {:.6},", r.basic_secs);
        let _ = writeln!(s, "      \"symex_plus_secs\": {:.6},", r.plus_secs);
        let _ = writeln!(s, "      \"symex_plus_build_by_threads\": [");
        for (j, (t, secs)) in r.build_by_threads.iter().enumerate() {
            let comma = if j + 1 < r.build_by_threads.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "        {{\"threads\": {t}, \"secs\": {secs:.6}}}{comma}"
            );
        }
        let _ = writeln!(s, "      ],");
        let _ = writeln!(s, "      \"pairwise_all_sweeps\": [");
        for (j, row) in r.sweep_rows.iter().enumerate() {
            let comma = if j + 1 < r.sweep_rows.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"measure\": \"{}\", \"scalar_secs\": {:.6}, \"batched_serial_secs\": {:.6}, \"batched_parallel_secs\": {:.6}, \"batched_speedup\": {:.2}}}{comma}",
                row.measure,
                row.scalar_secs,
                row.batched_serial_secs,
                row.batched_parallel_secs,
                row.scalar_secs / row.batched_serial_secs.min(row.batched_parallel_secs)
            );
        }
        let _ = writeln!(s, "      ]");
        let _ = writeln!(s, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 13",
        "Scalability of SYMEX vs SYMEX+ (+ threads, batched MEC)",
        scale,
    );
    let s = sensor(scale);
    let r1 = run_dataset("sensor-data", &s);
    let k = stock(scale);
    let r2 = run_dataset("stock-data", &k);
    let reports = [r1, r2];
    let max_ratio = reports
        .iter()
        .map(|r| r.basic_secs / r.plus_secs)
        .fold(0.0f64, f64::max);
    println!(
        "\nshape check: both variants scale ~linearly in relationships; SYMEX+ up to {max_ratio:.1}x faster (paper: 3.5-4x)"
    );
    if let Ok(path) = std::env::var("AFFINITY_BENCH_JSON") {
        let json = json_escape_free(&reports, scale);
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote baseline to {path}");
    }
}

//! Fig. 14 — scalability of SCAPE index construction on sensor-data,
//! extended with the bulk-load and delta-refresh paths.
//!
//! Three sections:
//!
//! 1. the paper's figure — index build time as the number of indexed
//!    affine relationships grows (linear scaling), per-key insert vs
//!    sorted bulk load for a T-measure (covariance), plus the far
//!    cheaper L-measure (mean, O(n) relationships). Both paths must
//!    answer threshold queries identically. At paper scale each pivot's
//!    tree holds only ~n/2k entries, so the end-to-end gap is bounded
//!    by the shared ξ-gather cost — reported honestly;
//! 2. the B+ tree primitive in isolation — per-key insert vs
//!    `bulk_build` on single large duplicate-heavy trees, where the
//!    bottom-up load's advantage actually lives;
//! 3. streaming amortization — wall-clock of a full model rebuild
//!    (AFCLST + SYMEX+ + index) vs a policy-driven delta refresh on a
//!    stationary stream where a small fraction of series drifts (the
//!    workload delta maintenance targets: re-fit only what moved).
//!
//! Set `AFFINITY_BENCH_JSON=<path>` to also write the measurements as a
//! JSON baseline (CI uploads `BENCH_scape.json` so every PR has a perf
//! trajectory).

use affinity_bench::{default_symex, fmt_secs, header, sensor, time, Scale};
use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_index::BPlusTree;
use affinity_scape::{ScapeIndex, ThresholdOp};
use affinity_stream::{DeltaPolicy, RefreshKind, StreamingConfig, StreamingEngine};
use std::fmt::Write as _;

struct BuildRow {
    series: usize,
    relationships: usize,
    cov_insert_secs: f64,
    cov_bulk_secs: f64,
    mean_bulk_secs: f64,
}

struct TreeRow {
    entries: usize,
    insert_secs: f64,
    bulk_secs: f64,
}

struct StreamingReport {
    series: usize,
    window: usize,
    full_refresh_secs: f64,
    delta_refresh_secs: f64,
    drifted_series: usize,
    refit_pairs: usize,
}

fn equal_queries(a: &ScapeIndex, b: &ScapeIndex, taus: &[f64]) -> bool {
    taus.iter().all(|&tau| {
        let sort = |mut v: Vec<_>| {
            v.sort();
            v
        };
        sort(
            a.threshold_pairs(PairwiseMeasure::Covariance, ThresholdOp::Greater, tau)
                .expect("query"),
        ) == sort(
            b.threshold_pairs(PairwiseMeasure::Covariance, ThresholdOp::Greater, tau)
                .expect("query"),
        )
    })
}

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 14",
        "SCAPE index construction: insert vs bulk load, full vs delta refresh",
        scale,
    );
    let data = sensor(scale);
    let n = data.series_count();

    // (1) + (2): build-path comparison over series prefixes.
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>8} {:>14}",
        "#series", "#relationships", "cov insert", "cov bulk", "speedup", "mean bulk"
    );
    let mut rows = Vec::new();
    for i in 1..=5usize {
        let sz = ((n as f64) * (i as f64 / 5.0).sqrt()).round() as usize;
        let slice = data.prefix(sz.max(8));
        let affine = default_symex().run(&slice).expect("symex");
        let cov_only = [Measure::Pairwise(PairwiseMeasure::Covariance)];
        // Best of 3 per path: single-shot build timings are noisy.
        let mut t_insert = f64::INFINITY;
        let mut t_bulk = f64::INFINITY;
        let mut t_mean = f64::INFINITY;
        let mut built = None;
        for _ in 0..3 {
            let (ins_idx, ti) =
                time(|| ScapeIndex::build_insert(&slice, &affine, &cov_only).expect("index"));
            let (bulk_idx, tb) =
                time(|| ScapeIndex::build(&slice, &affine, &cov_only).expect("index"));
            let (_, tm) = time(|| {
                ScapeIndex::build(&slice, &affine, &[Measure::Location(LocationMeasure::Mean)])
                    .expect("index")
            });
            t_insert = t_insert.min(ti);
            t_bulk = t_bulk.min(tb);
            t_mean = t_mean.min(tm);
            built = Some((ins_idx, bulk_idx));
        }
        let (ins_idx, bulk_idx) = built.expect("three reps ran");
        assert!(
            equal_queries(&ins_idx, &bulk_idx, &[-0.1, 0.0, 0.05, 0.3]),
            "insert- and bulk-built indexes disagree"
        );
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>7.1}x {:>14}",
            slice.series_count(),
            bulk_idx.stats().pair_sequence_nodes,
            fmt_secs(t_insert),
            fmt_secs(t_bulk),
            t_insert / t_bulk,
            fmt_secs(t_mean)
        );
        rows.push(BuildRow {
            series: slice.series_count(),
            relationships: bulk_idx.stats().pair_sequence_nodes,
            cov_insert_secs: t_insert,
            cov_bulk_secs: t_bulk,
            mean_bulk_secs: t_mean,
        });
    }
    let last = rows.last().expect("rows");
    println!(
        "\nshape check: both paths scale ~linearly with relationships; end-to-end gap {:.1}x at n = {}",
        last.cov_insert_secs / last.cov_bulk_secs,
        last.series
    );
    println!("(per-pivot trees hold only ~n/2k entries at paper scale, so the shared xi-gather dominates;");
    println!(" the tree primitive below is where bulk loading pays.)");
    println!("mean indexes only O(n) per-series relationships, so it stays near-constant (paper shows the same gap).");

    // (2) The B+ tree primitive in isolation: one large duplicate-heavy
    // tree per row, sorted input, per-key insert vs bottom-up load.
    println!(
        "\nB+ tree load (sorted input, 4 duplicates per key):\n{:>10} {:>12} {:>12} {:>8}",
        "#entries", "insert", "bulk", "speedup"
    );
    let mut tree_rows = Vec::new();
    for &size in &[10_000usize, 100_000, 400_000] {
        let entries: Vec<(f64, u32)> = (0..size)
            .map(|i| ((i / 4) as f64 * 0.25, i as u32))
            .collect();
        // Best of 3: single-shot timings of large allocations are noisy.
        let mut t_insert = f64::INFINITY;
        let mut t_bulk = f64::INFINITY;
        let mut lens = (0usize, 0usize);
        for _ in 0..3 {
            let (ins_tree, ti) = time(|| {
                let mut t = BPlusTree::new();
                for &(k, v) in &entries {
                    t.insert(k, v);
                }
                t
            });
            let (bulk_tree, tb) = time(|| BPlusTree::bulk_build(entries.clone()));
            t_insert = t_insert.min(ti);
            t_bulk = t_bulk.min(tb);
            lens = (ins_tree.len(), bulk_tree.len());
        }
        assert_eq!(lens.0, lens.1);
        println!(
            "{:>10} {:>12} {:>12} {:>7.1}x",
            size,
            fmt_secs(t_insert),
            fmt_secs(t_bulk),
            t_insert / t_bulk
        );
        tree_rows.push(TreeRow {
            entries: size,
            insert_secs: t_insert,
            bulk_secs: t_bulk,
        });
    }

    // (3) Streaming: full rebuild vs delta refresh. The stream is
    // stationary (the reference window's columns replayed cyclically —
    // identical in-window statistics) except for a small subset of
    // series that level-shifts; only their relationships need re-fits.
    let window = data.samples() / 2;
    let mut cfg = StreamingConfig::new(window);
    cfg.refresh_every = u64::MAX; // refreshes are driven manually below
    cfg.delta = Some(DeltaPolicy {
        drift_tolerance: 0.05,
        max_drift_fraction: 0.5,
        full_every: u64::MAX, // refreshes are driven manually below
    });
    let mut eng = StreamingEngine::new(n, cfg);
    let shifted = |v: usize| v.is_multiple_of(20); // 5% of series drift
    let tick_at = |t: usize, shift: bool| -> Vec<f64> {
        (0..n)
            .map(|v| {
                let x = data.series(v)[t % window];
                if shift && shifted(v) {
                    x * 1.05 + 1.0
                } else {
                    x
                }
            })
            .collect()
    };
    for t in 0..window {
        eng.push(&tick_at(t, false)).expect("push");
    }
    // Warm-up built the first model; time a forced full rebuild, then
    // replay half a window with the shifted subset and time the
    // policy's delta refresh.
    let (_, t_full) = time(|| eng.refresh().expect("full refresh"));
    for t in window..window + window / 2 {
        eng.push(&tick_at(t, true)).expect("push");
    }
    let (kind, t_delta) = time(|| eng.refresh_auto().expect("delta refresh"));
    // The baseline must record a real delta refresh; if the policy fell
    // back to a full rebuild the scenario itself is broken — fail loudly
    // instead of committing a wrong number.
    let RefreshKind::Delta {
        drifted_series,
        refit_pairs,
    } = kind
    else {
        panic!("expected a delta refresh, policy chose {kind:?}");
    };
    println!(
        "\nstreaming refresh ({n} series, window {window}): full rebuild {} vs delta {} ({:.1}x; {} drifted series, {} pairs re-fit, kind {:?})",
        fmt_secs(t_full),
        fmt_secs(t_delta),
        t_full / t_delta,
        drifted_series,
        refit_pairs,
        kind,
    );
    let streaming = StreamingReport {
        series: n,
        window,
        full_refresh_secs: t_full,
        delta_refresh_secs: t_delta,
        drifted_series,
        refit_pairs,
    };

    if let Ok(path) = std::env::var("AFFINITY_BENCH_JSON") {
        let json = to_json(&rows, &tree_rows, &streaming, scale);
        std::fs::write(&path, json).expect("write bench JSON");
        println!("wrote baseline to {path}");
    }
}

fn to_json(
    rows: &[BuildRow],
    tree_rows: &[TreeRow],
    streaming: &StreamingReport,
    scale: Scale,
) -> String {
    // All strings are static identifiers — no escaping needed.
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"fig14_scape_build\",");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        scale.tag().split(' ').next().expect("tag")
    );
    let _ = writeln!(
        s,
        "  \"hardware_threads\": {},",
        affinity_par::resolve_threads(0)
    );
    let _ = writeln!(s, "  \"dataset\": \"sensor-data\",");
    let _ = writeln!(s, "  \"build\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"series\": {}, \"relationships\": {}, \"cov_insert_secs\": {:.6}, \"cov_bulk_secs\": {:.6}, \"bulk_speedup\": {:.2}, \"mean_bulk_secs\": {:.6}}}{comma}",
            r.series,
            r.relationships,
            r.cov_insert_secs,
            r.cov_bulk_secs,
            r.cov_insert_secs / r.cov_bulk_secs,
            r.mean_bulk_secs
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"tree_bulk_load\": [");
    for (i, r) in tree_rows.iter().enumerate() {
        let comma = if i + 1 < tree_rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"entries\": {}, \"insert_secs\": {:.6}, \"bulk_secs\": {:.6}, \"bulk_speedup\": {:.2}}}{comma}",
            r.entries,
            r.insert_secs,
            r.bulk_secs,
            r.insert_secs / r.bulk_secs
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"streaming\": {{");
    let _ = writeln!(s, "    \"series\": {},", streaming.series);
    let _ = writeln!(s, "    \"window\": {},", streaming.window);
    let _ = writeln!(
        s,
        "    \"full_refresh_secs\": {:.6},",
        streaming.full_refresh_secs
    );
    let _ = writeln!(
        s,
        "    \"delta_refresh_secs\": {:.6},",
        streaming.delta_refresh_secs
    );
    let _ = writeln!(
        s,
        "    \"delta_speedup\": {:.2},",
        streaming.full_refresh_secs / streaming.delta_refresh_secs
    );
    let _ = writeln!(s, "    \"drifted_series\": {},", streaming.drifted_series);
    let _ = writeln!(s, "    \"refit_pairs\": {}", streaming.refit_pairs);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

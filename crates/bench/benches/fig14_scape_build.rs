//! Fig. 14 — scalability of SCAPE index construction on sensor-data.
//!
//! Build time of the index as the number of indexed affine relationships
//! grows, separately for a T-measure (covariance) and an L-measure
//! (mean). Paper: linear scaling; the L-measure is far cheaper because
//! only O(n) per-series relationships exist.

use affinity_bench::{default_symex, fmt_secs, header, sensor, time, Scale};
use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_scape::ScapeIndex;

fn main() {
    let scale = Scale::from_env();
    header(
        "Fig. 14",
        "SCAPE index construction scalability, sensor-data",
        scale,
    );
    let data = sensor(scale);
    let n = data.series_count();
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "#series", "#relationships", "covariance", "mean"
    );
    let mut prev_cov = 0.0;
    for i in 1..=5usize {
        let sz = ((n as f64) * (i as f64 / 5.0).sqrt()).round() as usize;
        let slice = data.prefix(sz.max(8));
        let affine = default_symex().run(&slice).expect("symex");
        let (cov_idx, t_cov) = time(|| {
            ScapeIndex::build(
                &slice,
                &affine,
                &[Measure::Pairwise(PairwiseMeasure::Covariance)],
            )
        });
        let (_, t_mean) = time(|| {
            ScapeIndex::build(&slice, &affine, &[Measure::Location(LocationMeasure::Mean)])
        });
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            slice.series_count(),
            cov_idx.stats().pair_sequence_nodes,
            fmt_secs(t_cov),
            fmt_secs(t_mean)
        );
        prev_cov = t_cov.max(prev_cov);
    }
    println!(
        "\nshape check: covariance build grows ~linearly with relationships (largest {:.3}s);",
        prev_cov
    );
    println!("mean indexes only O(n) per-series relationships, so it stays near-constant (paper shows the same gap).");
}

//! Shared support for the AFFINITY benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper's
//! evaluation (Sec. 6) and prints the same rows/series the paper reports.
//! Absolute numbers reflect this machine, not the authors' 2013 testbed;
//! EXPERIMENTS.md records the shape comparison.
//!
//! Scale is controlled by the `AFFINITY_SCALE` environment variable:
//!
//! * `quick` (default) — minutes-long total run; reduced `n`/`m`;
//! * `mid` — closer to paper scale for the cheap experiments;
//! * `full` — the paper's exact dataset shapes (Table 3). Expect long
//!   runtimes for the naive baselines, exactly as the paper's absolute
//!   plots suggest.

#![deny(missing_docs)]
#![warn(clippy::all)]

use affinity_core::afclst::AfclstParams;
use affinity_core::symex::{Symex, SymexParams, SymexVariant};
use affinity_data::generator::{sensor_dataset, stock_dataset, SensorConfig, StockConfig};
use affinity_data::DataMatrix;
use std::time::Instant;

/// Benchmark scale, from `AFFINITY_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes; the default.
    Quick,
    /// Intermediate sizes.
    Mid,
    /// Paper-exact dataset shapes (Table 3).
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("AFFINITY_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("mid") => Scale::Mid,
            _ => Scale::Quick,
        }
    }

    /// Human-readable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Mid => "mid",
            Scale::Full => "full (paper Table 3 shapes)",
        }
    }
}

/// The sensor-data stand-in at the given scale.
pub fn sensor(scale: Scale) -> DataMatrix {
    let cfg = match scale {
        Scale::Quick => SensorConfig {
            series: 120,
            samples: 240,
            ..SensorConfig::default()
        },
        Scale::Mid => SensorConfig {
            series: 300,
            samples: 480,
            ..SensorConfig::default()
        },
        Scale::Full => SensorConfig::default(),
    };
    sensor_dataset(&cfg)
}

/// The stock-data stand-in at the given scale.
pub fn stock(scale: Scale) -> DataMatrix {
    let cfg = match scale {
        Scale::Quick => StockConfig {
            series: 160,
            samples: 390,
            ..StockConfig::default()
        },
        Scale::Mid => StockConfig {
            series: 400,
            samples: 780,
            ..StockConfig::default()
        },
        Scale::Full => StockConfig::default(),
    };
    stock_dataset(&cfg)
}

/// The paper's cluster sweep `k ∈ {6, 10, 14, 18, 22}` (Figs. 9–11).
pub const CLUSTER_SWEEP: [usize; 5] = [6, 10, 14, 18, 22];

/// Worker-lane count for the parallel phases, from `AFFINITY_THREADS`
/// (`0`/unset = `available_parallelism`) — the bench-side face of the
/// `threads` knob.
pub fn threads_from_env() -> usize {
    std::env::var("AFFINITY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// SYMEX parameters with the paper's evaluation defaults
/// (`γ_max = 10`, `δ_min = 10`), the given `k`, and the thread count
/// from [`threads_from_env`].
pub fn symex_params(k: usize, variant: SymexVariant) -> SymexParams {
    symex_params_threads(k, variant, threads_from_env())
}

/// [`symex_params`] with an explicit thread count (fig. 13's scaling
/// sweep drives this directly).
pub fn symex_params_threads(k: usize, variant: SymexVariant, threads: usize) -> SymexParams {
    SymexParams {
        afclst: AfclstParams {
            k,
            gamma_max: 10,
            delta_min: 10,
            seed: 0x00AF_F157,
        },
        variant,
        threads,
    }
}

/// A ready-made SYMEX+ runner with `k = 6` (the paper's operating point).
pub fn default_symex() -> Symex {
    Symex::new(symex_params(6, SymexVariant::Plus))
}

/// Time a closure, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Print a standard bench header.
pub fn header(id: &str, title: &str, scale: Scale) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("scale: {}", scale.tag());
    println!("================================================================");
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Pick thresholds hitting target result-set sizes: given all measure
/// values, return the value at each requested fraction of the sorted
/// order (descending result size for greater-than queries).
pub fn quantile_thresholds(values: &[f64], fractions: &[f64]) -> Vec<f64> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fractions
        .iter()
        .map(|f| {
            let idx = ((sorted.len() as f64 - 1.0) * (1.0 - f)).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_quick() {
        // Not setting the variable in-process; just exercise the default.
        assert_eq!(Scale::Quick.tag(), "quick");
        assert_eq!(Scale::Full.tag(), "full (paper Table 3 shapes)");
    }

    #[test]
    fn datasets_have_expected_quick_shapes() {
        let s = sensor(Scale::Quick);
        assert_eq!((s.series_count(), s.samples()), (120, 240));
        let k = stock(Scale::Quick);
        assert_eq!((k.series_count(), k.samples()), (160, 390));
    }

    #[test]
    fn quantile_thresholds_move_monotonically() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let taus = quantile_thresholds(&vals, &[0.1, 0.5, 0.9]);
        // Larger target fraction => smaller threshold for >-queries.
        assert!(taus[0] > taus[1] && taus[1] > taus[2]);
        let above = vals.iter().filter(|v| **v > taus[1]).count();
        assert!((40..=60).contains(&above), "{above}");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(2.5).ends_with('s'));
        assert!(fmt_secs(0.002).ends_with("ms"));
        assert!(fmt_secs(2e-5).ends_with("us"));
    }
}

/// Shared driver for the accuracy/efficiency tradeoff experiments
/// (Figs. 9, 10, 11): sweep `k`, compute every measure with `W_N` and
/// `W_A`, report times, speedups and %RMSE.
pub mod tradeoff {
    use super::*;
    use affinity_core::measures::{self, LocationMeasure, PairwiseMeasure};
    use affinity_core::mec::MecEngine;
    use affinity_core::rmse::percent_rmse;
    use affinity_core::symex::SymexVariant;

    /// One measured row of the sweep.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Cluster count `k`.
        pub k: usize,
        /// Measure name.
        pub measure: &'static str,
        /// `W_N` seconds.
        pub naive_secs: f64,
        /// `W_A` seconds (pre-processing share + reconstruction).
        pub affine_secs: f64,
        /// `naive_secs / affine_secs`.
        pub speedup: f64,
        /// %RMSE of Eq. 16.
        pub rmse: f64,
    }

    /// Run the sweep over the paper's `k` values (clamped to `n−1`).
    pub fn run(data: &DataMatrix) -> Vec<Row> {
        let mut rows = Vec::new();
        for &k in CLUSTER_SWEEP.iter() {
            let k = k.min(data.series_count().saturating_sub(1)).max(1);
            let symex = Symex::new(symex_params(k, SymexVariant::Plus));
            let affine = symex.run(data).expect("symex run");
            // W_A cost: engine construction (pivot statistics +
            // normalizers) is the paper's one-time pre-processing for
            // *pairwise* measures; L-measures only need the per-series
            // relationships already inside the AffineSet plus k centre
            // evaluations (timed inside location_all). Charge the engine
            // cost to the two pairwise panels.
            let (engine, prep_secs) = time(|| MecEngine::new(data, &affine));
            let prep_share = prep_secs / 2.0;

            for measure in [
                LocationMeasure::Mean,
                LocationMeasure::Median,
                LocationMeasure::Mode,
            ] {
                let (exact, naive_secs) = time(|| measures::location_all(measure, data));
                let (approx, wa_secs) = time(|| engine.location_all(measure));
                let affine_secs = wa_secs;
                rows.push(Row {
                    k,
                    measure: measure.name(),
                    naive_secs,
                    affine_secs,
                    speedup: naive_secs / affine_secs,
                    rmse: percent_rmse(&exact, &approx),
                });
            }
            for measure in [PairwiseMeasure::Covariance, PairwiseMeasure::DotProduct] {
                let (exact, naive_secs) = time(|| measures::pairwise_all(measure, data));
                let (approx, wa_secs) =
                    time(|| engine.pairwise_all(measure).expect("full affine set"));
                let affine_secs = wa_secs + prep_share;
                rows.push(Row {
                    k,
                    measure: measure.name(),
                    naive_secs,
                    affine_secs,
                    speedup: naive_secs / affine_secs,
                    rmse: percent_rmse(&exact, &approx),
                });
            }
        }
        rows
    }

    /// Print the sweep in the paper's per-measure panel layout.
    pub fn print(rows: &[Row], absolute: bool) {
        for measure in ["mean", "median", "mode", "covariance", "dot product"] {
            println!("\n--- {measure} ---");
            if absolute {
                println!("{:>4} {:>12} {:>12}", "k", "W_N", "W_A");
            } else {
                println!("{:>4} {:>10} {:>12}", "k", "speedup", "%RMSE");
            }
            for r in rows.iter().filter(|r| r.measure == measure) {
                if absolute {
                    println!(
                        "{:>4} {:>12} {:>12}",
                        r.k,
                        fmt_secs(r.naive_secs),
                        fmt_secs(r.affine_secs)
                    );
                } else {
                    println!("{:>4} {:>10.1}x {:>12.3e}", r.k, r.speedup, r.rmse);
                }
            }
        }
    }
}

//! Online MEC workload generation and execution (paper Sec. 6.2).
//!
//! Each query draws a statistical measure uniformly at random and 10
//! distinct series identifiers from a power-law distribution ("some
//! entities are popular as compared to others"), then asks for the
//! measure over that set — a vector for L-measures, a `10×10` matrix for
//! pairwise measures.

use crate::baselines::{AffineExecutor, NaiveExecutor};
use affinity_core::measures::Measure;
use affinity_data::{SeriesId, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One online MEC query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MecQuery {
    /// The measure to compute.
    pub measure: Measure,
    /// The distinct series identifiers it touches.
    pub ids: Vec<SeriesId>,
}

/// Workload generation parameters. Paper defaults: 10 ids per query,
/// power-law popularity.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// Distinct identifiers per query (paper: 10).
    pub ids_per_query: usize,
    /// Zipf exponent of the popularity distribution.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 1000,
            ids_per_query: 10,
            zipf_exponent: 1.0,
            seed: 0xAFF1_C0DE,
        }
    }
}

/// Generate a workload over `n` series.
///
/// # Panics
/// Panics if `ids_per_query > n` or `n == 0`.
pub fn generate(cfg: &WorkloadConfig, n: usize) -> Vec<MecQuery> {
    assert!(n > 0, "workload over empty data");
    assert!(
        cfg.ids_per_query <= n,
        "ids_per_query {} exceeds series count {n}",
        cfg.ids_per_query
    );
    let mut zipf = ZipfSampler::new(n, cfg.zipf_exponent, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    (0..cfg.queries)
        .map(|_| {
            let measure = Measure::ALL[rng.gen_range(0..Measure::ALL.len())];
            let ids = zipf.sample_distinct(cfg.ids_per_query);
            MecQuery { measure, ids }
        })
        .collect()
}

/// Execute a workload with the `W_N` executor; returns a checksum of all
/// produced values (prevents dead-code elimination in benches and lets
/// tests compare paths).
pub fn run_naive(executor: &NaiveExecutor<'_>, queries: &[MecQuery]) -> f64 {
    let mut acc = 0.0;
    for q in queries {
        match q.measure {
            Measure::Location(l) => {
                acc += executor.mec_location(l, &q.ids).iter().sum::<f64>();
            }
            Measure::Pairwise(p) => {
                let m = executor.mec_pairwise(p, &q.ids);
                acc += m.as_slice().iter().sum::<f64>();
            }
        }
    }
    acc
}

/// Execute a workload with the `W_A` executor; same checksum contract as
/// [`run_naive`].
pub fn run_affine(executor: &AffineExecutor<'_>, queries: &[MecQuery]) -> f64 {
    let mut acc = 0.0;
    for q in queries {
        match q.measure {
            Measure::Location(l) => {
                acc += executor.mec_location(l, &q.ids).iter().sum::<f64>();
            }
            Measure::Pairwise(p) => {
                let m = executor.mec_pairwise(p, &q.ids);
                acc += m.as_slice().iter().sum::<f64>();
            }
        }
    }
    acc
}

/// Popularity histogram of a workload (diagnostic; verifies the power-law
/// skew end to end).
pub fn popularity(queries: &[MecQuery], n: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n];
    for q in queries {
        for &id in &q.ids {
            counts[id] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let cfg = WorkloadConfig {
            queries: 200,
            ids_per_query: 5,
            zipf_exponent: 1.1,
            seed: 7,
        };
        let a = generate(&cfg, 50);
        let b = generate(&cfg, 50);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for q in &a {
            assert_eq!(q.ids.len(), 5);
            let mut s = q.ids.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 5, "distinct ids");
            assert!(s.iter().all(|&v| v < 50));
        }
    }

    #[test]
    fn measures_are_mixed() {
        let cfg = WorkloadConfig {
            queries: 600,
            ..Default::default()
        };
        let qs = generate(&cfg, 30);
        let location = qs
            .iter()
            .filter(|q| matches!(q.measure, Measure::Location(_)))
            .count();
        // Half the measure space is location measures; allow wide slack.
        assert!(
            location > 150 && location < 450,
            "location count {location}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = WorkloadConfig {
            queries: 500,
            ids_per_query: 3,
            zipf_exponent: 1.2,
            seed: 3,
        };
        let qs = generate(&cfg, 100);
        let pop = popularity(&qs, 100);
        let head: usize = pop[..10].iter().sum();
        let tail: usize = pop[50..].iter().sum();
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn naive_and_affine_checksums_are_close() {
        let data = sensor_dataset(&SensorConfig::reduced(20, 64));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        let wn = NaiveExecutor::new(&data);
        let wa = AffineExecutor::new(&data, &affine);
        let qs = generate(
            &WorkloadConfig {
                queries: 60,
                ids_per_query: 6,
                ..Default::default()
            },
            20,
        );
        let a = run_naive(&wn, &qs);
        let b = run_affine(&wa, &qs);
        // Approximation error exists (median/mode/correlation) but the
        // totals must be in the same ballpark.
        let rel = (a - b).abs() / a.abs().max(1.0);
        assert!(rel < 0.05, "checksum divergence {rel} ({a} vs {b})");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_ids_panics() {
        generate(
            &WorkloadConfig {
                ids_per_query: 100,
                ..Default::default()
            },
            10,
        );
    }
}

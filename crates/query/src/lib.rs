//! # affinity-query
//!
//! Query executors and workload generation for the AFFINITY evaluation
//! (paper Sec. 6). Three ways of answering the same MEC/MET/MER queries:
//!
//! * [`NaiveExecutor`] — the paper's `W_N`: every measure computed from
//!   the raw series;
//! * [`AffineExecutor`] — the paper's `W_A`: measures reconstructed from
//!   affine relationships via the [`affinity_core::mec::MecEngine`];
//! * [`DftExecutor`] — the paper's `W_F`: correlation (only) approximated
//!   from the five largest DFT coefficients.
//!
//! The SCAPE method of answering MET/MER queries lives in
//! [`affinity_scape`]; benchmarks compare all four.
//!
//! [`workload`] generates the online MEC workloads of Sec. 6.2
//! (power-law-popular series, uniformly mixed measures).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod baselines;
pub mod workload;

pub use baselines::{AffineExecutor, DftExecutor, NaiveExecutor};
pub use workload::{MecQuery, WorkloadConfig};

//! The `W_N`, `W_A` and `W_F` query execution strategies of the paper's
//! evaluation (Sec. 6), sharing one query surface so benchmarks compare
//! like with like.

use affinity_core::measures::{self, LocationMeasure, PairwiseMeasure};
use affinity_core::mec::MecEngine;
use affinity_core::symex::AffineSet;
use affinity_data::{DataMatrix, SequencePair, SeriesId};
use affinity_dft::DftSketch;
use affinity_linalg::Matrix;
use affinity_scape::ThresholdOp;

#[inline]
fn keep(op: ThresholdOp, value: f64, tau: f64) -> bool {
    match op {
        ThresholdOp::Greater => value > tau,
        ThresholdOp::Less => value < tau,
    }
}

/// `W_N`: compute every measure from the raw series, then filter.
pub struct NaiveExecutor<'a> {
    data: &'a DataMatrix,
}

impl<'a> NaiveExecutor<'a> {
    /// Wrap a data matrix.
    pub fn new(data: &'a DataMatrix) -> Self {
        NaiveExecutor { data }
    }

    /// MEC: location measure for a set of identifiers.
    pub fn mec_location(&self, measure: LocationMeasure, ids: &[SeriesId]) -> Vec<f64> {
        ids.iter()
            .map(|&v| measures::location(measure, self.data.series(v)))
            .collect()
    }

    /// MEC: pairwise measure matrix for a set of identifiers.
    pub fn mec_pairwise(&self, measure: PairwiseMeasure, ids: &[SeriesId]) -> Matrix {
        let q = ids.len();
        let mut out = Matrix::zeros(q, q);
        for i in 0..q {
            out.set(
                i,
                i,
                measures::pairwise_self(measure, self.data.series(ids[i])),
            );
            for j in i + 1..q {
                let v =
                    measures::pairwise(measure, self.data.series(ids[i]), self.data.series(ids[j]));
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    /// MET over sequence pairs.
    pub fn met_pairs(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Vec<SequencePair> {
        let values = measures::pairwise_all(measure, self.data);
        self.data
            .sequence_pairs()
            .into_iter()
            .zip(values)
            .filter_map(|(p, v)| keep(op, v, tau).then_some(p))
            .collect()
    }

    /// MER over sequence pairs (`τ_l < value < τ_u`).
    pub fn mer_pairs(&self, measure: PairwiseMeasure, tau_l: f64, tau_u: f64) -> Vec<SequencePair> {
        let values = measures::pairwise_all(measure, self.data);
        self.data
            .sequence_pairs()
            .into_iter()
            .zip(values)
            .filter_map(|(p, v)| (tau_l < v && v < tau_u).then_some(p))
            .collect()
    }

    /// MET over series (L-measures).
    pub fn met_series(&self, measure: LocationMeasure, op: ThresholdOp, tau: f64) -> Vec<SeriesId> {
        (0..self.data.series_count())
            .filter(|&v| keep(op, measures::location(measure, self.data.series(v)), tau))
            .collect()
    }

    /// MER over series.
    pub fn mer_series(&self, measure: LocationMeasure, tau_l: f64, tau_u: f64) -> Vec<SeriesId> {
        (0..self.data.series_count())
            .filter(|&v| {
                let x = measures::location(measure, self.data.series(v));
                tau_l < x && x < tau_u
            })
            .collect()
    }
}

/// `W_A`: answer every query through affine relationships.
pub struct AffineExecutor<'a> {
    engine: MecEngine<'a>,
    data: &'a DataMatrix,
}

impl<'a> AffineExecutor<'a> {
    /// Build over a data matrix and its affine set (runs the MEC
    /// pre-processing step).
    pub fn new(data: &'a DataMatrix, affine: &'a AffineSet) -> Self {
        AffineExecutor {
            engine: MecEngine::new(data, affine),
            data,
        }
    }

    /// Access the underlying MEC engine.
    pub fn engine(&self) -> &MecEngine<'a> {
        &self.engine
    }

    /// MEC: location measure for a set of identifiers.
    ///
    /// # Panics
    /// Panics on out-of-range identifiers.
    pub fn mec_location(&self, measure: LocationMeasure, ids: &[SeriesId]) -> Vec<f64> {
        self.engine.location(measure, ids).expect("ids in range")
    }

    /// MEC: pairwise measure matrix for a set of identifiers.
    ///
    /// # Panics
    /// Panics on out-of-range identifiers (full sets cannot miss pairs).
    pub fn mec_pairwise(&self, measure: PairwiseMeasure, ids: &[SeriesId]) -> Matrix {
        self.engine
            .pairwise(measure, ids)
            .expect("ids in range and full set")
    }

    /// MET over sequence pairs.
    pub fn met_pairs(
        &self,
        measure: PairwiseMeasure,
        op: ThresholdOp,
        tau: f64,
    ) -> Vec<SequencePair> {
        self.data
            .sequence_pairs()
            .into_iter()
            .filter(|&p| {
                keep(
                    op,
                    self.engine.pair_value(measure, p).expect("full set"),
                    tau,
                )
            })
            .collect()
    }

    /// MER over sequence pairs.
    pub fn mer_pairs(&self, measure: PairwiseMeasure, tau_l: f64, tau_u: f64) -> Vec<SequencePair> {
        self.data
            .sequence_pairs()
            .into_iter()
            .filter(|&p| {
                let v = self.engine.pair_value(measure, p).expect("full set");
                tau_l < v && v < tau_u
            })
            .collect()
    }

    /// MET over series.
    pub fn met_series(&self, measure: LocationMeasure, op: ThresholdOp, tau: f64) -> Vec<SeriesId> {
        (0..self.data.series_count())
            .filter(|&v| {
                keep(
                    op,
                    self.engine.location_value(measure, v).expect("in range"),
                    tau,
                )
            })
            .collect()
    }

    /// MER over series.
    pub fn mer_series(&self, measure: LocationMeasure, tau_l: f64, tau_u: f64) -> Vec<SeriesId> {
        (0..self.data.series_count())
            .filter(|&v| {
                let x = self.engine.location_value(measure, v).expect("in range");
                tau_l < x && x < tau_u
            })
            .collect()
    }
}

/// `W_F`: the DFT-sketch baseline of refs [1–3] — correlation only, which
/// is exactly the limitation the paper calls out.
pub struct DftExecutor {
    sketches: Vec<DftSketch>,
}

/// Number of retained coefficients used by the paper's `W_F` ("the five
/// largest DFT coefficients").
pub const WF_COEFFICIENTS: usize = 5;

impl DftExecutor {
    /// Build sketches for every series (the `W_F` setup cost).
    pub fn new(data: &DataMatrix) -> Self {
        Self::with_coefficients(data, WF_COEFFICIENTS)
    }

    /// Build with a custom sketch size (for ablations).
    pub fn with_coefficients(data: &DataMatrix, k: usize) -> Self {
        let sketches = (0..data.series_count())
            .map(|v| DftSketch::build(data.series(v), k))
            .collect();
        DftExecutor { sketches }
    }

    /// Number of series sketched.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// `true` if no series were sketched.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Approximate correlation of a pair.
    pub fn correlation(&self, pair: SequencePair) -> f64 {
        self.sketches[pair.u].correlation(&self.sketches[pair.v])
    }

    /// MET over sequence pairs (correlation only).
    pub fn met_pairs(&self, op: ThresholdOp, tau: f64) -> Vec<SequencePair> {
        let n = self.sketches.len();
        let mut out = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                let pair = SequencePair { u, v };
                if keep(op, self.correlation(pair), tau) {
                    out.push(pair);
                }
            }
        }
        out
    }

    /// MER over sequence pairs (correlation only).
    pub fn mer_pairs(&self, tau_l: f64, tau_u: f64) -> Vec<SequencePair> {
        let n = self.sketches.len();
        let mut out = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                let pair = SequencePair { u, v };
                let c = self.correlation(pair);
                if tau_l < c && c < tau_u {
                    out.push(pair);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_core::prelude::*;
    use affinity_core::rmse::percent_rmse;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn fixture(n: usize, m: usize) -> (DataMatrix, AffineSet) {
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        let affine = Symex::new(SymexParams::default()).run(&data).unwrap();
        (data, affine)
    }

    #[test]
    fn naive_and_affine_agree_on_exact_measures() {
        let (data, affine) = fixture(14, 64);
        let wn = NaiveExecutor::new(&data);
        let wa = AffineExecutor::new(&data, &affine);
        let ids = vec![0, 3, 6, 9];
        // Mean and dot product are exact under affine propagation.
        let n_mean = wn.mec_location(LocationMeasure::Mean, &ids);
        let a_mean = wa.mec_location(LocationMeasure::Mean, &ids);
        assert!(percent_rmse(&n_mean, &a_mean) < 1e-8);
        let n_dot = wn.mec_pairwise(PairwiseMeasure::DotProduct, &ids);
        let a_dot = wa.mec_pairwise(PairwiseMeasure::DotProduct, &ids);
        assert!(n_dot.max_abs_diff(&a_dot) < 1e-5 * n_dot.frobenius_norm().max(1.0));
    }

    #[test]
    fn met_results_of_wn_and_wa_overlap_heavily() {
        let (data, affine) = fixture(16, 64);
        let wn = NaiveExecutor::new(&data);
        let wa = AffineExecutor::new(&data, &affine);
        let a: std::collections::BTreeSet<_> = wn
            .met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.8)
            .into_iter()
            .collect();
        let b: std::collections::BTreeSet<_> = wa
            .met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.8)
            .into_iter()
            .collect();
        let inter = a.intersection(&b).count();
        let union = a.union(&b).count().max(1);
        assert!(
            inter as f64 / union as f64 > 0.8,
            "Jaccard {} ({} vs {})",
            inter as f64 / union as f64,
            a.len(),
            b.len()
        );
    }

    #[test]
    fn met_and_mer_are_consistent() {
        let (data, _) = fixture(12, 48);
        let wn = NaiveExecutor::new(&data);
        // value > lo and value < hi iff in range (exclusive).
        let lo = 0.2;
        let hi = 0.9;
        let gt: std::collections::BTreeSet<_> = wn
            .met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, lo)
            .into_iter()
            .collect();
        let lt: std::collections::BTreeSet<_> = wn
            .met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Less, hi)
            .into_iter()
            .collect();
        let range: std::collections::BTreeSet<_> = wn
            .mer_pairs(PairwiseMeasure::Correlation, lo, hi)
            .into_iter()
            .collect();
        let expected: std::collections::BTreeSet<_> = gt.intersection(&lt).cloned().collect();
        assert_eq!(range, expected);
    }

    #[test]
    fn series_level_queries() {
        let (data, affine) = fixture(10, 48);
        let wn = NaiveExecutor::new(&data);
        let wa = AffineExecutor::new(&data, &affine);
        let means = wn.mec_location(LocationMeasure::Mean, &(0..10).collect::<Vec<_>>());
        let mid = means.iter().sum::<f64>() / means.len() as f64;
        let a = wn.met_series(LocationMeasure::Mean, ThresholdOp::Greater, mid);
        let b = wa.met_series(LocationMeasure::Mean, ThresholdOp::Greater, mid);
        assert_eq!(a, b, "mean is exact under affine propagation");
        let r1 = wn.mer_series(LocationMeasure::Mean, mid - 1.0, mid + 1.0);
        let r2 = wa.mer_series(LocationMeasure::Mean, mid - 1.0, mid + 1.0);
        assert_eq!(r1, r2);
    }

    #[test]
    fn wf_tracks_exact_correlation_on_smooth_data() {
        let (data, _) = fixture(12, 128);
        let wf = DftExecutor::new(&data);
        assert_eq!(wf.len(), 12);
        let wn = NaiveExecutor::new(&data);
        let exact: Vec<f64> = data
            .sequence_pairs()
            .iter()
            .map(|&p| measures::correlation(data.series(p.u), data.series(p.v)))
            .collect();
        let approx: Vec<f64> = data
            .sequence_pairs()
            .iter()
            .map(|&p| wf.correlation(p))
            .collect();
        let err = percent_rmse(&exact, &approx);
        assert!(err < 20.0, "WF %RMSE {err}");
        // Threshold queries should broadly agree with WN on extreme taus.
        let a = wn.met_pairs(PairwiseMeasure::Correlation, ThresholdOp::Greater, 0.95);
        let b = wf.met_pairs(ThresholdOp::Greater, 0.95);
        // WF misses some borderline pairs; it must not hallucinate a
        // majority of extras.
        assert!(b.len() <= a.len() * 2 + 4);
        let r = wf.mer_pairs(-0.5, 0.5);
        assert!(r.len() <= data.pair_count());
    }

    #[test]
    fn wf_custom_sketch_size_improves_fidelity() {
        let (data, _) = fixture(10, 128);
        let exact: Vec<f64> = data
            .sequence_pairs()
            .iter()
            .map(|&p| measures::correlation(data.series(p.u), data.series(p.v)))
            .collect();
        let small = DftExecutor::with_coefficients(&data, 2);
        let large = DftExecutor::with_coefficients(&data, 32);
        let err_small = percent_rmse(
            &exact,
            &data
                .sequence_pairs()
                .iter()
                .map(|&p| small.correlation(p))
                .collect::<Vec<_>>(),
        );
        let err_large = percent_rmse(
            &exact,
            &data
                .sequence_pairs()
                .iter()
                .map(|&p| large.correlation(p))
                .collect::<Vec<_>>(),
        );
        assert!(
            err_large <= err_small + 1e-9,
            "more coefficients should not hurt: {err_large} vs {err_small}"
        );
    }
}

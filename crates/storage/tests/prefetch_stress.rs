//! Randomized concurrency stress for the [`CachedStore`] prefetcher:
//! consumer reads, pins/unpins, and prefetch announcements race each
//! other (and the background worker) across threads over a
//! latency-injecting backing, asserting the three invariants the
//! design promises:
//!
//! 1. **No pinned-column eviction** — once a pin has loaded a column,
//!    the backing store sees no further read of it until the unpin
//!    (observed through the [`SlowSource`] per-column read counters,
//!    which are race-free observables, unlike the global hit/miss
//!    counters other lanes mutate concurrently).
//! 2. **No double decode** — two readers (consumer lanes or the
//!    worker) never fetch the same column from the backing at the same
//!    time; the in-flight registry makes the second one wait. Observed
//!    by the [`SlowSource`] same-column overlap detector.
//! 3. **Stats consistency** — every fetch is byte-correct and
//!    classified, and once quiesced the prefetcher's ledger balances:
//!    `issued == hits + wasted + still-resident-unconsumed`.

use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_data::slow::SlowSource;
use affinity_data::{DataMatrix, SeriesSource};
use affinity_storage::CachedStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

type StressCache = CachedStore<SlowSource<DataMatrix>>;

/// Shared body of the two timing regimes below. Capacity and pin
/// pressure are chosen so a pin can always be admitted (at most 4 of
/// the 5 slots are ever pinned at once), keeping the pin-residency
/// invariant unconditional.
fn run_races(cached: &StressCache, data: &DataMatrix, n: usize, reads: &AtomicU64) {
    std::thread::scope(|s| {
        // Lane 0: pin a column, verify the backing never sees it again
        // until the unpin, release, repeat elsewhere.
        s.spawn(|| {
            let mut buf = Vec::new();
            let mut rng = StdRng::seed_from_u64(0xA11);
            for round in 0..40 {
                let p = rng.gen_range(0..n);
                cached.pin(p);
                let loads_at_pin = cached.store().reads_of(p);
                for _ in 0..20 {
                    let got = cached.read_into(p, &mut buf).unwrap();
                    assert!(bits_eq(got, data.series(p)), "round {round}: pinned data");
                    reads.fetch_add(1, Ordering::Relaxed);
                    std::thread::yield_now();
                }
                assert_eq!(
                    cached.store().reads_of(p),
                    loads_at_pin,
                    "round {round}: pinned column {p} went back to the backing"
                );
                cached.unpin(p);
            }
        });
        // Lanes 1..4: random reads + ascending announcements (the shape
        // the kernels announce) + transient pins, all racing the worker
        // and each other.
        for lane in 1..4u64 {
            s.spawn(move || {
                let mut buf = Vec::new();
                let mut rng = StdRng::seed_from_u64(lane * 7919);
                for _ in 0..400 {
                    match rng.gen_range(0..10) {
                        0 | 1 => {
                            let start = rng.gen_range(0..n as u32);
                            let len = rng.gen_range(1..8u32).min(n as u32 - start);
                            let seq: Vec<u32> = (start..start + len).collect();
                            cached.prefetch(&seq);
                        }
                        2 => {
                            let p = rng.gen_range(0..n);
                            cached.pin(p);
                            let loads_at_pin = cached.store().reads_of(p);
                            let got = cached.read_into(p, &mut buf).unwrap();
                            assert!(bits_eq(got, data.series(p)));
                            assert_eq!(cached.store().reads_of(p), loads_at_pin);
                            reads.fetch_add(1, Ordering::Relaxed);
                            cached.unpin(p);
                        }
                        _ => {
                            let v = rng.gen_range(0..n);
                            let got = cached.read_into(v, &mut buf).unwrap();
                            assert!(bits_eq(got, data.series(v)), "column {v}");
                            reads.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
}

fn check_ledger(cached: &StressCache, reads: &AtomicU64) {
    cached.quiesce();
    let stats = cached.stats();
    // Every read_into was classified hit-or-miss exactly once; pins
    // that had to load also count one miss each, hence `>=`.
    assert!(
        stats.hits + stats.misses >= reads.load(Ordering::Relaxed),
        "fetch classification lost reads: {stats:?}"
    );
    // The prefetcher's ledger balances after quiescing.
    assert_eq!(
        stats.prefetch.issued,
        stats.prefetch.hits + stats.prefetch.wasted + cached.prefetched_unconsumed() as u64,
        "prefetch ledger: {stats:?}"
    );
    // The in-flight registry prevented every double decode.
    assert!(
        !cached.store().same_column_overlap(),
        "two concurrent reads of the same column reached the backing"
    );
}

/// Latency regime: a 50 µs per-request delay widens every race window
/// (a fetch is slow relative to the bookkeeping), so the worker is
/// usually mid-fetch when consumers arrive.
#[test]
fn randomized_prefetch_races_with_latency() {
    let n = 24;
    let data = sensor_dataset(&SensorConfig::reduced(n, 64));
    let slow = SlowSource::new(data.clone(), Duration::from_micros(50));
    let cached = CachedStore::with_prefetch(slow, 5, 3);
    let reads = AtomicU64::new(0);
    run_races(&cached, &data, n, &reads);
    check_ledger(&cached, &reads);
    let stats = cached.stats();
    assert!(
        stats.prefetch.issued > 0,
        "announcements must have driven the worker: {stats:?}"
    );
}

/// Zero-delay regime: consumers always outrun the worker, exercising
/// the opposite interleavings (stale plan entries, worker skipping
/// columns consumers already fetched).
#[test]
fn randomized_prefetch_races_without_latency() {
    let n = 24;
    let data = sensor_dataset(&SensorConfig::reduced(n, 64));
    let slow = SlowSource::new(data.clone(), Duration::ZERO);
    let cached = CachedStore::with_prefetch(slow, 5, 3);
    let reads = AtomicU64::new(0);
    run_races(&cached, &data, n, &reads);
    check_ledger(&cached, &reads);
}

/// The pinned-residency invariant under direct adversarial pressure:
/// the main thread holds two pins while a second thread announces the
/// whole store and reads randomly, forcing constant prefetch and
/// eviction traffic through the remaining slots.
#[test]
fn pins_always_survive_prefetch_pressure() {
    let n = 20;
    let data = sensor_dataset(&SensorConfig::reduced(n, 48));
    let slow = SlowSource::new(data.clone(), Duration::from_micros(20));
    let cached = CachedStore::with_prefetch(slow, 4, 3);
    let mut buf = Vec::new();
    cached.pin(3);
    cached.pin(7);
    let loads = [cached.store().reads_of(3), cached.store().reads_of(7)];
    std::thread::scope(|s| {
        let cached = &cached;
        s.spawn(move || {
            let all: Vec<u32> = (0..n as u32).collect();
            let mut buf = Vec::new();
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..300 {
                cached.prefetch(&all);
                let v = rng.gen_range(0..n);
                cached.read_into(v, &mut buf).unwrap();
            }
        });
        // Meanwhile the pinned columns must never leave memory.
        for _ in 0..300 {
            for (p, at_pin) in [3usize, 7].into_iter().zip(loads) {
                let got = cached.read_into(p, &mut buf).unwrap();
                assert!(bits_eq(got, data.series(p)));
                assert_eq!(
                    cached.store().reads_of(p),
                    at_pin,
                    "pinned column {p} was evicted"
                );
            }
        }
    });
    cached.unpin(3);
    cached.unpin(7);
    assert!(!cached.store().same_column_overlap());
    cached.quiesce();
    let stats = cached.stats();
    assert_eq!(
        stats.prefetch.issued,
        stats.prefetch.hits + stats.prefetch.wasted + cached.prefetched_unconsumed() as u64,
        "prefetch ledger: {stats:?}"
    );
}

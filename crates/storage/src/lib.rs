//! # affinity-storage
//!
//! Columnar binary storage for time-series data matrices — the
//! `data_matrix` table of the paper's architecture figure (Fig. 2).
//!
//! The on-disk layout is column-oriented because AFFINITY's access
//! pattern is whole-series scans: AFCLST, SYMEX and the measure kernels
//! all stream one series at a time. Each column chunk carries its own
//! CRC32 so partial writes and bit rot are detected at read time, and
//! single series can be read without touching the rest of the file.
//!
//! Both [`MatrixStore`] and the LRU-bounded [`CachedStore`] implement
//! [`affinity_data::SeriesSource`], so the whole model-construction
//! pipeline (AFCLST → SYMEX → MEC/SCAPE) can stream columns from disk
//! without ever materializing the `n·m` matrix — see
//! `ARCHITECTURE.md` at the repository root for the data-flow picture.
//!
//! The crate also houses the crash-safe persistence primitives built
//! on the same CRC/header-validation discipline: the atomic
//! [`SnapshotWriter`]/[`Snapshot`] section container, the append-only
//! [`JournalWriter`] delta journal with torn-tail recovery, and the
//! [`failpoint`] fault-injection layer the crash-matrix suite uses to
//! script power cuts, short writes and bit rot.
//!
//! ```no_run
//! use affinity_data::generator::{sensor_dataset, SensorConfig};
//! use affinity_storage::MatrixStore;
//!
//! let data = sensor_dataset(&SensorConfig::reduced(8, 32));
//! MatrixStore::create("sensors.afn", &data).unwrap();
//! let store = MatrixStore::open("sensors.afn").unwrap();
//! let series3 = store.read_series(3).unwrap();
//! assert_eq!(series3, data.series(3));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod cache;
pub mod crc;
pub mod failpoint;
pub mod journal;
mod layout;
pub mod prefetch;
mod snapshot;
mod store;

pub use cache::{CacheStats, CachedStore};
pub use failpoint::{CommitFault, FailMode, FailpointWriter};
pub use journal::{replay, JournalReplay, JournalWriter};
pub use prefetch::PrefetchStats;
pub use snapshot::{staged_path, PersistError, Snapshot, SnapshotWriter, SNAPSHOT_VERSION};
pub use store::{MatrixStore, StorageError, FORMAT_VERSION};

//! The matrix store file format and reader/writer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   8 bytes  "AFNSTORE"
//! version u32
//! samples u64      (m)
//! series  u64      (n)
//! labels  n × (u32 length + utf8 bytes), crc32 over the whole block
//! columns n × (m × f64 + u32 crc32 of the column bytes)
//! ```
//!
//! Columns are fixed-size, so series `v` lives at a computable offset —
//! random access without an index block.

use crate::crc::{crc32, Crc32};
use affinity_data::DataMatrix;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"AFNSTORE";

/// Errors raised by the matrix store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// A checksum did not match; carries a description of the block.
    ChecksumMismatch(String),
    /// A series index outside `0..n`.
    SeriesOutOfRange {
        /// Requested index.
        requested: usize,
        /// Stored series count.
        available: usize,
    },
    /// Structurally invalid file (truncated, bad label encoding, …).
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not an AFNSTORE file"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::ChecksumMismatch(what) => write!(f, "checksum mismatch in {what}"),
            StorageError::SeriesOutOfRange {
                requested,
                available,
            } => write!(f, "series {requested} out of range ({available} stored)"),
            StorageError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// A read handle on a stored data matrix.
#[derive(Debug)]
pub struct MatrixStore {
    path: PathBuf,
    samples: usize,
    series: usize,
    labels: Vec<String>,
    /// Byte offset of the first column chunk.
    columns_start: u64,
}

impl MatrixStore {
    /// Serialize a data matrix to `path` (overwrites).
    ///
    /// # Errors
    /// I/O failures.
    pub fn create<P: AsRef<Path>>(path: P, data: &DataMatrix) -> Result<(), StorageError> {
        let f = File::create(path.as_ref())?;
        let mut w = BufWriter::new(f);
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(data.samples() as u64).to_le_bytes())?;
        w.write_all(&(data.series_count() as u64).to_le_bytes())?;
        // Label block with trailing crc.
        let mut label_block = Vec::new();
        for v in 0..data.series_count() {
            let bytes = data.label(v).as_bytes();
            label_block.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            label_block.extend_from_slice(bytes);
        }
        w.write_all(&(label_block.len() as u64).to_le_bytes())?;
        w.write_all(&label_block)?;
        w.write_all(&crc32(&label_block).to_le_bytes())?;
        // Column chunks.
        let mut buf = Vec::with_capacity(data.samples() * 8);
        for v in 0..data.series_count() {
            buf.clear();
            for x in data.series(v) {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
            w.write_all(&crc32(&buf).to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Open a store and parse its header and labels.
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        let f = File::open(path.as_ref())?;
        let mut r = BufReader::new(f);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let samples = read_u64(&mut r)? as usize;
        let series = read_u64(&mut r)? as usize;
        if samples == 0 || series == 0 {
            return Err(StorageError::Corrupt("zero dimensions".into()));
        }
        let label_len = read_u64(&mut r)? as usize;
        let mut label_block = vec![0u8; label_len];
        r.read_exact(&mut label_block)?;
        let stored_crc = read_u32(&mut r)?;
        if crc32(&label_block) != stored_crc {
            return Err(StorageError::ChecksumMismatch("label block".into()));
        }
        let mut labels = Vec::with_capacity(series);
        let mut cursor = 0usize;
        for i in 0..series {
            if cursor + 4 > label_block.len() {
                return Err(StorageError::Corrupt(format!("label {i} truncated")));
            }
            let len =
                u32::from_le_bytes(label_block[cursor..cursor + 4].try_into().unwrap()) as usize;
            cursor += 4;
            if cursor + len > label_block.len() {
                return Err(StorageError::Corrupt(format!("label {i} truncated")));
            }
            let s = std::str::from_utf8(&label_block[cursor..cursor + len])
                .map_err(|_| StorageError::Corrupt(format!("label {i} not utf-8")))?;
            labels.push(s.to_string());
            cursor += len;
        }
        if cursor != label_block.len() {
            return Err(StorageError::Corrupt(
                "trailing bytes in label block".into(),
            ));
        }
        let columns_start = 8 + 4 + 8 + 8 + 8 + label_len as u64 + 4;
        Ok(MatrixStore {
            path: path.as_ref().to_path_buf(),
            samples,
            series,
            labels,
            columns_start,
        })
    }

    /// Samples per series (`m`).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of stored series (`n`).
    pub fn series_count(&self) -> usize {
        self.series
    }

    /// Stored labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Read one series, verifying its checksum.
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn read_series(&self, v: usize) -> Result<Vec<f64>, StorageError> {
        if v >= self.series {
            return Err(StorageError::SeriesOutOfRange {
                requested: v,
                available: self.series,
            });
        }
        let chunk = self.samples as u64 * 8 + 4;
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(self.columns_start + v as u64 * chunk))?;
        let mut buf = vec![0u8; self.samples * 8];
        f.read_exact(&mut buf)?;
        let stored_crc = {
            let mut b = [0u8; 4];
            f.read_exact(&mut b)?;
            u32::from_le_bytes(b)
        };
        if crc32(&buf) != stored_crc {
            return Err(StorageError::ChecksumMismatch(format!("series {v}")));
        }
        Ok(buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read the whole matrix back, verifying every chunk.
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn read_all(&self) -> Result<DataMatrix, StorageError> {
        let mut f = BufReader::new(File::open(&self.path)?);
        f.seek(SeekFrom::Start(self.columns_start))?;
        let mut columns = Vec::with_capacity(self.series);
        let mut buf = vec![0u8; self.samples * 8];
        for v in 0..self.series {
            f.read_exact(&mut buf)?;
            let mut crcb = [0u8; 4];
            f.read_exact(&mut crcb)?;
            let mut h = Crc32::new();
            h.update(&buf);
            if h.finalize() != u32::from_le_bytes(crcb) {
                return Err(StorageError::ChecksumMismatch(format!("series {v}")));
            }
            columns.push(
                buf.chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            );
        }
        let mut dm = DataMatrix::from_series(columns);
        dm.set_labels(self.labels.clone());
        Ok(dm)
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StorageError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StorageError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("affinity-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_whole_matrix() {
        let data = sensor_dataset(&SensorConfig::reduced(6, 40));
        let path = tmp("roundtrip.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert_eq!(store.samples(), 40);
        assert_eq!(store.series_count(), 6);
        let back = store.read_all().unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_access_single_series() {
        let data = sensor_dataset(&SensorConfig::reduced(9, 24));
        let path = tmp("random.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        for v in [0usize, 4, 8] {
            assert_eq!(store.read_series(v).unwrap(), data.series(v));
        }
        assert!(matches!(
            store.read_series(9),
            Err(StorageError::SeriesOutOfRange { requested: 9, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_survive() {
        let mut data = sensor_dataset(&SensorConfig::reduced(3, 8));
        data.set_labels(vec!["α-temp".into(), "β-hum".into(), "γ".into()]);
        let path = tmp("labels.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert_eq!(store.labels()[0], "α-temp");
        assert_eq!(store.read_all().unwrap().label(1), "β-hum");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let data = sensor_dataset(&SensorConfig::reduced(4, 16));
        let path = tmp("corrupt.afn");
        MatrixStore::create(&path, &data).unwrap();
        // Flip one byte inside the third column chunk.
        let mut bytes = std::fs::read(&path).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let offset = store.columns_start as usize + 2 * (16 * 8 + 4) + 7;
        bytes[offset] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert!(store.read_series(0).is_ok());
        assert!(matches!(
            store.read_series(2),
            Err(StorageError::ChecksumMismatch(_))
        ));
        assert!(matches!(
            store.read_all(),
            Err(StorageError::ChecksumMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version() {
        let path = tmp("magic.afn");
        std::fs::write(&path, b"NOTAFILE________").unwrap();
        assert!(matches!(
            MatrixStore::open(&path),
            Err(StorageError::BadMagic)
        ));
        // Valid magic, bogus version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MatrixStore::open(&path),
            Err(StorageError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_panicky() {
        let data = sensor_dataset(&SensorConfig::reduced(4, 16));
        let path = tmp("trunc.afn");
        MatrixStore::create(&path, &data).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        match store.read_all() {
            Err(StorageError::Io(_)) | Err(StorageError::ChecksumMismatch(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        let e = StorageError::ChecksumMismatch("series 3".into());
        assert!(e.to_string().contains("series 3"));
        assert!(StorageError::BadMagic.to_string().contains("AFNSTORE"));
    }
}

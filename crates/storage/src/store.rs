//! The matrix store file format and reader/writer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   8 bytes  "AFNSTORE"
//! version u32
//! samples u64      (m)
//! series  u64      (n)
//! labels  n × (u32 length + utf8 bytes), crc32 over the whole block
//! columns n × (m × f64 + u32 crc32 of the column bytes)
//! ```
//!
//! Columns are fixed-size, so series `v` lives at a computable offset —
//! random access without an index block.

use crate::crc::{crc32, Crc32};
use crate::layout::{le_f64, le_u32, SizeCheck};
use affinity_data::{ColumnRead, DataMatrix, SeriesSource, SourceError};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"AFNSTORE";

/// Errors raised by the matrix store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// Unsupported format version.
    UnsupportedVersion(u32),
    /// A checksum did not match; carries a description of the block.
    ChecksumMismatch(String),
    /// A series index outside `0..n`.
    SeriesOutOfRange {
        /// Requested index.
        requested: usize,
        /// Stored series count.
        available: usize,
    },
    /// Structurally invalid file (truncated, bad label encoding, …).
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not an AFNSTORE file"),
            StorageError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::ChecksumMismatch(what) => write!(f, "checksum mismatch in {what}"),
            StorageError::SeriesOutOfRange {
                requested,
                available,
            } => write!(f, "series {requested} out of range ({available} stored)"),
            StorageError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// The [`SeriesSource`] view of a storage failure: bad indices map to
/// [`SourceError::OutOfRange`], everything else (I/O, checksum,
/// corruption) to [`SourceError::Backend`]. Shared by every source in
/// this crate.
impl From<StorageError> for SourceError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::SeriesOutOfRange {
                requested,
                available,
            } => SourceError::OutOfRange {
                requested,
                available,
            },
            other => SourceError::Backend(other.to_string()),
        }
    }
}

/// A read handle on a stored data matrix.
#[derive(Debug)]
pub struct MatrixStore {
    path: PathBuf,
    samples: usize,
    series: usize,
    labels: Vec<String>,
    /// Byte offset of the first column chunk.
    columns_start: u64,
}

impl MatrixStore {
    /// Serialize a data matrix to `path` (overwrites).
    ///
    /// ```
    /// use affinity_data::generator::{sensor_dataset, SensorConfig};
    /// use affinity_storage::MatrixStore;
    ///
    /// let path = std::env::temp_dir().join("affinity-create-doc.afn");
    /// let data = sensor_dataset(&SensorConfig::reduced(5, 24));
    /// MatrixStore::create(&path, &data).unwrap();
    /// let back = MatrixStore::open(&path).unwrap().read_all().unwrap();
    /// assert_eq!(back, data);
    /// # std::fs::remove_file(&path).ok();
    /// ```
    ///
    /// # Errors
    /// I/O failures.
    pub fn create<P: AsRef<Path>>(path: P, data: &DataMatrix) -> Result<(), StorageError> {
        let f = File::create(path.as_ref())?;
        let mut w = BufWriter::new(f);
        w.write_all(MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        w.write_all(&(data.samples() as u64).to_le_bytes())?;
        w.write_all(&(data.series_count() as u64).to_le_bytes())?;
        // Label block with trailing crc.
        let mut label_block = Vec::new();
        for v in 0..data.series_count() {
            let bytes = data.label(v).as_bytes();
            label_block.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            label_block.extend_from_slice(bytes);
        }
        w.write_all(&(label_block.len() as u64).to_le_bytes())?;
        w.write_all(&label_block)?;
        w.write_all(&crc32(&label_block).to_le_bytes())?;
        // Column chunks.
        let mut buf = Vec::with_capacity(data.samples() * 8);
        for v in 0..data.series_count() {
            buf.clear();
            for x in data.series(v) {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
            w.write_all(&crc32(&buf).to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Open a store and parse its header and labels.
    ///
    /// The header's dimensions are validated against the file's actual
    /// size *before* any size-dependent allocation, so a corrupted
    /// length field (absurd `samples`, `series` or label-block length)
    /// is reported as [`StorageError::Corrupt`] instead of attempting a
    /// huge allocation or reading garbage offsets.
    ///
    /// ```
    /// use affinity_data::generator::{sensor_dataset, SensorConfig};
    /// use affinity_storage::MatrixStore;
    ///
    /// let path = std::env::temp_dir().join("affinity-open-doc.afn");
    /// let data = sensor_dataset(&SensorConfig::reduced(4, 16));
    /// MatrixStore::create(&path, &data).unwrap();
    /// let store = MatrixStore::open(&path).unwrap();
    /// assert_eq!((store.series_count(), store.samples()), (4, 16));
    /// # std::fs::remove_file(&path).ok();
    /// ```
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StorageError> {
        let f = File::open(path.as_ref())?;
        let file_len = f.metadata()?.len();
        let mut r = BufReader::new(f);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let samples64 = read_u64(&mut r)?;
        let series64 = read_u64(&mut r)?;
        if samples64 == 0 || series64 == 0 {
            return Err(StorageError::Corrupt("zero dimensions".into()));
        }
        let label_len64 = read_u64(&mut r)?;
        // Whole-file size check from the four header integers alone,
        // via the shared checked-arithmetic helper (a corrupted count
        // must not overflow into a "valid" size). Layout: fixed header
        // + label crc (40 bytes), label block, then `series` column
        // chunks of `samples·8 + 4` bytes.
        SizeCheck::new()
            .add(8 + 4 + 8 + 8 + 8 + 4)
            .add(label_len64)
            .add_mul3(series64, samples64, 8)
            .add_mul(series64, 4)
            .require(file_len, "store header")
            .map_err(StorageError::Corrupt)?;
        let samples = samples64 as usize;
        let series = series64 as usize;
        let label_len = label_len64 as usize;
        let mut label_block = vec![0u8; label_len];
        r.read_exact(&mut label_block)?;
        let stored_crc = read_u32(&mut r)?;
        if crc32(&label_block) != stored_crc {
            return Err(StorageError::ChecksumMismatch("label block".into()));
        }
        let mut labels = Vec::with_capacity(series);
        let mut cursor = 0usize;
        for i in 0..series {
            // Bounds-checked framing: every read goes through `get` /
            // `checked_add`, so a lying label length is a typed error.
            let truncated = || StorageError::Corrupt(format!("label {i} truncated"));
            let len = le_u32(&label_block, cursor).ok_or_else(truncated)? as usize;
            cursor = cursor.checked_add(4).ok_or_else(truncated)?;
            let end = cursor.checked_add(len).ok_or_else(truncated)?;
            let raw = label_block.get(cursor..end).ok_or_else(truncated)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| StorageError::Corrupt(format!("label {i} not utf-8")))?;
            labels.push(s.to_string());
            cursor = end;
        }
        if cursor != label_block.len() {
            return Err(StorageError::Corrupt(
                "trailing bytes in label block".into(),
            ));
        }
        // Fixed 40-byte preamble (magic, version, dims, label CRC) +
        // label block; label_len64 ≤ file_len was proven by the
        // SizeCheck above, and the checked add keeps that visible.
        let columns_start = label_len64
            .checked_add(40)
            .ok_or_else(|| StorageError::Corrupt("store header overflow".into()))?;
        Ok(MatrixStore {
            path: path.as_ref().to_path_buf(),
            samples,
            series,
            labels,
            columns_start,
        })
    }

    /// Bytes of one on-disk column: `samples · 8` data + 4 CRC. The
    /// open-time [`SizeCheck`] proved `series · (samples·8 + 4)` fits
    /// the real file length, so this arithmetic cannot overflow.
    fn chunk_bytes(&self) -> usize {
        // afflint: allow(len-arith) -- samples·8+4 ≤ file_len proven by the open-time SizeCheck; sole place column geometry is computed
        self.samples * 8 + 4
    }

    /// [`MatrixStore::chunk_bytes`] as `u64` for seek offsets.
    fn chunk_bytes64(&self) -> u64 {
        self.chunk_bytes() as u64
    }

    /// Samples per series (`m`).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of stored series (`n`).
    pub fn series_count(&self) -> usize {
        self.series
    }

    /// Stored labels.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Read one series into a fresh vector, verifying its checksum.
    /// Thin wrapper over [`MatrixStore::read_series_into`]; streaming
    /// callers should pass their own buffer to avoid the per-column
    /// allocation.
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn read_series(&self, v: usize) -> Result<Vec<f64>, StorageError> {
        let mut out = Vec::new();
        self.read_series_into(v, &mut out)?;
        Ok(out)
    }

    /// Read one series into `out` (cleared and refilled, reusing its
    /// allocation), verifying its checksum. This is the allocation-free
    /// primitive the streamed model-construction path runs on: bytes
    /// are decoded through a fixed stack scratch, so a fetch costs one
    /// `open` + `seek` + sequential read and zero heap traffic once
    /// `out` has warmed up to `samples()` capacity.
    ///
    /// ```
    /// use affinity_data::generator::{sensor_dataset, SensorConfig};
    /// use affinity_storage::MatrixStore;
    ///
    /// let path = std::env::temp_dir().join("affinity-read-into-doc.afn");
    /// let data = sensor_dataset(&SensorConfig::reduced(3, 32));
    /// MatrixStore::create(&path, &data).unwrap();
    /// let store = MatrixStore::open(&path).unwrap();
    /// let mut buf = Vec::new();
    /// for v in 0..3 {
    ///     store.read_series_into(v, &mut buf).unwrap();
    ///     assert_eq!(buf, data.series(v));
    /// }
    /// # std::fs::remove_file(&path).ok();
    /// ```
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn read_series_into(&self, v: usize, out: &mut Vec<f64>) -> Result<(), StorageError> {
        if v >= self.series {
            return Err(StorageError::SeriesOutOfRange {
                requested: v,
                available: self.series,
            });
        }
        let chunk = self.chunk_bytes64();
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(self.columns_start + v as u64 * chunk))?;
        out.clear();
        out.reserve(self.samples);
        let mut hasher = Crc32::new();
        // afflint: allow(len-arith) -- samples·8 ≤ file_len was proven by the open-time SizeCheck
        let mut remaining = self.samples * 8;
        // Multiple of 8 so no f64 straddles a scratch boundary.
        let mut scratch = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            // afflint: allow(panic) -- take = remaining.min(scratch.len()) ≤ scratch.len(); the window is in bounds by construction
            let window = &mut scratch[..take];
            f.read_exact(window)?;
            hasher.update(window);
            out.extend(window.chunks_exact(8).map(le_f64));
            remaining -= take;
        }
        let stored_crc = {
            let mut b = [0u8; 4];
            f.read_exact(&mut b)?;
            u32::from_le_bytes(b)
        };
        if hasher.finalize() != stored_crc {
            out.clear(); // don't hand corrupt data back
            return Err(StorageError::ChecksumMismatch(format!("series {v}")));
        }
        Ok(())
    }

    /// Read the contiguous column region `first .. first + count` with
    /// **one read request**, verifying each column's checksum; `out` is
    /// cleared and refilled with the `count · samples` values, column
    /// after column (column `first + c` occupies
    /// `out[c·samples .. (c+1)·samples]`).
    ///
    /// Column chunks are fixed-size and adjacent on disk, so the whole
    /// region is one seek plus one `read_exact` into a reusable
    /// thread-local byte buffer — on seek-dominated media a `count`-column
    /// region costs about the same as a single column. This is the bulk
    /// primitive behind the cache prefetcher's readahead batches and the
    /// out-of-core warm-start path.
    ///
    /// ```
    /// use affinity_data::generator::{sensor_dataset, SensorConfig};
    /// use affinity_storage::MatrixStore;
    ///
    /// let path = std::env::temp_dir().join("affinity-range-doc.afn");
    /// let data = sensor_dataset(&SensorConfig::reduced(6, 16));
    /// MatrixStore::create(&path, &data).unwrap();
    /// let store = MatrixStore::open(&path).unwrap();
    /// let mut buf = Vec::new();
    /// store.read_series_range(2, 3, &mut buf).unwrap();
    /// assert_eq!(&buf[..16], data.series(2));
    /// assert_eq!(&buf[32..], data.series(4));
    /// # std::fs::remove_file(&path).ok();
    /// ```
    ///
    /// # Errors
    /// [`StorageError::SeriesOutOfRange`] if the region exceeds the
    /// stored series (or `count` is zero); I/O and checksum errors as
    /// for [`MatrixStore::read_series_into`]. On a checksum mismatch
    /// `out` is cleared — no partially verified data is handed back.
    pub fn read_series_range(
        &self,
        first: usize,
        count: usize,
        out: &mut Vec<f64>,
    ) -> Result<(), StorageError> {
        let end = first
            .checked_add(count)
            .filter(|&e| e <= self.series && count > 0)
            .ok_or(StorageError::SeriesOutOfRange {
                requested: first.saturating_add(count.max(1)) - 1,
                available: self.series,
            })?;
        let chunk = self.chunk_bytes();
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(self.columns_start + (first * chunk) as u64))?;
        RANGE_SCRATCH.with(|cell| {
            let bytes = &mut *cell.borrow_mut();
            bytes.clear();
            // afflint: allow(len-arith) -- count ≤ series and chunk·series ≤ file_len were proven by the open-time SizeCheck
            bytes.resize(chunk * count, 0);
            f.read_exact(bytes)?;
            out.clear();
            // afflint: allow(len-arith) -- samples·count bounded by the open-time SizeCheck; a lying header cannot reach here
            out.reserve(self.samples * count);
            for (c, chunk_bytes) in bytes.chunks_exact(chunk).enumerate() {
                // afflint: allow(len-arith) -- split point samples·8 = chunk−4 ≤ chunk_bytes.len() by the chunks_exact width
                let (col, crcb) = chunk_bytes.split_at(self.samples * 8);
                if Some(crc32(col)) != le_u32(crcb, 0) {
                    out.clear(); // don't hand corrupt data back
                    return Err(StorageError::ChecksumMismatch(format!(
                        "series {}",
                        first + c
                    )));
                }
                out.extend(col.chunks_exact(8).map(le_f64));
            }
            Ok(())
        })?;
        // afflint: allow(panic, len-arith) -- debug-only postcondition over dims the open-time SizeCheck already validated
        debug_assert_eq!(out.len(), self.samples * (end - first));
        Ok(())
    }

    /// Read the whole matrix back, verifying every chunk.
    ///
    /// # Errors
    /// See [`StorageError`].
    pub fn read_all(&self) -> Result<DataMatrix, StorageError> {
        let mut f = BufReader::new(File::open(&self.path)?);
        f.seek(SeekFrom::Start(self.columns_start))?;
        let mut columns = Vec::with_capacity(self.series);
        // afflint: allow(len-arith) -- samples·8 ≤ file_len was proven by the open-time SizeCheck
        let mut buf = vec![0u8; self.samples * 8];
        for v in 0..self.series {
            f.read_exact(&mut buf)?;
            let mut crcb = [0u8; 4];
            f.read_exact(&mut crcb)?;
            let mut h = Crc32::new();
            h.update(&buf);
            if h.finalize() != u32::from_le_bytes(crcb) {
                return Err(StorageError::ChecksumMismatch(format!("series {v}")));
            }
            columns.push(buf.chunks_exact(8).map(le_f64).collect());
        }
        let mut dm = DataMatrix::from_series(columns);
        dm.set_labels(self.labels.clone());
        Ok(dm)
    }
}

/// A [`MatrixStore`] is a streaming [`SeriesSource`]: each fetch is one
/// checksummed column read straight from disk, so model construction
/// can run without ever materializing the matrix. Wrap it in a
/// [`crate::CachedStore`] to amortize repeated fetches under a memory
/// budget.
impl SeriesSource for MatrixStore {
    fn samples(&self) -> usize {
        self.samples
    }

    fn series_count(&self) -> usize {
        self.series
    }

    fn read_into<'a>(&'a self, v: usize, buf: &'a mut Vec<f64>) -> Result<&'a [f64], SourceError> {
        self.read_series_into(v, buf)?;
        Ok(buf.as_slice())
    }
}

thread_local! {
    /// Reusable scratch for [`MatrixStore::read_series_range`]'s raw
    /// region bytes (one per thread: the prefetch worker reuses it for
    /// every readahead batch) and for the decoded columns of the
    /// [`ColumnRead::read_column_range`] bulk path.
    static RANGE_SCRATCH: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
    static RANGE_COLUMNS: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The owned-buffer backing contract cache layers consume: single reads
/// delegate to [`MatrixStore::read_series_into`], region reads to the
/// one-request [`MatrixStore::read_series_range`].
impl ColumnRead for MatrixStore {
    fn samples(&self) -> usize {
        self.samples
    }

    fn series_count(&self) -> usize {
        self.series
    }

    fn read_column(&self, v: usize, out: &mut Vec<f64>) -> Result<(), SourceError> {
        self.read_series_into(v, out)?;
        Ok(())
    }

    fn read_column_range(
        &self,
        first: usize,
        count: usize,
        sink: &mut dyn FnMut(usize, &[f64]),
    ) -> Result<(), SourceError> {
        RANGE_COLUMNS.with(|cell| {
            let cols = &mut *cell.borrow_mut();
            self.read_series_range(first, count, cols)?;
            for (c, col) in cols.chunks_exact(self.samples).enumerate() {
                sink(first + c, col);
            }
            Ok(())
        })
    }
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, StorageError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, StorageError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("affinity-storage-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_whole_matrix() {
        let data = sensor_dataset(&SensorConfig::reduced(6, 40));
        let path = tmp("roundtrip.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert_eq!(store.samples(), 40);
        assert_eq!(store.series_count(), 6);
        let back = store.read_all().unwrap();
        assert_eq!(back, data);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_access_single_series() {
        let data = sensor_dataset(&SensorConfig::reduced(9, 24));
        let path = tmp("random.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        for v in [0usize, 4, 8] {
            assert_eq!(store.read_series(v).unwrap(), data.series(v));
        }
        assert!(matches!(
            store.read_series(9),
            Err(StorageError::SeriesOutOfRange { requested: 9, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labels_survive() {
        let mut data = sensor_dataset(&SensorConfig::reduced(3, 8));
        data.set_labels(vec!["α-temp".into(), "β-hum".into(), "γ".into()]);
        let path = tmp("labels.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert_eq!(store.labels()[0], "α-temp");
        assert_eq!(store.read_all().unwrap().label(1), "β-hum");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let data = sensor_dataset(&SensorConfig::reduced(4, 16));
        let path = tmp("corrupt.afn");
        MatrixStore::create(&path, &data).unwrap();
        // Flip one byte inside the third column chunk.
        let mut bytes = std::fs::read(&path).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let offset = store.columns_start as usize + 2 * (16 * 8 + 4) + 7;
        bytes[offset] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert!(store.read_series(0).is_ok());
        assert!(matches!(
            store.read_series(2),
            Err(StorageError::ChecksumMismatch(_))
        ));
        assert!(matches!(
            store.read_all(),
            Err(StorageError::ChecksumMismatch(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_and_version() {
        let path = tmp("magic.afn");
        std::fs::write(&path, b"NOTAFILE________").unwrap();
        assert!(matches!(
            MatrixStore::open(&path),
            Err(StorageError::BadMagic)
        ));
        // Valid magic, bogus version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MatrixStore::open(&path),
            Err(StorageError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_panicky() {
        let data = sensor_dataset(&SensorConfig::reduced(4, 16));
        let path = tmp("trunc.afn");
        MatrixStore::create(&path, &data).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        // The whole-file size check catches the truncation at open time.
        assert!(matches!(
            MatrixStore::open(&path),
            Err(StorageError::Corrupt(_))
        ));
        // A file truncated *after* a successful open (e.g. concurrent
        // rewrite) still fails cleanly at read time.
        std::fs::write(&path, &bytes).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        match store.read_all() {
            Err(StorageError::Io(_)) | Err(StorageError::ChecksumMismatch(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        match store.read_series(3) {
            Err(StorageError::Io(_)) | Err(StorageError::ChecksumMismatch(_)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    /// Overwrite the 8-byte little-endian field at `offset` in the
    /// header of a valid store file.
    fn patch_header_u64(path: &PathBuf, offset: usize, value: u64) {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
        std::fs::write(path, &bytes).unwrap();
    }

    #[test]
    fn corrupted_length_headers_are_rejected_without_allocation() {
        // Header layout: magic 8, version 4, samples u64 @12,
        // series u64 @20, label_len u64 @28.
        let data = sensor_dataset(&SensorConfig::reduced(4, 16));
        for (offset, bogus) in [
            (12, 0u64),           // zero samples
            (20, 0),              // zero series
            (12, u64::MAX / 9),   // absurd samples: would overflow offsets
            (20, u64::MAX / 5),   // absurd series
            (28, u64::MAX - 100), // absurd label block: would OOM if allocated
            (12, 17),             // plausible but wrong samples
            (20, 40),             // plausible but wrong series
            (28, 1 << 20),        // plausible but wrong label length
        ] {
            let path = tmp(&format!("hdr-{offset}-{bogus}.afn"));
            MatrixStore::create(&path, &data).unwrap();
            patch_header_u64(&path, offset, bogus);
            assert!(
                matches!(MatrixStore::open(&path), Err(StorageError::Corrupt(_))),
                "offset {offset} value {bogus} must be Corrupt"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn zero_sample_header_is_corrupt() {
        // A zero-sample matrix cannot be created through the API
        // (`DataMatrix` forbids it), so a file claiming one is corrupt
        // by construction — the streamed pipeline must see an error,
        // not a 0-length column.
        let data = sensor_dataset(&SensorConfig::reduced(3, 8));
        let path = tmp("zero-samples.afn");
        MatrixStore::create(&path, &data).unwrap();
        patch_header_u64(&path, 12, 0);
        let err = MatrixStore::open(&path).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_series_into_reuses_the_buffer() {
        let data = sensor_dataset(&SensorConfig::reduced(6, 2000));
        let path = tmp("reuse.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let mut buf = Vec::new();
        store.read_series_into(0, &mut buf).unwrap();
        assert_eq!(buf, data.series(0));
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        for v in 1..6 {
            store.read_series_into(v, &mut buf).unwrap();
            assert_eq!(buf, data.series(v));
        }
        assert_eq!(buf.capacity(), cap, "no reallocation across columns");
        assert_eq!(buf.as_ptr(), ptr, "same backing allocation");
        assert!(matches!(
            store.read_series_into(6, &mut buf),
            Err(StorageError::SeriesOutOfRange { requested: 6, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn range_read_matches_single_reads() {
        let data = sensor_dataset(&SensorConfig::reduced(7, 30));
        let path = tmp("range.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let mut buf = Vec::new();
        // Every valid (first, count) region.
        for first in 0..7 {
            for count in 1..=7 - first {
                store.read_series_range(first, count, &mut buf).unwrap();
                assert_eq!(buf.len(), count * 30);
                for c in 0..count {
                    assert_eq!(
                        &buf[c * 30..(c + 1) * 30],
                        data.series(first + c),
                        "region ({first}, {count}) column {c}"
                    );
                }
            }
        }
        // Out-of-range and empty regions are errors, not panics.
        for (first, count) in [(0, 8), (6, 2), (7, 1), (3, 0)] {
            assert!(matches!(
                store.read_series_range(first, count, &mut buf),
                Err(StorageError::SeriesOutOfRange { .. })
            ));
        }
        assert!(matches!(
            store.read_series_range(usize::MAX, 2, &mut buf),
            Err(StorageError::SeriesOutOfRange { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn range_read_detects_corruption_and_clears_the_buffer() {
        let data = sensor_dataset(&SensorConfig::reduced(5, 16));
        let path = tmp("range-corrupt.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = store.columns_start as usize + 3 * (16 * 8 + 4) + 5;
        bytes[offset] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut buf = Vec::new();
        // Region before the corruption is fine.
        store.read_series_range(0, 3, &mut buf).unwrap();
        // Region covering column 3 fails and hands nothing back.
        assert!(matches!(
            store.read_series_range(2, 3, &mut buf),
            Err(StorageError::ChecksumMismatch(_))
        ));
        assert!(buf.is_empty(), "no partially verified data");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn column_read_range_goes_through_the_bulk_path() {
        let data = sensor_dataset(&SensorConfig::reduced(6, 24));
        let path = tmp("colread.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        let mut seen = Vec::new();
        ColumnRead::read_column_range(&store, 1, 4, &mut |v, col| {
            seen.push((v, col.to_vec()));
        })
        .unwrap();
        assert_eq!(seen.len(), 4);
        for (i, (v, col)) in seen.iter().enumerate() {
            assert_eq!(*v, 1 + i);
            assert_eq!(col, data.series(1 + i));
        }
        let mut out = Vec::new();
        ColumnRead::read_column(&store, 5, &mut out).unwrap();
        assert_eq!(out, data.series(5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_is_a_series_source() {
        let data = sensor_dataset(&SensorConfig::reduced(5, 33));
        let path = tmp("source.afn");
        MatrixStore::create(&path, &data).unwrap();
        let store = MatrixStore::open(&path).unwrap();
        assert_eq!(SeriesSource::samples(&store), 33);
        assert_eq!(SeriesSource::series_count(&store), 5);
        let mut buf = Vec::new();
        for v in 0..5 {
            assert_eq!(store.read_into(v, &mut buf).unwrap(), data.series(v));
        }
        assert!(matches!(
            store.read_into(5, &mut buf),
            Err(SourceError::OutOfRange { requested: 5, .. })
        ));
        let back = SeriesSource::materialize(&store).unwrap();
        assert_eq!(back.as_slice(), data.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        let e = StorageError::ChecksumMismatch("series 3".into());
        assert!(e.to_string().contains("series 3"));
        assert!(StorageError::BadMagic.to_string().contains("AFNSTORE"));
    }
}

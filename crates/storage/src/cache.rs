//! A bounded-memory column cache over a [`MatrixStore`].
//!
//! [`CachedStore`] is the out-of-core middle ground between a fully
//! resident [`DataMatrix`](affinity_data::DataMatrix) and raw per-fetch
//! disk reads: it keeps at most `capacity` recently used columns in
//! memory (LRU), **reusing the evicted column's buffer** for the
//! incoming one, so steady-state misses cost one disk read plus one
//! memcpy and zero allocations. Pivot columns — fetched once per
//! sequence pair during the SYMEX fit phase — can be *pinned* so the
//! sweep over member columns never evicts them.
//!
//! Reads happen outside the cache lock, so parallel lanes fetch
//! distinct columns from disk concurrently; the lock is held only for
//! the in-memory bookkeeping and memcpys.

use crate::store::MatrixStore;
use affinity_data::{SeriesSource, SourceError};
use std::collections::HashMap;
use std::sync::Mutex;

/// Hit/miss counters of a [`CachedStore`], for benchmarks and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches served from memory.
    pub hits: u64,
    /// Fetches that went to disk.
    pub misses: u64,
    /// Cached columns displaced to make room.
    pub evictions: u64,
    /// Fetches that bypassed the cache because every slot was pinned.
    pub bypasses: u64,
}

/// One cached column.
#[derive(Debug)]
struct Slot {
    series: usize,
    data: Vec<f64>,
    last_used: u64,
    pins: u32,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// series → index into `slots`.
    map: HashMap<usize, usize>,
    slots: Vec<Slot>,
    tick: u64,
    stats: CacheStats,
}

/// An LRU column cache wrapping a [`MatrixStore`]; implements
/// [`SeriesSource`], so the whole model-construction pipeline can run
/// over it with memory bounded by `capacity` columns instead of the
/// full `n·m` matrix.
///
/// ```
/// use affinity_data::generator::{sensor_dataset, SensorConfig};
/// use affinity_data::SeriesSource;
/// use affinity_storage::{CachedStore, MatrixStore};
///
/// let path = std::env::temp_dir().join("affinity-cached-doc.afn");
/// let data = sensor_dataset(&SensorConfig::reduced(8, 64));
/// MatrixStore::create(&path, &data).unwrap();
///
/// // Hold at most 2 of the 8 columns in memory.
/// let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), 2);
/// let mut buf = Vec::new();
/// for v in [0, 1, 0, 1, 5, 0] {
///     assert_eq!(cached.read_into(v, &mut buf).unwrap(), data.series(v));
/// }
/// let stats = cached.stats();
/// assert_eq!(stats.hits, 2);   // the repeated 0, 1 pair
/// assert_eq!(stats.misses, 4); // 0, 1, 5, and 0 again after eviction
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct CachedStore {
    store: MatrixStore,
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl CachedStore {
    /// Wrap `store` with room for at most `capacity` cached columns
    /// (clamped to at least 1).
    pub fn new(store: MatrixStore, capacity: usize) -> Self {
        CachedStore {
            store,
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Wrap `store` with a cache budget in **bytes**, converted to
    /// whole columns (`budget / (samples · 8)`, at least 1).
    pub fn with_budget_bytes(store: MatrixStore, budget: usize) -> Self {
        let col_bytes = store.samples().saturating_mul(8).max(1);
        let capacity = budget / col_bytes;
        Self::new(store, capacity)
    }

    /// The wrapped store.
    pub fn store(&self) -> &MatrixStore {
        &self.store
    }

    /// Maximum number of cached columns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cache budget in bytes (`capacity · samples · 8`).
    pub fn budget_bytes(&self) -> usize {
        self.capacity * self.store.samples() * 8
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache mutex").stats
    }

    /// Index of the least-recently-used unpinned slot, if any.
    fn victim(inner: &CacheInner) -> Option<usize> {
        inner
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pins == 0)
            .min_by_key(|(_, s)| s.last_used)
            .map(|(i, _)| i)
    }

    /// Install the freshly read column in `buf` into the cache (slot
    /// reuse on eviction). Called with the lock held, after a miss.
    fn admit(&self, inner: &mut CacheInner, v: usize, buf: &[f64]) {
        if inner.slots.len() < self.capacity {
            let slot = inner.slots.len();
            inner.slots.push(Slot {
                series: v,
                data: buf.to_vec(),
                last_used: inner.tick,
                pins: 0,
            });
            inner.map.insert(v, slot);
        } else if let Some(slot) = Self::victim(inner) {
            let old = inner.slots[slot].series;
            inner.map.remove(&old);
            inner.stats.evictions += 1;
            let s = &mut inner.slots[slot];
            s.series = v;
            s.data.clear();
            s.data.extend_from_slice(buf); // reuses the evicted buffer
            s.last_used = inner.tick;
            s.pins = 0;
            inner.map.insert(v, slot);
        } else {
            // Every slot pinned: serve without caching.
            inner.stats.bypasses += 1;
        }
    }
}

impl SeriesSource for CachedStore {
    fn samples(&self) -> usize {
        self.store.samples()
    }

    fn series_count(&self) -> usize {
        self.store.series_count()
    }

    fn read_into<'a>(&'a self, v: usize, buf: &'a mut Vec<f64>) -> Result<&'a [f64], SourceError> {
        {
            let mut inner = self.inner.lock().expect("cache mutex");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(&slot) = inner.map.get(&v) {
                inner.stats.hits += 1;
                let s = &mut inner.slots[slot];
                s.last_used = tick;
                buf.clear();
                buf.extend_from_slice(&s.data);
                return Ok(&buf[..]);
            }
            inner.stats.misses += 1;
        }
        // Miss: read from disk *outside* the lock so parallel lanes
        // overlap their I/O, then admit the column.
        self.store.read_series_into(v, buf)?;
        let mut inner = self.inner.lock().expect("cache mutex");
        if !inner.map.contains_key(&v) {
            self.admit(&mut inner, v, buf);
        }
        Ok(&buf[..])
    }

    /// Pin series `v`: load it (evicting if needed) and protect it from
    /// eviction until unpinned. Advisory — if the column is absent and
    /// no slot could admit it (cache full of pins), the call returns
    /// without touching the disk, and fetch correctness never depends
    /// on a pin succeeding.
    fn pin(&self, v: usize) {
        if v >= self.store.series_count() {
            return;
        }
        {
            let mut inner = self.inner.lock().expect("cache mutex");
            if let Some(&slot) = inner.map.get(&v) {
                inner.slots[slot].pins += 1;
                return;
            }
            // Don't pay a disk read for a column that could not be
            // admitted anyway.
            if inner.slots.len() >= self.capacity && Self::victim(&inner).is_none() {
                return;
            }
        }
        let mut buf = Vec::new();
        if self.store.read_series_into(v, &mut buf).is_err() {
            return; // advisory: leave the error for the actual fetch
        }
        let mut inner = self.inner.lock().expect("cache mutex");
        inner.tick += 1;
        if let Some(&slot) = inner.map.get(&v) {
            inner.slots[slot].pins += 1; // raced with a concurrent fetch
            return;
        }
        inner.stats.misses += 1;
        self.admit(&mut inner, v, &buf);
        if let Some(&slot) = inner.map.get(&v) {
            inner.slots[slot].pins += 1;
        }
    }

    fn unpin(&self, v: usize) {
        let mut inner = self.inner.lock().expect("cache mutex");
        if let Some(&slot) = inner.map.get(&v) {
            let s = &mut inner.slots[slot];
            s.pins = s.pins.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};
    use affinity_data::DataMatrix;
    use std::path::PathBuf;

    fn fixture(name: &str, n: usize, m: usize) -> (DataMatrix, CachedStore, PathBuf) {
        let dir = std::env::temp_dir().join("affinity-cache-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        MatrixStore::create(&path, &data).unwrap();
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), 3);
        (data, cached, path)
    }

    #[test]
    fn serves_correct_columns_under_churn() {
        let (data, cached, path) = fixture("churn.afn", 10, 40);
        let mut buf = Vec::new();
        // A access pattern larger than the 3-column capacity.
        for pass in 0..3 {
            for v in 0..10 {
                let got = cached.read_into((v * 7 + pass) % 10, &mut buf).unwrap();
                assert_eq!(got, data.series((v * 7 + pass) % 10));
            }
        }
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 30);
        assert!(stats.evictions > 0, "capacity 3 must evict: {stats:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_access_hits_the_cache() {
        let (data, cached, path) = fixture("hits.afn", 6, 24);
        let mut buf = Vec::new();
        for _ in 0..5 {
            assert_eq!(cached.read_into(2, &mut buf).unwrap(), data.series(2));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_columns_survive_eviction_pressure() {
        let (data, cached, path) = fixture("pin.afn", 8, 24);
        cached.pin(0);
        let mut buf = Vec::new();
        // Thrash the other two slots.
        for v in 1..8 {
            cached.read_into(v, &mut buf).unwrap();
        }
        let before = cached.stats();
        assert_eq!(cached.read_into(0, &mut buf).unwrap(), data.series(0));
        let after = cached.stats();
        assert_eq!(after.hits, before.hits + 1, "pinned column stayed cached");
        cached.unpin(0);
        // Now it can be evicted again.
        for v in 1..8 {
            cached.read_into(v, &mut buf).unwrap();
        }
        cached.read_into(0, &mut buf).unwrap();
        assert_eq!(cached.stats().hits, after.hits, "unpinned column evicted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_slots_pinned_degrades_to_passthrough() {
        let (data, cached, path) = fixture("allpin.afn", 8, 16);
        for v in 0..3 {
            cached.pin(v);
        }
        let mut buf = Vec::new();
        for v in 3..8 {
            assert_eq!(cached.read_into(v, &mut buf).unwrap(), data.series(v));
        }
        let stats = cached.stats();
        assert_eq!(stats.bypasses, 5);
        assert_eq!(stats.evictions, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_and_budget_helpers() {
        let (_, cached, path) = fixture("oor.afn", 4, 32);
        let mut buf = Vec::new();
        assert!(matches!(
            cached.read_into(4, &mut buf),
            Err(SourceError::OutOfRange { requested: 4, .. })
        ));
        cached.pin(99); // out of range pin is a no-op
        assert_eq!(cached.capacity(), 3);
        assert_eq!(cached.budget_bytes(), 3 * 32 * 8);
        let store = MatrixStore::open(&path).unwrap();
        let by_bytes = CachedStore::with_budget_bytes(store, 2 * 32 * 8 + 7);
        assert_eq!(by_bytes.capacity(), 2);
        let store = MatrixStore::open(&path).unwrap();
        assert_eq!(CachedStore::with_budget_bytes(store, 0).capacity(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_fetches_agree_with_the_data() {
        let (data, cached, path) = fixture("par.afn", 12, 48);
        let pool = affinity_par::ThreadPool::new(4);
        let cols: Vec<Vec<f64>> = pool.parallel_map(48, |i| {
            let mut buf = Vec::new();
            cached.read_into(i % 12, &mut buf).unwrap();
            buf
        });
        for (i, col) in cols.iter().enumerate() {
            assert_eq!(col, data.series(i % 12));
        }
        std::fs::remove_file(&path).ok();
    }
}

//! A bounded-memory column cache over any [`ColumnRead`] backing.
//!
//! [`CachedStore`] is the out-of-core middle ground between a fully
//! resident [`DataMatrix`](affinity_data::DataMatrix) and raw per-fetch
//! disk reads: it keeps at most `capacity` recently used columns in
//! memory (LRU), **reusing the evicted column's buffer** for the
//! incoming one, so steady-state misses cost one disk read plus one
//! memcpy and zero allocations. Pivot columns — fetched once per
//! sequence pair during the SYMEX fit phase — can be *pinned* so the
//! sweep over member columns never evicts them.
//!
//! Reads happen outside the cache lock, so parallel lanes fetch
//! distinct columns from disk concurrently; the lock is held only for
//! the in-memory bookkeeping and memcpys. Concurrent fetches of the
//! *same* column are deduplicated: the second reader waits for the
//! first (or for the prefetcher) instead of decoding the column twice.
//!
//! ## Asynchronous prefetching
//!
//! Construct with [`CachedStore::with_prefetch`] (or upgrade with
//! [`CachedStore::prefetching`]) and the cache spawns one background
//! worker that services [`SeriesSource::prefetch`] announcements: the
//! model-construction passes announce their upcoming column sequence,
//! and the worker pulls those columns from the backing store — batching
//! contiguous runs into one region read — while the consumer computes,
//! staying at most `depth` unconsumed columns ahead. See the
//! [`prefetch`](crate::prefetch) module docs for the pipeline
//! lifecycle, and [`PrefetchStats`] (inside [`CacheStats`]) for the
//! counters.
//!
//! The backing is any [`ColumnRead`]: the on-disk [`MatrixStore`] in
//! production, or e.g. a latency-injecting
//! [`SlowSource`](affinity_data::slow::SlowSource) in I/O-overlap
//! experiments.

use crate::prefetch::{self, PrefetchStats};
use crate::store::MatrixStore;
use affinity_data::{ColumnRead, SeriesSource, SourceError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hit/miss counters of a [`CachedStore`], for benchmarks and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fetches served from memory.
    pub hits: u64,
    /// Fetches that went to the backing store.
    pub misses: u64,
    /// Cached columns displaced to make room.
    pub evictions: u64,
    /// Fetches that bypassed the cache because every slot was pinned.
    pub bypasses: u64,
    /// Counters of the background prefetcher (all zero when prefetching
    /// is disabled).
    pub prefetch: PrefetchStats,
}

/// One cached column.
#[derive(Debug)]
pub(crate) struct Slot {
    pub(crate) series: usize,
    pub(crate) data: Vec<f64>,
    pub(crate) last_used: u64,
    pub(crate) pins: u32,
    /// Brought in by the prefetcher and not consumed yet; cleared (and
    /// counted as a prefetch hit) on first touch.
    pub(crate) prefetched: bool,
}

#[derive(Debug, Default)]
pub(crate) struct CacheInner {
    /// series → index into `slots`.
    pub(crate) map: HashMap<usize, usize>,
    pub(crate) slots: Vec<Slot>,
    pub(crate) tick: u64,
    pub(crate) stats: CacheStats,
    /// Announced upcoming columns, consumed front-to-back by the
    /// prefetch worker (bounded by `Shared::plan_cap`).
    pub(crate) plan: VecDeque<u32>,
    /// Membership mirror of `plan`, for O(1) dedup of announcements.
    pub(crate) planned: HashSet<u32>,
    /// Columns currently being read from the backing store (by the
    /// worker or a consumer); other readers wait instead of re-reading.
    pub(crate) inflight: HashSet<usize>,
    /// Prefetched-but-unconsumed columns resident right now — the
    /// worker's readahead credit; it stalls at `Shared::depth`.
    pub(crate) ahead: usize,
    /// `stats.prefetch.issued` as of the last plan restart — rate-limits
    /// restarts so parallel lanes announcing disjoint windows cannot
    /// ping-pong-clear each other's plan on every call.
    pub(crate) issued_at_restart: u64,
}

/// State shared between the cache handle and the prefetch worker.
#[derive(Debug)]
pub(crate) struct Shared<B> {
    pub(crate) backing: B,
    pub(crate) capacity: usize,
    /// Effective readahead depth; 0 = prefetching disabled.
    pub(crate) depth: usize,
    /// Bound on `CacheInner::plan`; announcements beyond it are dropped
    /// and counted in [`PrefetchStats::queue_full`].
    pub(crate) plan_cap: usize,
    pub(crate) inner: Mutex<CacheInner>,
    /// Signals the worker: plan entries added or readahead credit freed.
    pub(crate) work: Condvar,
    /// Signals waiters of in-flight columns: a fetch completed.
    pub(crate) served: Condvar,
    pub(crate) shutdown: AtomicBool,
}

impl<B: ColumnRead> Shared<B> {
    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().expect("cache mutex")
    }

    /// Minimum free readahead credit before the worker issues another
    /// fetch (half the depth, at least one). Waiting for credit to
    /// accumulate lets the worker batch a contiguous *run* into one
    /// region read instead of trickling one column per freed slot —
    /// on seek-dominated media that amortizes the per-request latency
    /// across the batch, which is most of the prefetch win. Half, not
    /// all: the other half stays resident as the consumer's buffer, so
    /// it keeps computing (draining credits) while the next span is in
    /// flight — double buffering.
    pub(crate) fn hysteresis(&self) -> usize {
        (self.depth / 2).max(1)
    }

    /// The worker's wait predicate: nothing to do, or not enough free
    /// credit accumulated yet to make a batch worthwhile.
    pub(crate) fn worker_must_wait(&self, inner: &CacheInner) -> bool {
        inner.plan.is_empty() || self.depth.saturating_sub(inner.ahead) < self.hysteresis()
    }

    /// Index of the least-recently-used unpinned slot, if any.
    pub(crate) fn victim(inner: &CacheInner) -> Option<usize> {
        inner
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pins == 0)
            .min_by_key(|(_, s)| s.last_used)
            .map(|(i, _)| i)
    }

    /// Install the freshly read column in `buf` into the cache (slot
    /// reuse on eviction). Called with the lock held, after a miss.
    /// Returns `false` when every slot is pinned and the column could
    /// not be admitted. Never evicts a pinned column; evicting a
    /// prefetched-but-unconsumed one counts it as wasted and returns
    /// its readahead credit.
    pub(crate) fn admit(
        &self,
        inner: &mut CacheInner,
        v: usize,
        buf: &[f64],
        prefetched: bool,
    ) -> bool {
        if inner.slots.len() < self.capacity {
            let slot = inner.slots.len();
            inner.slots.push(Slot {
                series: v,
                data: buf.to_vec(),
                last_used: inner.tick,
                pins: 0,
                prefetched,
            });
            inner.map.insert(v, slot);
            true
        } else if let Some(slot) = Self::victim(inner) {
            let old = inner.slots[slot].series;
            inner.map.remove(&old);
            inner.stats.evictions += 1;
            if inner.slots[slot].prefetched {
                // Evicted before anyone read it: the prefetch was wasted.
                inner.stats.prefetch.wasted += 1;
                inner.ahead -= 1;
                self.work.notify_all();
            }
            let s = &mut inner.slots[slot];
            s.series = v;
            s.data.clear();
            s.data.extend_from_slice(buf); // reuses the evicted buffer
            s.last_used = inner.tick;
            s.pins = 0;
            s.prefetched = prefetched;
            inner.map.insert(v, slot);
            true
        } else {
            // Every slot pinned: serve without caching. `bypasses`
            // counts *consumer* fetches that had to skip the cache; a
            // dropped prefetch admission is the worker's problem and is
            // already counted as wasted by its caller.
            if !prefetched {
                inner.stats.bypasses += 1;
            }
            false
        }
    }

    /// First-touch accounting for a cached slot: a hit on a column the
    /// prefetcher brought in consumes its readahead credit.
    pub(crate) fn touch(&self, inner: &mut CacheInner, slot: usize) {
        if inner.slots[slot].prefetched {
            inner.slots[slot].prefetched = false;
            inner.stats.prefetch.hits += 1;
            inner.ahead -= 1;
            self.work.notify_all();
        }
    }
}

/// An LRU column cache wrapping a [`ColumnRead`] backing (the on-disk
/// [`MatrixStore`] by default); implements [`SeriesSource`], so the
/// whole model-construction pipeline can run over it with memory
/// bounded by `capacity` columns instead of the full `n·m` matrix.
///
/// ```
/// use affinity_data::generator::{sensor_dataset, SensorConfig};
/// use affinity_data::SeriesSource;
/// use affinity_storage::{CachedStore, MatrixStore};
///
/// let path = std::env::temp_dir().join("affinity-cached-doc.afn");
/// let data = sensor_dataset(&SensorConfig::reduced(8, 64));
/// MatrixStore::create(&path, &data).unwrap();
///
/// // Hold at most 2 of the 8 columns in memory.
/// let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), 2);
/// let mut buf = Vec::new();
/// for v in [0, 1, 0, 1, 5, 0] {
///     assert_eq!(cached.read_into(v, &mut buf).unwrap(), data.series(v));
/// }
/// let stats = cached.stats();
/// assert_eq!(stats.hits, 2);   // the repeated 0, 1 pair
/// assert_eq!(stats.misses, 4); // 0, 1, 5, and 0 again after eviction
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct CachedStore<B: ColumnRead = MatrixStore> {
    shared: Arc<Shared<B>>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl<B: ColumnRead> CachedStore<B> {
    /// Wrap `backing` with room for at most `capacity` cached columns
    /// (clamped to at least 1). Prefetching is off; see
    /// [`CachedStore::with_prefetch`].
    pub fn new(backing: B, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CachedStore {
            shared: Arc::new(Shared {
                backing,
                capacity,
                depth: 0,
                plan_cap: 0, // set when a prefetch worker spawns
                inner: Mutex::new(CacheInner::default()),
                work: Condvar::new(),
                served: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            worker: None,
        }
    }

    /// Wrap `backing` with a cache budget in **bytes**, converted to
    /// whole columns (`budget / (samples · 8)`). A budget smaller than
    /// one column — including 0 — is clamped to a single slot: the
    /// cache never silently degrades to a capacity-0 pass-through.
    pub fn with_budget_bytes(backing: B, budget: usize) -> Self {
        let col_bytes = backing.samples().saturating_mul(8).max(1);
        let capacity = (budget / col_bytes).max(1);
        Self::new(backing, capacity)
    }

    /// The wrapped backing store.
    pub fn store(&self) -> &B {
        &self.shared.backing
    }

    /// Maximum number of cached columns.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The cache budget in bytes (`capacity · samples · 8`).
    pub fn budget_bytes(&self) -> usize {
        self.shared.capacity * self.shared.backing.samples() * 8
    }

    /// Effective readahead depth of the prefetcher (0 when disabled).
    pub fn prefetch_depth(&self) -> usize {
        self.shared.depth
    }

    /// Hit/miss counters so far (including prefetcher counters).
    pub fn stats(&self) -> CacheStats {
        self.shared.lock().stats
    }

    /// Prefetched-but-unconsumed columns resident right now — for
    /// stats-consistency assertions in tests (`issued` splits exactly
    /// into `hits + wasted + prefetched_unconsumed`).
    pub fn prefetched_unconsumed(&self) -> usize {
        self.shared.lock().ahead
    }

    /// Block until the prefetch worker is parked: nothing in flight,
    /// and its wait predicate holds (plan drained, or readahead credit
    /// below the batching hysteresis). Test/bench helper (returns
    /// immediately when prefetching is off); the stats identity above
    /// is only stable after quiescing.
    pub fn quiesce(&self) {
        if self.shared.depth == 0 {
            return;
        }
        loop {
            {
                let inner = self.shared.lock();
                if inner.inflight.is_empty() && self.shared.worker_must_wait(&inner) {
                    return;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

impl<B: ColumnRead + Send + 'static> CachedStore<B> {
    /// Like [`CachedStore::new`], plus a background prefetch worker
    /// with readahead depth `depth` (0 leaves prefetching off; larger
    /// depths are clamped so readahead can never flush the whole
    /// cache: at most `capacity − 1` unconsumed columns, one slot
    /// always left for the consumer's own misses).
    pub fn with_prefetch(backing: B, capacity: usize, depth: usize) -> Self {
        Self::new(backing, capacity).prefetching(depth)
    }

    /// Enable the background prefetcher on an existing cache (builder
    /// style). A no-op for `depth == 0` or when a worker already runs.
    pub fn prefetching(mut self, depth: usize) -> Self {
        if depth == 0 || self.worker.is_some() {
            return self;
        }
        let effective = depth.min(self.shared.capacity.saturating_sub(1)).max(1);
        let shared =
            Arc::get_mut(&mut self.shared).expect("no other handles before the worker spawns");
        shared.depth = effective;
        // The bounded readahead queue: announced-but-unfetched columns
        // pend here, sized at a few multiples of the depth so the
        // worker can always see a whole span's worth of upcoming
        // sequence (a plan as small as the depth starves batching — the
        // front run can never exceed what is queued). Consumers
        // announce through a sliding window (`prefetch_window`), so
        // entries dropped under pressure are simply re-announced as the
        // scan advances.
        shared.plan_cap = 4 * effective;
        let shared = Arc::clone(&self.shared);
        self.worker = Some(
            std::thread::Builder::new()
                .name("affinity-prefetch".into())
                .spawn(move || prefetch::run(&shared))
                .expect("spawn prefetch worker"),
        );
        self
    }
}

impl<B: ColumnRead> Drop for CachedStore<B> {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.work.notify_all();
            worker.join().ok();
        }
    }
}

impl<B: ColumnRead> SeriesSource for CachedStore<B> {
    fn samples(&self) -> usize {
        self.shared.backing.samples()
    }

    fn series_count(&self) -> usize {
        self.shared.backing.series_count()
    }

    fn read_into<'a>(&'a self, v: usize, buf: &'a mut Vec<f64>) -> Result<&'a [f64], SourceError> {
        let shared = &self.shared;
        {
            let mut inner = shared.lock();
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                if let Some(&slot) = inner.map.get(&v) {
                    inner.stats.hits += 1;
                    shared.touch(&mut inner, slot);
                    let s = &mut inner.slots[slot];
                    s.last_used = tick;
                    buf.clear();
                    buf.extend_from_slice(&s.data);
                    return Ok(&buf[..]);
                }
                if inner.inflight.contains(&v) {
                    // The prefetcher (or another lane) is already reading
                    // this column; wait for it instead of decoding twice.
                    inner = shared.served.wait(inner).expect("cache mutex");
                    continue;
                }
                inner.stats.misses += 1;
                inner.inflight.insert(v);
                break;
            }
        }
        // Miss: read from the backing store *outside* the lock so
        // parallel lanes overlap their I/O, then admit the column.
        let result = shared.backing.read_column(v, buf);
        let mut inner = shared.lock();
        inner.inflight.remove(&v);
        if result.is_ok() && !inner.map.contains_key(&v) {
            shared.admit(&mut inner, v, buf, false);
        }
        drop(inner);
        shared.served.notify_all();
        result?;
        Ok(&buf[..])
    }

    /// Pin series `v`: load it (evicting if needed) and protect it from
    /// eviction until unpinned. Advisory — if the column is absent and
    /// no slot could admit it (cache full of pins), the call returns
    /// without touching the backing store, and fetch correctness never
    /// depends on a pin succeeding. Pinning a column the prefetcher
    /// already brought in consumes it (a prefetch hit) instead of
    /// re-reading it.
    fn pin(&self, v: usize) {
        let shared = &self.shared;
        if v >= shared.backing.series_count() {
            return;
        }
        {
            let mut inner = shared.lock();
            loop {
                if let Some(&slot) = inner.map.get(&v) {
                    shared.touch(&mut inner, slot);
                    inner.slots[slot].pins += 1;
                    return;
                }
                // Don't pay a backing read for a column that could not
                // be admitted anyway.
                if inner.slots.len() >= shared.capacity && Shared::<B>::victim(&inner).is_none() {
                    return;
                }
                if inner.inflight.contains(&v) {
                    inner = shared.served.wait(inner).expect("cache mutex");
                    continue;
                }
                inner.inflight.insert(v);
                break;
            }
        }
        let mut buf = Vec::new();
        let result = shared.backing.read_column(v, &mut buf);
        let mut inner = shared.lock();
        inner.inflight.remove(&v);
        if result.is_ok() {
            inner.tick += 1;
            if let Some(&slot) = inner.map.get(&v) {
                inner.slots[slot].pins += 1; // raced with a concurrent fetch
            } else {
                inner.stats.misses += 1;
                shared.admit(&mut inner, v, &buf, false);
                if let Some(&slot) = inner.map.get(&v) {
                    inner.slots[slot].pins += 1;
                }
            }
        }
        // else: advisory — leave the error for the actual fetch.
        drop(inner);
        shared.served.notify_all();
    }

    fn unpin(&self, v: usize) {
        let mut inner = self.shared.lock();
        if let Some(&slot) = inner.map.get(&v) {
            let s = &mut inner.slots[slot];
            s.pins = s.pins.saturating_sub(1);
        }
    }

    /// Queue `cols` for background readahead (in announcement order).
    /// A no-op unless the cache was built with
    /// [`CachedStore::with_prefetch`]; columns already cached, already
    /// queued, already being read, or out of range are skipped. The
    /// readahead queue holds a small multiple of `depth` pending
    /// columns (enough for the worker to see whole spans of upcoming
    /// sequence).
    ///
    /// On pressure, the *nearest* announced work wins: a steady sliding
    /// window simply has its excess tail dropped (the window will offer
    /// it again), but when a full queue contains none of the
    /// announcer's first actionable column, its content is a stale past
    /// — a new pass started, or the consumer outran the worker past
    /// everything queued — and the queue restarts from this
    /// announcement. Either way one [`PrefetchStats::queue_full`] event
    /// is counted per call that discarded something.
    fn prefetch(&self, cols: &[u32]) {
        let shared = &self.shared;
        if shared.depth == 0 {
            return;
        }
        let n = shared.backing.series_count();
        let mut added = false;
        let mut dropped = false;
        {
            let mut inner = shared.lock();
            let actionable = |inner: &CacheInner, c: u32| {
                let v = c as usize;
                v < n && !inner.map.contains_key(&v) && !inner.inflight.contains(&v)
            };
            if inner.plan.len() >= shared.plan_cap {
                if let Some(&head) = cols.iter().find(|&&c| actionable(&inner, c)) {
                    // Rate limit: a restart is only allowed once the
                    // worker has fetched a depth's worth of the current
                    // plan — otherwise parallel lanes announcing
                    // disjoint windows would clear each other's plan on
                    // every call and readahead would degrade to churn.
                    let served_enough = inner.stats.prefetch.issued
                        >= inner.issued_at_restart + shared.depth as u64;
                    if !inner.planned.contains(&head) && served_enough {
                        inner.plan.clear();
                        inner.planned.clear();
                        inner.issued_at_restart = inner.stats.prefetch.issued;
                        dropped = true;
                    }
                }
            }
            for &c in cols {
                if !actionable(&inner, c) || inner.planned.contains(&c) {
                    continue;
                }
                if inner.plan.len() >= shared.plan_cap {
                    dropped = true;
                    break;
                }
                inner.plan.push_back(c);
                inner.planned.insert(c);
                added = true;
            }
            if dropped {
                inner.stats.prefetch.queue_full += 1;
            }
        }
        if added {
            shared.work.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use affinity_data::generator::{sensor_dataset, SensorConfig};
    use affinity_data::slow::SlowSource;
    use affinity_data::DataMatrix;
    use std::path::PathBuf;
    use std::time::Duration;

    fn fixture(name: &str, n: usize, m: usize) -> (DataMatrix, CachedStore, PathBuf) {
        let dir = std::env::temp_dir().join("affinity-cache-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let data = sensor_dataset(&SensorConfig::reduced(n, m));
        MatrixStore::create(&path, &data).unwrap();
        let cached = CachedStore::new(MatrixStore::open(&path).unwrap(), 3);
        (data, cached, path)
    }

    #[test]
    fn serves_correct_columns_under_churn() {
        let (data, cached, path) = fixture("churn.afn", 10, 40);
        let mut buf = Vec::new();
        // A access pattern larger than the 3-column capacity.
        for pass in 0..3 {
            for v in 0..10 {
                let got = cached.read_into((v * 7 + pass) % 10, &mut buf).unwrap();
                assert_eq!(got, data.series((v * 7 + pass) % 10));
            }
        }
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 30);
        assert!(stats.evictions > 0, "capacity 3 must evict: {stats:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repeated_access_hits_the_cache() {
        let (data, cached, path) = fixture("hits.afn", 6, 24);
        let mut buf = Vec::new();
        for _ in 0..5 {
            assert_eq!(cached.read_into(2, &mut buf).unwrap(), data.series(2));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pinned_columns_survive_eviction_pressure() {
        let (data, cached, path) = fixture("pin.afn", 8, 24);
        cached.pin(0);
        let mut buf = Vec::new();
        // Thrash the other two slots.
        for v in 1..8 {
            cached.read_into(v, &mut buf).unwrap();
        }
        let before = cached.stats();
        assert_eq!(cached.read_into(0, &mut buf).unwrap(), data.series(0));
        let after = cached.stats();
        assert_eq!(after.hits, before.hits + 1, "pinned column stayed cached");
        cached.unpin(0);
        // Now it can be evicted again.
        for v in 1..8 {
            cached.read_into(v, &mut buf).unwrap();
        }
        cached.read_into(0, &mut buf).unwrap();
        assert_eq!(cached.stats().hits, after.hits, "unpinned column evicted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_slots_pinned_degrades_to_passthrough() {
        let (data, cached, path) = fixture("allpin.afn", 8, 16);
        for v in 0..3 {
            cached.pin(v);
        }
        let mut buf = Vec::new();
        for v in 3..8 {
            assert_eq!(cached.read_into(v, &mut buf).unwrap(), data.series(v));
        }
        let stats = cached.stats();
        assert_eq!(stats.bypasses, 5);
        assert_eq!(stats.evictions, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_and_budget_helpers() {
        let (_, cached, path) = fixture("oor.afn", 4, 32);
        let mut buf = Vec::new();
        assert!(matches!(
            cached.read_into(4, &mut buf),
            Err(SourceError::OutOfRange { requested: 4, .. })
        ));
        cached.pin(99); // out of range pin is a no-op
        assert_eq!(cached.capacity(), 3);
        assert_eq!(cached.budget_bytes(), 3 * 32 * 8);
        let store = MatrixStore::open(&path).unwrap();
        let by_bytes = CachedStore::with_budget_bytes(store, 2 * 32 * 8 + 7);
        assert_eq!(by_bytes.capacity(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sub_column_budgets_clamp_to_one_slot() {
        // Regression: a byte budget smaller than one column (or zero)
        // must still yield a working single-slot cache, not capacity 0.
        let (data, _, path) = fixture("clamp.afn", 4, 32);
        for budget in [0usize, 1, 7, 32 * 8 - 1] {
            let store = MatrixStore::open(&path).unwrap();
            let tiny = CachedStore::with_budget_bytes(store, budget);
            assert_eq!(tiny.capacity(), 1, "budget {budget}");
            let mut buf = Vec::new();
            assert_eq!(tiny.read_into(2, &mut buf).unwrap(), data.series(2));
            assert_eq!(tiny.read_into(2, &mut buf).unwrap(), data.series(2));
            assert_eq!(tiny.stats().hits, 1, "single slot still caches");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_fetches_agree_with_the_data() {
        let (data, cached, path) = fixture("par.afn", 12, 48);
        let pool = affinity_par::ThreadPool::new(4);
        let cols: Vec<Vec<f64>> = pool.parallel_map(48, |i| {
            let mut buf = Vec::new();
            cached.read_into(i % 12, &mut buf).unwrap();
            buf
        });
        for (i, col) in cols.iter().enumerate() {
            assert_eq!(col, data.series(i % 12));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prefetched_columns_become_hits() {
        let data = sensor_dataset(&SensorConfig::reduced(10, 32));
        let cached = CachedStore::with_prefetch(data.clone(), 6, 4);
        assert_eq!(cached.prefetch_depth(), 4);
        let cols: Vec<u32> = (0..10).collect();
        cached.prefetch(&cols);
        let mut buf = Vec::new();
        for v in 0..10usize {
            assert_eq!(cached.read_into(v, &mut buf).unwrap(), data.series(v));
        }
        cached.quiesce();
        let stats = cached.stats();
        assert!(
            stats.prefetch.issued > 0,
            "worker must have fetched something: {stats:?}"
        );
        assert!(
            stats.hits >= stats.prefetch.hits,
            "prefetch hits are cache hits: {stats:?}"
        );
        // Everything fetched was either consumed, wasted, or is still
        // resident — the stats identity.
        assert_eq!(
            stats.prefetch.issued,
            stats.prefetch.hits + stats.prefetch.wasted + cached.prefetched_unconsumed() as u64,
            "{stats:?}"
        );
    }

    #[test]
    fn prefetch_depth_is_clamped_below_capacity() {
        let data = sensor_dataset(&SensorConfig::reduced(6, 16));
        let cached = CachedStore::with_prefetch(data, 3, 100);
        assert_eq!(cached.prefetch_depth(), 2, "clamped to capacity - 1");
        let data = sensor_dataset(&SensorConfig::reduced(6, 16));
        let cached = CachedStore::with_prefetch(data, 1, 5);
        assert_eq!(cached.prefetch_depth(), 1, "never below 1 when enabled");
        let data = sensor_dataset(&SensorConfig::reduced(6, 16));
        let cached = CachedStore::with_prefetch(data, 8, 0);
        assert_eq!(cached.prefetch_depth(), 0, "0 leaves prefetching off");
    }

    #[test]
    fn prefetch_is_a_noop_without_a_worker() {
        let (data, cached, path) = fixture("noop.afn", 6, 24);
        cached.prefetch(&[0, 1, 2, 3]);
        let mut buf = Vec::new();
        assert_eq!(cached.read_into(1, &mut buf).unwrap(), data.series(1));
        let stats = cached.stats();
        assert_eq!(stats.prefetch, PrefetchStats::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn announcements_beyond_the_queue_bound_are_counted() {
        let data = sensor_dataset(&SensorConfig::reduced(40, 8));
        // Delay keeps the worker busy so the queue actually fills.
        let slow = SlowSource::new(data, Duration::from_millis(20));
        let cached = CachedStore::with_prefetch(slow, 4, 2);
        // The readahead queue holds `depth = 2` pending columns; a
        // 40-column announcement must overflow it immediately.
        let all: Vec<u32> = (0..40).collect();
        cached.prefetch(&all);
        assert!(
            cached.stats().prefetch.queue_full > 0,
            "a 40-column announcement must overflow a depth-2 queue: {:?}",
            cached.stats()
        );
    }

    #[test]
    fn wasted_prefetches_are_counted_under_thrash() {
        let data = sensor_dataset(&SensorConfig::reduced(12, 16));
        let cached = CachedStore::with_prefetch(data.clone(), 3, 2);
        let mut buf = Vec::new();
        // Announce one thing, read other things: the prefetched columns
        // get evicted untouched by the consumer's own misses.
        let mut stats = cached.stats();
        for round in 0..50u32 {
            let a = (round * 2) % 11;
            cached.prefetch(&[a, a + 1]);
            cached.quiesce();
            for v in 0..12usize {
                if v % 2 == 1 && v != a as usize && v != a as usize + 1 {
                    cached.read_into(v, &mut buf).unwrap();
                }
            }
            stats = cached.stats();
            if stats.prefetch.wasted > 0 {
                break;
            }
        }
        assert!(
            stats.prefetch.wasted > 0,
            "thrashing an announced-but-unread column must waste: {stats:?}"
        );
        // The stats identity still holds under waste.
        cached.quiesce();
        let stats = cached.stats();
        assert_eq!(
            stats.prefetch.issued,
            stats.prefetch.hits + stats.prefetch.wasted + cached.prefetched_unconsumed() as u64,
            "{stats:?}"
        );
    }
}

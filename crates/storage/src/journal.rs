//! Append-only delta journal with per-record CRC and torn-tail recovery.
//!
//! The journal is the write-ahead half of the snapshot + journal
//! persistence design: each streaming delta is appended (and fsync'd)
//! *before* it is applied in memory, so a crash at any instant loses at
//! most work that was never acknowledged. Layout (little-endian):
//!
//! ```text
//! magic    8 bytes  "AFJRNL01"
//! version  u32
//! bound_id u64      snapshot_id of the base snapshot
//! records  { len u32, crc u32, payload len bytes }*
//! ```
//!
//! `bound_id` ties the journal to exactly one base snapshot
//! ([`crate::Snapshot::snapshot_id`]). Recovery uses it to detect the
//! crash-between-checkpoint-and-journal-reset window: if a fresh
//! snapshot was published but the process died before starting the new
//! journal, the old journal's `bound_id` no longer matches and its
//! records — already folded into the snapshot — are discarded instead
//! of double-applied.
//!
//! ## Replay semantics
//!
//! [`replay`] returns the **valid prefix**: scanning stops at the first
//! record whose length prefix overruns the file or whose CRC fails —
//! the classic torn-tail rule (a crashed append leaves a half-written
//! last record). Everything before that point is intact by CRC;
//! everything after it is unreachable because records are
//! length-prefixed and a corrupt length destroys resynchronization.
//! The reader reports how many bytes it dropped so recovery can log it
//! and [`JournalWriter::open_append`] truncates them before appending
//! again — silent data loss is never an option, torn tails are
//! *reported* loss.

use crate::crc::crc32;
use crate::failpoint::{FailMode, FailpointWriter, INJECTED_MSG};
use crate::layout::{le_u32, le_u64};
use crate::snapshot::PersistError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"AFJRNL01";
/// Fixed header bytes before the first record.
pub const JOURNAL_HEADER_LEN: u64 = 8 + 4 + 8;
/// Bytes of framing per record (len u32 + crc u32).
pub const RECORD_OVERHEAD: u64 = 8;

/// Append handle on a journal file. Every append is fsync'd before it
/// returns — the write-ahead contract the streaming engine relies on.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    bound_id: u64,
}

impl JournalWriter {
    /// Create (truncate) a journal bound to snapshot `bound_id`,
    /// fsync'ing the header and the parent directory.
    ///
    /// # Errors
    /// I/O failures.
    pub fn create<P: AsRef<Path>>(path: P, bound_id: u64) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
        file.write_all(&bound_id.to_le_bytes())?;
        file.sync_all()?;
        if let Some(parent) = path.parent() {
            let parent = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(dir) = OpenOptions::new().read(true).open(parent) {
                dir.sync_all()?;
            }
        }
        Ok(JournalWriter {
            file,
            path,
            bound_id,
        })
    }

    /// Reopen an existing journal for appending after recovery:
    /// truncates to `valid_len` (discarding a torn tail reported by
    /// [`replay`]) and positions at the new end.
    ///
    /// # Errors
    /// I/O failures.
    pub fn open_append<P: AsRef<Path>>(
        path: P,
        bound_id: u64,
        valid_len: u64,
    ) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        let mut w = JournalWriter {
            file,
            path,
            bound_id,
        };
        w.file.seek(SeekFrom::Start(valid_len))?;
        Ok(w)
    }

    /// The snapshot id this journal is bound to.
    pub fn bound_id(&self) -> u64 {
        self.bound_id
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (`len | crc | payload`) and fsync it.
    ///
    /// # Errors
    /// I/O failures.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        self.append_with(payload, None)
    }

    /// [`JournalWriter::append`] with a scripted [`FailMode`] whose
    /// offsets are relative to this record's first framing byte.
    ///
    /// `CutAt` aborts with [`PersistError::Injected`], leaving the torn
    /// record on disk; `ShortAt` / `FlipBitAt` model lying media — the
    /// append "succeeds" and the damage waits for [`replay`]. After an
    /// injected fault the writer must be dropped (the crash it
    /// simulates would have killed the process).
    ///
    /// # Errors
    /// [`PersistError::Injected`] for `CutAt`; real I/O failures
    /// otherwise.
    pub fn append_with(
        &mut self,
        payload: &[u8],
        fault: Option<FailMode>,
    ) -> Result<(), PersistError> {
        let mut record = Vec::with_capacity(payload.len() + RECORD_OVERHEAD as usize);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        let mut w = FailpointWriter::new(&self.file, fault);
        match w.write_all(&record).and_then(|()| w.flush()) {
            Ok(()) => {}
            Err(e) if w.tripped() => {
                // afflint: allow(panic) -- debug-only check that the error is our scripted fault; the append path sees no untrusted bytes
                debug_assert_eq!(e.to_string(), INJECTED_MSG);
                // Make the torn bytes durable, as a real crash after a
                // partial write + device flush would.
                self.file.sync_all()?;
                return Err(PersistError::Injected);
            }
            Err(e) => return Err(e.into()),
        }
        self.file.sync_all()?;
        Ok(())
    }
}

/// The outcome of scanning a journal: its binding, the records of the
/// valid prefix, and how much torn tail was dropped.
#[derive(Debug)]
pub struct JournalReplay {
    /// `bound_id` from the header — which snapshot these deltas extend.
    pub bound_id: u64,
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// File length of the valid prefix (header + intact records); pass
    /// to [`JournalWriter::open_append`] to truncate the tail.
    pub valid_len: u64,
    /// Bytes past `valid_len` that failed framing or CRC checks.
    pub torn_bytes: u64,
}

/// Scan a journal file and return its valid prefix (see module docs).
///
/// # Errors
/// [`PersistError::BadMagic`] / [`PersistError::UnsupportedVersion`] /
/// [`PersistError::Corrupt`] if the 20-byte header itself is unusable
/// (a journal that crashed during creation), I/O errors otherwise.
/// Torn or bit-rotted *records* are not errors: they end the valid
/// prefix and are reported via [`JournalReplay::torn_bytes`].
pub fn replay<P: AsRef<Path>>(path: P) -> Result<JournalReplay, PersistError> {
    let mut f = File::open(path.as_ref())?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.len() < JOURNAL_HEADER_LEN as usize {
        return Err(PersistError::Corrupt(format!(
            "journal shorter than its {JOURNAL_HEADER_LEN}-byte header ({} bytes)",
            bytes.len()
        )));
    }
    if bytes.get(..8) != Some(MAGIC.as_slice()) {
        return Err(PersistError::BadMagic);
    }
    let truncated = || PersistError::Corrupt("journal header truncated".into());
    let version = le_u32(&bytes, 8).ok_or_else(truncated)?;
    if version != JOURNAL_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let bound_id = le_u64(&bytes, 12).ok_or_else(truncated)?;
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN as usize;
    loop {
        let remaining = bytes.len().saturating_sub(pos);
        if remaining < RECORD_OVERHEAD as usize {
            break; // torn framing (or clean EOF when remaining == 0)
        }
        // Framing fields via the bounds-checked LE readers; any read
        // past the end is a torn tail, never a panic.
        let Some(len) = le_u32(&bytes, pos).map(|v| v as usize) else {
            break;
        };
        let Some(crc) = le_u32(&bytes, pos.saturating_add(4)) else {
            break;
        };
        if len > remaining.saturating_sub(RECORD_OVERHEAD as usize) {
            break; // torn payload, or a corrupted length prefix
        }
        let Some(payload) = pos
            .checked_add(8)
            .and_then(|s| Some(s..s.checked_add(len)?))
            .and_then(|range| bytes.get(range))
        else {
            break;
        };
        if crc32(payload) != crc {
            break; // bit rot (or a corrupted length that "fits")
        }
        records.push(payload.to_vec());
        // afflint: allow(len-arith) -- pos advances over a payload range `bytes.get` just proved in-bounds; cannot overflow usize
        pos += RECORD_OVERHEAD as usize + len;
    }
    Ok(JournalReplay {
        bound_id,
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("affinity-journal-tests-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_records() {
        let path = tmp("roundtrip.jrnl");
        let mut w = JournalWriter::create(&path, 42).unwrap();
        w.append(b"first").unwrap();
        w.append(b"").unwrap();
        w.append(&[7u8; 200]).unwrap();
        let rp = replay(&path).unwrap();
        assert_eq!(rp.bound_id, 42);
        assert_eq!(rp.records.len(), 3);
        assert_eq!(rp.records[0], b"first");
        assert_eq!(rp.records[1], b"");
        assert_eq!(rp.records[2], vec![7u8; 200]);
        assert_eq!(rp.torn_bytes, 0);
        assert_eq!(rp.valid_len, fs::metadata(&path).unwrap().len());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_reported() {
        let path = tmp("torn.jrnl");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        w.append(b"keep me").unwrap();
        let keep_len = fs::metadata(&path).unwrap().len();
        // Crash cutting the next record: once inside the framing, once
        // inside the payload.
        for cut in [3u64, 11] {
            let err = w
                .append_with(b"torn record", Some(FailMode::CutAt(cut)))
                .unwrap_err();
            assert!(matches!(err, PersistError::Injected));
            let rp = replay(&path).unwrap();
            assert_eq!(rp.records.len(), 1, "cut at {cut}");
            assert_eq!(rp.valid_len, keep_len);
            assert_eq!(rp.torn_bytes, cut);
            // Recovery: truncate and keep appending.
            w = JournalWriter::open_append(&path, 1, rp.valid_len).unwrap();
        }
        w.append(b"after recovery").unwrap();
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 2);
        assert_eq!(rp.records[1], b"after recovery");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_rot_ends_the_valid_prefix() {
        let path = tmp("rot.jrnl");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        w.append(b"record zero").unwrap();
        let rot_from = fs::metadata(&path).unwrap().len();
        w.append(b"record one").unwrap();
        w.append(b"record two").unwrap();
        // Flip one payload bit in record one: it and everything after
        // it (no resync possible) drop out of the valid prefix.
        let mut bytes = fs::read(&path).unwrap();
        let off = rot_from as usize + RECORD_OVERHEAD as usize + 2;
        bytes[off] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 1);
        assert_eq!(rp.valid_len, rot_from);
        assert!(rp.torn_bytes > 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn lying_short_append_is_a_torn_tail() {
        let path = tmp("lying.jrnl");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        w.append(b"good").unwrap();
        let good_len = fs::metadata(&path).unwrap().len();
        // Media acknowledges the append but only 5 bytes landed.
        w.append_with(b"vanishing", Some(FailMode::ShortAt(5)))
            .unwrap();
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 1);
        assert_eq!(rp.valid_len, good_len);
        assert_eq!(rp.torn_bytes, 5);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_length_prefix_cannot_oom() {
        let path = tmp("hugelen.jrnl");
        let mut w = JournalWriter::create(&path, 1).unwrap();
        w.append(b"ok").unwrap();
        let start = fs::metadata(&path).unwrap().len();
        w.append(b"victim").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[start as usize..start as usize + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records.len(), 1);
        assert_eq!(rp.valid_len, start);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unusable_headers_are_typed_errors() {
        let path = tmp("hdr.jrnl");
        fs::write(&path, b"short").unwrap();
        assert!(matches!(replay(&path), Err(PersistError::Corrupt(_))));
        fs::write(&path, b"NOTJRNL_____________").unwrap();
        assert!(matches!(replay(&path), Err(PersistError::BadMagic)));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            replay(&path),
            Err(PersistError::UnsupportedVersion(99))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_journal_replays_empty() {
        let path = tmp("empty.jrnl");
        JournalWriter::create(&path, 5).unwrap();
        let rp = replay(&path).unwrap();
        assert_eq!(rp.bound_id, 5);
        assert!(rp.records.is_empty());
        assert_eq!(rp.torn_bytes, 0);
        fs::remove_file(&path).ok();
    }
}

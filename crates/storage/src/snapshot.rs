//! Versioned, CRC'd section-container snapshots with atomic commit.
//!
//! A snapshot file is a flat container of opaque byte sections, each
//! identified by a caller-chosen `u32` id and protected by its own
//! CRC32 — the model layers above (affine set, index, data window)
//! each own one section and this crate never interprets their bytes.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes  "AFSNAP01"
//! version      u32
//! generation   u64      caller's checkpoint counter
//! snapshot_id  u64      FNV-1a fold of generation + section table
//! section_cnt  u32
//! table        cnt × { id u32, len u64, crc u32 }
//! payloads     concatenated section bytes
//! ```
//!
//! The `snapshot_id` is deterministic (no clocks, no randomness): it
//! folds the generation and every table entry, so it both fingerprints
//! the snapshot for journal binding ([`crate::JournalWriter`]) and
//! doubles as a checksum over the header's length fields — a bit flip
//! in the table is caught before any payload is read.
//!
//! ## Commit protocol
//!
//! [`SnapshotWriter::commit`] never exposes a half-written snapshot:
//!
//! 1. serialize everything to `path + ".tmp"`,
//! 2. `fsync` the staged file,
//! 3. atomically rename it over `path`,
//! 4. `fsync` the parent directory (durability of the rename itself).
//!
//! A crash before step 3 leaves the previous snapshot untouched; after
//! step 3 the new one is complete. There is no instant at which `path`
//! names a torn file. [`SnapshotWriter::commit_with`] drives the same
//! code with a scripted [`CommitFault`] so the crash-matrix suite can
//! stop the protocol at every stage.
//!
//! Reading ([`Snapshot::open`]) follows the crate's header-validation
//! rule: every length is checked against the real file size with
//! checked arithmetic ([`crate::layout::SizeCheck`]) *before* any
//! size-dependent allocation.

use crate::crc::crc32;
use crate::failpoint::{CommitFault, FailpointWriter, INJECTED_MSG};
use crate::layout::{le_u32, le_u64, SizeCheck};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Current snapshot container format version.
pub const SNAPSHOT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"AFSNAP01";
/// Fixed header bytes before the section table.
const HEADER_LEN: u64 = 8 + 4 + 8 + 8 + 4;
/// Bytes per section-table entry (id u32 + len u64 + crc u32).
const TABLE_ENTRY_LEN: u64 = 16;

/// Errors raised by the persistence layer (snapshots and journals).
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// Unsupported container format version.
    UnsupportedVersion(u32),
    /// A checksum did not match; carries a description of the block.
    ChecksumMismatch(String),
    /// Structurally invalid file (truncated, inconsistent lengths, …).
    Corrupt(String),
    /// A scripted [`CommitFault`] stopped the commit protocol — the
    /// test-only stand-in for "the machine lost power here".
    Injected,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not an AFSNAP/AFJRNL file"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported persist format version {v}")
            }
            PersistError::ChecksumMismatch(what) => write!(f, "checksum mismatch in {what}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persist file: {msg}"),
            PersistError::Injected => write!(f, "{INJECTED_MSG}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Deterministic FNV-1a 64-bit fold used for [`Snapshot::snapshot_id`].
#[derive(Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn fold_id(generation: u64, table: &[(u32, u64, u32)]) -> u64 {
    let mut h = Fnv64::new();
    h.update(&generation.to_le_bytes());
    for &(id, len, crc) in table {
        h.update(&id.to_le_bytes());
        h.update(&len.to_le_bytes());
        h.update(&crc.to_le_bytes());
    }
    h.0
}

/// The staged-file sibling `commit` writes before the atomic rename.
/// Exposed so recovery paths can sweep a leftover staged file and tests
/// can inspect mid-protocol states.
pub fn staged_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Builder for one snapshot file: add sections, then commit atomically.
#[derive(Debug)]
pub struct SnapshotWriter {
    generation: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Start a snapshot for checkpoint counter `generation`.
    pub fn new(generation: u64) -> Self {
        SnapshotWriter {
            generation,
            sections: Vec::new(),
        }
    }

    /// Append one section. Ids must be unique per snapshot; the reader
    /// rejects duplicates.
    pub fn section(&mut self, id: u32, bytes: Vec<u8>) -> &mut Self {
        self.sections.push((id, bytes));
        self
    }

    fn serialize(&self) -> (Vec<u8>, u64) {
        let table: Vec<(u32, u64, u32)> = self
            .sections
            .iter()
            .map(|(id, bytes)| (*id, bytes.len() as u64, crc32(bytes)))
            .collect();
        let id = fold_id(self.generation, &table);
        let payload: usize = self.sections.iter().map(|(_, b)| b.len()).sum();
        let mut out = Vec::with_capacity(
            // afflint: allow(len-arith) -- writer-side capacity hint over in-memory sections we just built, not header-declared sizes
            HEADER_LEN as usize + table.len() * TABLE_ENTRY_LEN as usize + payload,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(table.len() as u32).to_le_bytes());
        for &(sid, len, crc) in &table {
            out.extend_from_slice(&sid.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(&crc.to_le_bytes());
        }
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
        }
        (out, id)
    }

    /// Atomically commit the snapshot to `path` (staged write → fsync →
    /// rename → directory sync) and return its `snapshot_id`.
    ///
    /// # Errors
    /// I/O failures; the target is either the previous snapshot or the
    /// new one, never a torn file.
    pub fn commit<P: AsRef<Path>>(&self, path: P) -> Result<u64, PersistError> {
        self.commit_with(path, None)
    }

    /// [`SnapshotWriter::commit`] with a scripted [`CommitFault`].
    ///
    /// `CutAt` and the between-steps faults abort the protocol with
    /// [`PersistError::Injected`], leaving the filesystem exactly as a
    /// crash at that instant would. `ShortAt` / `FlipBitAt` model media
    /// that lies: the protocol runs to completion "successfully" and
    /// the damage is only discoverable by [`Snapshot::open`].
    ///
    /// # Errors
    /// [`PersistError::Injected`] when the scripted fault aborts the
    /// protocol; real I/O failures as for `commit`.
    pub fn commit_with<P: AsRef<Path>>(
        &self,
        path: P,
        fault: Option<CommitFault>,
    ) -> Result<u64, PersistError> {
        let path = path.as_ref();
        let (bytes, id) = self.serialize();
        let tmp = staged_path(path);
        let file = File::create(&tmp)?;
        let write_mode = match fault {
            Some(CommitFault::DuringWrite(mode)) => Some(mode),
            _ => None,
        };
        let mut w = FailpointWriter::new(&file, write_mode);
        match w.write_all(&bytes).and_then(|()| w.flush()) {
            Ok(()) => {}
            Err(e) if w.tripped() => {
                // Injected power cut mid-write: the torn staged file
                // stays on disk, exactly as a crash would leave it.
                // afflint: allow(panic) -- debug-only check that the error is our scripted fault; the writer path sees no untrusted bytes
                debug_assert_eq!(e.to_string(), INJECTED_MSG);
                return Err(PersistError::Injected);
            }
            Err(e) => return Err(e.into()),
        }
        if matches!(fault, Some(CommitFault::BeforeSync)) {
            return Err(PersistError::Injected);
        }
        file.sync_all()?;
        if matches!(fault, Some(CommitFault::BeforeRename)) {
            return Err(PersistError::Injected);
        }
        fs::rename(&tmp, path)?;
        if matches!(fault, Some(CommitFault::AfterRename)) {
            return Err(PersistError::Injected);
        }
        sync_parent_dir(path)?;
        Ok(id)
    }
}

/// Best-effort fsync of `path`'s parent directory so the rename that
/// published `path` is itself durable. On platforms where directories
/// cannot be opened for sync this is a no-op.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = OpenOptions::new().read(true).open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

/// A fully validated, in-memory snapshot: every header length was
/// checked against the real file size before allocation and every
/// section CRC verified eagerly at open.
#[derive(Debug)]
pub struct Snapshot {
    generation: u64,
    id: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// Open and fully validate a snapshot file.
    ///
    /// # Errors
    /// See [`PersistError`]. Corrupted length fields are rejected by
    /// the checked whole-file size comparison before any allocation.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let mut f = File::open(path.as_ref())?;
        let file_len = f.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        if file_len < HEADER_LEN {
            return Err(PersistError::Corrupt(format!(
                "snapshot shorter than its {HEADER_LEN}-byte header ({file_len} bytes)"
            )));
        }
        f.read_exact(&mut header)?;
        if header.get(..8) != Some(MAGIC.as_slice()) {
            return Err(PersistError::BadMagic);
        }
        // Header fields via the shared bounds-checked LE readers — the
        // header array is fixed-size, so a `None` here is unreachable,
        // but the decode path stays panic-free by construction.
        let truncated = || PersistError::Corrupt("snapshot header truncated".into());
        let version = le_u32(&header, 8).ok_or_else(truncated)?;
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let generation = le_u64(&header, 12).ok_or_else(truncated)?;
        let stored_id = le_u64(&header, 20).ok_or_else(truncated)?;
        let count = le_u32(&header, 28).ok_or_else(truncated)? as u64;
        // The table must fit before we allocate it.
        SizeCheck::new()
            .add(HEADER_LEN)
            .add_mul(count, TABLE_ENTRY_LEN)
            .promised()
            .filter(|&t| t <= file_len)
            .ok_or_else(|| {
                PersistError::Corrupt(format!("section table ({count} entries) exceeds file"))
            })?;
        let table_len = count
            .checked_mul(TABLE_ENTRY_LEN)
            .ok_or_else(|| PersistError::Corrupt("section table size overflow".into()))?;
        let mut table_bytes = vec![0u8; table_len as usize];
        f.read_exact(&mut table_bytes)?;
        let mut table = Vec::with_capacity(count as usize);
        for entry in table_bytes.chunks_exact(TABLE_ENTRY_LEN as usize) {
            let id = le_u32(entry, 0).ok_or_else(truncated)?;
            let len = le_u64(entry, 4).ok_or_else(truncated)?;
            let crc = le_u32(entry, 12).ok_or_else(truncated)?;
            table.push((id, len, crc));
        }
        // Whole-file size check from the header alone, before any
        // payload allocation (shared checked-arithmetic helper).
        let mut check = SizeCheck::new()
            .add(HEADER_LEN)
            .add_mul(count, TABLE_ENTRY_LEN);
        for &(_, len, _) in &table {
            check = check.add(len);
        }
        check
            .require(file_len, "snapshot header")
            .map_err(PersistError::Corrupt)?;
        // The snapshot id folds the table, so it certifies the length
        // fields the size check just used — a flipped table bit cannot
        // masquerade as a shorter-but-consistent layout.
        if fold_id(generation, &table) != stored_id {
            return Err(PersistError::ChecksumMismatch("snapshot header".into()));
        }
        let mut sections = Vec::with_capacity(table.len());
        for (i, &(id, len, crc)) in table.iter().enumerate() {
            if sections.iter().any(|(other, _)| *other == id) {
                return Err(PersistError::Corrupt(format!("duplicate section id {id}")));
            }
            let mut bytes = vec![0u8; len as usize];
            f.read_exact(&mut bytes)?;
            if crc32(&bytes) != crc {
                return Err(PersistError::ChecksumMismatch(format!(
                    "section {id} (#{i})"
                )));
            }
            sections.push((id, bytes));
        }
        // The size check above guarantees we are at EOF here.
        // afflint: allow(panic) -- debug-only; unreachable for any input: SizeCheck::require proved header+table+sections == file_len
        debug_assert_eq!(f.stream_position()?, file_len);
        Ok(Snapshot {
            generation,
            id: stored_id,
            sections,
        })
    }

    /// The checkpoint counter this snapshot was committed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Deterministic fingerprint of this snapshot; journals bind to it.
    pub fn snapshot_id(&self) -> u64 {
        self.id
    }

    /// Borrow a section's bytes by id, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, b)| b.as_slice())
    }

    /// All sections in file order.
    pub fn sections(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.sections.iter().map(|(id, b)| (*id, b.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailMode;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("affinity-snapshot-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_writer() -> SnapshotWriter {
        let mut w = SnapshotWriter::new(7);
        w.section(1, b"affine set bytes".to_vec());
        w.section(2, vec![0u8; 300]);
        w.section(9, b"".to_vec());
        w
    }

    #[test]
    fn roundtrip_sections() {
        let path = tmp("roundtrip.snap");
        let id = sample_writer().commit(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.generation(), 7);
        assert_eq!(snap.snapshot_id(), id);
        assert_eq!(snap.section(1).unwrap(), b"affine set bytes");
        assert_eq!(snap.section(2).unwrap().len(), 300);
        assert_eq!(snap.section(9).unwrap(), b"");
        assert!(snap.section(3).is_none());
        assert_eq!(snap.sections().count(), 3);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_id_is_deterministic_and_content_sensitive() {
        let (_, id1) = sample_writer().serialize();
        let (_, id2) = sample_writer().serialize();
        assert_eq!(id1, id2);
        let mut other = SnapshotWriter::new(7);
        other.section(1, b"affine set bytez".to_vec());
        other.section(2, vec![0u8; 300]);
        other.section(9, b"".to_vec());
        let (_, id3) = other.serialize();
        assert_ne!(id1, id3, "payload change must change the id");
        let (_, id4) = {
            let mut w = sample_writer();
            w.generation = 8;
            w.serialize()
        };
        assert_ne!(id1, id4, "generation change must change the id");
    }

    #[test]
    fn commit_replaces_previous_snapshot_atomically() {
        let path = tmp("replace.snap");
        sample_writer().commit(&path).unwrap();
        let mut w2 = SnapshotWriter::new(8);
        w2.section(1, b"second".to_vec());
        w2.commit(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.generation(), 8);
        assert_eq!(snap.section(1).unwrap(), b"second");
        assert!(
            !staged_path(&path).exists(),
            "staged file cleaned by rename"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn cut_during_write_leaves_previous_snapshot_intact() {
        let path = tmp("cut.snap");
        sample_writer().commit(&path).unwrap();
        let mut w2 = SnapshotWriter::new(8);
        w2.section(1, b"newer".to_vec());
        let err = w2
            .commit_with(&path, Some(CommitFault::DuringWrite(FailMode::CutAt(10))))
            .unwrap_err();
        assert!(matches!(err, PersistError::Injected), "{err:?}");
        // The published snapshot is still generation 7, torn bytes are
        // confined to the staged sibling.
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.generation(), 7);
        assert_eq!(fs::metadata(staged_path(&path)).unwrap().len(), 10);
        fs::remove_file(&path).ok();
        fs::remove_file(staged_path(&path)).ok();
    }

    #[test]
    fn lying_short_write_is_caught_at_open() {
        let path = tmp("short.snap");
        // No previous snapshot: the lying commit publishes a torn file.
        let res = sample_writer()
            .commit_with(&path, Some(CommitFault::DuringWrite(FailMode::ShortAt(40))));
        assert!(res.is_ok(), "lying media reports success");
        let err = Snapshot::open(&path).unwrap_err();
        assert!(
            matches!(err, PersistError::Corrupt(_) | PersistError::Io(_)),
            "{err:?}"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn in_flight_bit_flip_is_caught_at_open() {
        let path = tmp("flip.snap");
        let len = sample_writer().serialize().0.len() as u64;
        for offset in [0u64, 9, 13, 21, 29, 33, 40, len - 1] {
            sample_writer()
                .commit_with(
                    &path,
                    Some(CommitFault::DuringWrite(FailMode::FlipBitAt {
                        offset,
                        bit: (offset % 8) as u8,
                    })),
                )
                .unwrap();
            let err = Snapshot::open(&path).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::BadMagic
                        | PersistError::UnsupportedVersion(_)
                        | PersistError::ChecksumMismatch(_)
                        | PersistError::Corrupt(_)
                ),
                "offset {offset}: {err:?}"
            );
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn between_step_faults_leave_recoverable_states() {
        for fault in [
            CommitFault::BeforeSync,
            CommitFault::BeforeRename,
            CommitFault::AfterRename,
        ] {
            let path = tmp(&format!("stage-{fault:?}.snap"));
            sample_writer().commit(&path).unwrap();
            let mut w2 = SnapshotWriter::new(8);
            w2.section(1, b"newer".to_vec());
            let err = w2.commit_with(&path, Some(fault)).unwrap_err();
            assert!(matches!(err, PersistError::Injected));
            let snap = Snapshot::open(&path).unwrap();
            match fault {
                // Rename never ran: previous snapshot still published.
                CommitFault::BeforeSync | CommitFault::BeforeRename => {
                    assert_eq!(snap.generation(), 7, "{fault:?}");
                    assert!(staged_path(&path).exists());
                }
                // Rename ran: the new snapshot is published and valid.
                CommitFault::AfterRename => {
                    assert_eq!(snap.generation(), 8);
                    assert!(!staged_path(&path).exists());
                }
                CommitFault::DuringWrite(_) => unreachable!(),
            }
            fs::remove_file(&path).ok();
            fs::remove_file(staged_path(&path)).ok();
        }
    }

    #[test]
    fn absurd_section_count_is_rejected_without_allocation() {
        let path = tmp("absurd-count.snap");
        sample_writer().commit(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn absurd_section_length_is_rejected_without_allocation() {
        let path = tmp("absurd-len.snap");
        sample_writer().commit(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // First table entry's len field lives at header + 4.
        let off = HEADER_LEN as usize + 4;
        bytes[off..off + 8].copy_from_slice(&(u64::MAX - 9).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_section_ids_are_rejected() {
        let path = tmp("dup.snap");
        let mut w = SnapshotWriter::new(1);
        w.section(5, b"a".to_vec());
        w.section(5, b"b".to_vec());
        w.commit(&path).unwrap();
        assert!(matches!(
            Snapshot::open(&path),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        assert!(PersistError::BadMagic.to_string().contains("AFSNAP"));
        assert!(PersistError::Injected.to_string().contains("injected"));
        assert!(PersistError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
    }
}

//! Fault-injection I/O for crash-safety testing.
//!
//! The persistence layer's correctness claim is not "writes succeed"
//! but "any prefix of the commit protocol leaves a recoverable state".
//! To test that claim the crash-matrix suite needs to *produce* those
//! prefixes deterministically: cut power after byte `k`, acknowledge a
//! write that never reached the platter, flip a bit in flight.
//!
//! [`FailpointWriter`] wraps any [`Write`] sink and applies one scripted
//! [`FailMode`] at an exact byte offset, leaving the sink's contents
//! exactly as a real crash would. [`CommitFault`] names the coarser
//! protocol stages of the snapshot commit (staged write → fsync →
//! rename → directory sync) so a test can stop the protocol *between*
//! steps, not just mid-write.
//!
//! This is the durability sibling of `affinity_data`'s `SlowSource`:
//! both are deterministic adversaries baked into the library so the
//! test suite scripts failure instead of hoping for it.

use std::io::{self, Write};

/// A scripted write-path fault, positioned by absolute byte offset
/// within the stream written through one [`FailpointWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Power cut after exactly `k` bytes: the first `k` bytes reach the
    /// sink, every write past them fails with an injected I/O error.
    CutAt(u64),
    /// Lying short write: the first `k` bytes reach the sink, the rest
    /// are silently dropped while the writer keeps reporting success —
    /// the "acknowledged but lost" firmware failure.
    ShortAt(u64),
    /// Flip bit `bit` (0–7) of the byte at stream offset `offset` on
    /// its way to the sink — in-flight bit rot.
    FlipBitAt {
        /// Absolute stream offset of the corrupted byte.
        offset: u64,
        /// Which bit (0–7) to flip.
        bit: u8,
    },
}

/// The message carried by injected I/O errors; tests can match on it to
/// tell a scripted crash from a real environmental failure.
pub const INJECTED_MSG: &str = "failpoint: injected power cut";

fn injected_error() -> io::Error {
    io::Error::other(INJECTED_MSG)
}

/// A [`Write`] wrapper that applies one [`FailMode`] at its scripted
/// byte offset and otherwise forwards everything to the inner sink.
#[derive(Debug)]
pub struct FailpointWriter<W: Write> {
    inner: W,
    mode: Option<FailMode>,
    written: u64,
    tripped: bool,
}

impl<W: Write> FailpointWriter<W> {
    /// Wrap `inner`; `mode: None` makes this a transparent passthrough.
    pub fn new(inner: W, mode: Option<FailMode>) -> Self {
        FailpointWriter {
            inner,
            mode,
            written: 0,
            tripped: false,
        }
    }

    /// Whether the scripted fault has fired yet.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Bytes accepted so far (as seen by the caller, including bytes a
    /// [`FailMode::ShortAt`] silently dropped).
    pub fn stream_position(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        match self.mode {
            None => {
                let n = self.inner.write(buf)?;
                self.written += n as u64;
                Ok(n)
            }
            Some(FailMode::CutAt(k)) => {
                if self.written >= k {
                    self.tripped = true;
                    return Err(injected_error());
                }
                // Let the allowed prefix through; the next call trips.
                let allowed = ((k - self.written) as usize).min(buf.len());
                let n = self.inner.write(&buf[..allowed])?;
                self.written += n as u64;
                Ok(n)
            }
            Some(FailMode::ShortAt(k)) => {
                if self.written < k {
                    let allowed = ((k - self.written) as usize).min(buf.len());
                    self.inner.write_all(&buf[..allowed])?;
                } else {
                    self.tripped = true;
                }
                if self.written + buf.len() as u64 > k {
                    self.tripped = true;
                }
                // Lie: report the whole buffer as written.
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
            Some(FailMode::FlipBitAt { offset, bit }) => {
                let start = self.written;
                let end = start + buf.len() as u64;
                if offset >= start && offset < end {
                    let mut owned = buf.to_vec();
                    owned[(offset - start) as usize] ^= 1u8 << (bit & 7);
                    self.tripped = true;
                    self.inner.write_all(&owned)?;
                } else {
                    self.inner.write_all(buf)?;
                }
                self.written += buf.len() as u64;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A scripted stop inside the snapshot commit protocol
/// (staged write → fsync → atomic rename → directory sync).
///
/// `DuringWrite` composes with any [`FailMode`] for byte-exact faults;
/// the remaining variants abandon the protocol *between* steps, leaving
/// the filesystem exactly as a crash at that instant would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitFault {
    /// Apply a [`FailMode`] to the staged-file write itself.
    DuringWrite(FailMode),
    /// Crash after the staged file is fully written but before `fsync`:
    /// its contents may be anything from empty to complete.
    BeforeSync,
    /// Crash after `fsync` but before the atomic rename: a complete,
    /// durable staged file that was never published.
    BeforeRename,
    /// Crash after the rename but before the parent-directory sync: the
    /// publish happened, only its durability is in question.
    AfterRename,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_when_unarmed() {
        let mut w = FailpointWriter::new(Vec::new(), None);
        w.write_all(b"hello").unwrap();
        w.write_all(b" world").unwrap();
        assert!(!w.tripped());
        assert_eq!(w.stream_position(), 11);
        assert_eq!(w.into_inner(), b"hello world");
    }

    #[test]
    fn cut_at_stops_exactly_there() {
        for k in 0..=12u64 {
            let mut w = FailpointWriter::new(Vec::new(), Some(FailMode::CutAt(k)));
            let r = w.write_all(b"0123456789ab");
            if k < 12 {
                let e = r.unwrap_err();
                assert_eq!(e.to_string(), INJECTED_MSG);
                assert!(w.tripped());
            } else {
                r.unwrap();
                assert!(!w.tripped());
            }
            let inner = w.into_inner();
            assert_eq!(inner.len() as u64, k.min(12), "cut at {k}");
            assert_eq!(&inner[..], &b"0123456789ab"[..inner.len()]);
        }
    }

    #[test]
    fn short_at_lies_about_success() {
        let mut w = FailpointWriter::new(Vec::new(), Some(FailMode::ShortAt(4)));
        w.write_all(b"0123456789").unwrap(); // reports success
        w.write_all(b"more").unwrap();
        assert!(w.tripped());
        assert_eq!(w.into_inner(), b"0123");
    }

    #[test]
    fn flip_bit_corrupts_one_bit() {
        for (offset, bit) in [(0u64, 0u8), (5, 7), (9, 3)] {
            let mut w = FailpointWriter::new(Vec::new(), Some(FailMode::FlipBitAt { offset, bit }));
            // Split across two writes to exercise offset accounting.
            w.write_all(b"01234").unwrap();
            w.write_all(b"56789").unwrap();
            assert!(w.tripped());
            let got = w.into_inner();
            let mut want = b"0123456789".to_vec();
            want[offset as usize] ^= 1 << bit;
            assert_eq!(got, want, "offset {offset} bit {bit}");
        }
    }
}

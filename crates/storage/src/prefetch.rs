//! The background column prefetcher behind [`CachedStore`](crate::CachedStore).
//!
//! The model-construction kernels know their column access pattern
//! ahead of every pass (AFCLST scans `0..n`, a SYMEX fit group scans
//! its pivot's members, …) and announce it through
//! [`SeriesSource::prefetch`](affinity_data::SeriesSource::prefetch).
//! This module turns those announcements into overlapped I/O:
//!
//! 1. Announcements land in a bounded **plan** queue (dropped and
//!    counted once the bound is hit — announcing is always O(1) and
//!    never blocks the consumer).
//! 2. One background worker pops the plan front-to-back, **batching
//!    contiguous runs** into a single
//!    [`ColumnRead::read_column_range`] region read (one request on
//!    seek-dominated media), decoding outside the cache lock.
//! 3. Fetched columns are admitted into the LRU with a
//!    `prefetched` mark and the worker *throttles*: at most `depth`
//!    prefetched-but-unconsumed columns are resident at a time, so
//!    readahead can never flush a small cache. The mark clears on
//!    first touch (a [`PrefetchStats::hits`]); eviction before any
//!    touch counts as [`PrefetchStats::wasted`].
//!
//! Columns being prefetched are registered as *in-flight*: a consumer
//! that misses on one waits for the worker instead of decoding the
//! column a second time (and vice versa — the worker skips columns a
//! consumer is already reading). Pinned columns are never evicted by
//! prefetch admissions; when every slot is pinned the fetched column
//! is dropped (counted as wasted) rather than forced in.
//!
//! The whole layer is advisory: every fetched byte still comes from
//! the same checksummed backing reads, so a streamed build is
//! **bit-for-bit identical** at every prefetch depth, including 0
//! (disabled) — the workspace equivalence suite pins this.

use crate::cache::Shared;
use affinity_data::ColumnRead;
use std::sync::atomic::Ordering;

/// Counters of the background prefetcher, nested inside
/// [`CacheStats`](crate::CacheStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Columns the worker actually fetched from the backing store.
    pub issued: u64,
    /// Consumer fetches (or pins) served by a prefetched column's
    /// first touch — reads that would otherwise have gone to disk.
    pub hits: u64,
    /// Prefetched columns thrown away untouched (evicted first, or
    /// not admittable because every slot was pinned).
    pub wasted: u64,
    /// Announced columns dropped because the plan queue was full.
    pub queue_full: u64,
}

/// Upper bound on one readahead batch, independent of depth — keeps
/// the worker's decode scratch (and its single region read) modest
/// even for deep queues over long series.
const MAX_BATCH: usize = 8;

/// Batches coalesce across plan gaps of up to this many columns: a
/// fragmented announcement (e.g. an AFCLST power pass visiting only
/// the active clusters' members, interleaved with inactive ones) is
/// fetched as one contiguous span, gap columns included. On
/// seek-dominated media the extra contiguous bytes are nearly free,
/// while splitting the span would pay the per-request latency per
/// fragment; the gap columns enter the cache as ordinary prefetched
/// columns (often wanted by the very next pass — and counted wasted
/// if not).
const MAX_SPAN_GAP: u32 = 8;

/// The worker loop: runs on its own thread until
/// [`Shared::shutdown`] flips. See the module docs for the pipeline.
pub(crate) fn run<B: ColumnRead>(shared: &Shared<B>) {
    let mut batch: Vec<u32> = Vec::with_capacity(MAX_BATCH);
    loop {
        // --- Plan one batch (lock held) -------------------------------
        {
            let mut inner = shared.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Discard plan entries that became pointless while they
                // waited: already cached, or being read by a consumer.
                while let Some(&c) = inner.plan.front() {
                    let v = c as usize;
                    if inner.map.contains_key(&v) || inner.inflight.contains(&v) {
                        inner.plan.pop_front();
                        inner.planned.remove(&c);
                    } else {
                        break;
                    }
                }
                if shared.worker_must_wait(&inner) {
                    inner = shared.work.wait(inner).expect("cache mutex");
                    continue;
                }
                break;
            }
            // Take an ascending run off the plan front and coalesce it
            // into one contiguous span, bridging gaps of up to
            // MAX_SPAN_GAP uncached columns; bounded by the free
            // readahead credit (at least the hysteresis threshold, by
            // the wait predicate above).
            let budget = (shared.depth - inner.ahead).min(MAX_BATCH);
            batch.clear();
            let first = inner.plan.pop_front().expect("plan non-empty");
            inner.planned.remove(&first);
            batch.push(first);
            'extend: while batch.len() < budget {
                let last = *batch.last().expect("non-empty");
                let Some(&c) = inner.plan.front() else { break };
                // Plan entries are deduplicated but not sorted; only
                // coalesce a front that continues the span forward.
                if c <= last || (c - last) as usize > MAX_SPAN_GAP as usize + 1 {
                    break;
                }
                if batch.len() + (c - last) as usize > budget {
                    break;
                }
                // The whole bridge (gap columns + the planned one) must
                // be fetchable: not cached, not already being read.
                for x in last + 1..=c {
                    if inner.map.contains_key(&(x as usize))
                        || inner.inflight.contains(&(x as usize))
                    {
                        break 'extend;
                    }
                }
                inner.plan.pop_front();
                inner.planned.remove(&c);
                batch.extend(last + 1..=c);
            }
            // Reserve the credit and claim the columns up front so
            // consumers wait for us instead of double-reading.
            for &c in &batch {
                inner.inflight.insert(c as usize);
            }
            inner.ahead += batch.len();
        }

        // --- Fetch + decode (no lock) ---------------------------------
        let first = batch[0] as usize;
        let count = batch.len();
        // Columns the sink resolved (a prefix of `batch`: the
        // `read_column_range` contract sinks in ascending order). The
        // cleanup below must only touch the unseen suffix — a resolved
        // column's in-flight entry may already have been *re-claimed by
        // a consumer* whose own miss started after ours completed, and
        // removing that claim would both strip its dedup protection and
        // double-return readahead credit.
        let mut resolved = 0usize;
        let result = shared
            .backing
            .read_column_range(first, count, &mut |v, col| {
                let mut inner = shared.lock();
                inner.inflight.remove(&v);
                resolved += 1;
                inner.stats.prefetch.issued += 1;
                inner.tick += 1;
                let admitted = if inner.map.contains_key(&v) {
                    false // raced with a pin/consumer admit; keep theirs
                } else {
                    shared.admit(&mut inner, v, col, true)
                };
                if !admitted {
                    inner.stats.prefetch.wasted += 1;
                    inner.ahead -= 1;
                }
                drop(inner);
                shared.served.notify_all();
            });

        // Release whatever the sink never saw (early read error), so
        // waiting consumers fall back to their own read — which is the
        // path that will surface the backing error to the caller.
        let mut inner = shared.lock();
        for &c in &batch[resolved..] {
            inner.inflight.remove(&(c as usize));
            inner.ahead -= 1;
        }
        drop(inner);
        shared.served.notify_all();
        drop(result); // advisory: errors are the consumer's to report
    }
}

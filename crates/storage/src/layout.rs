//! Checked-arithmetic validation of header-declared file layouts.
//!
//! Every reader in this crate follows the same rule (established in the
//! out-of-core PR): the size a header *promises* is computed with
//! checked arithmetic from the header integers alone and compared
//! against the file's real length **before any size-dependent
//! allocation**. A corrupted count must surface as a clean "corrupt"
//! error — never as an overflowed offset, a huge allocation, or a read
//! of garbage bytes.
//!
//! [`SizeCheck`] is the one shared implementation of that rule, used by
//! [`crate::MatrixStore::open`], the snapshot reader and the journal
//! replayer. It accumulates a promised byte count; any overflow poisons
//! the accumulator and the final comparison reports it.

/// Accumulator for a header-declared file size. All arithmetic is
/// checked; overflow is remembered and reported by [`SizeCheck::require`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SizeCheck(Option<u64>);

impl SizeCheck {
    /// Start from zero promised bytes.
    pub(crate) fn new() -> Self {
        SizeCheck(Some(0))
    }

    /// Add a fixed number of bytes.
    pub(crate) fn add(self, bytes: u64) -> Self {
        SizeCheck(self.0.and_then(|t| t.checked_add(bytes)))
    }

    /// Add `count · each` bytes (both factors header-controlled).
    pub(crate) fn add_mul(self, count: u64, each: u64) -> Self {
        SizeCheck(
            self.0
                .and_then(|t| count.checked_mul(each).and_then(|b| t.checked_add(b))),
        )
    }

    /// Add `count · per · unit` bytes — for layouts whose chunk size is
    /// itself a product of header integers (e.g. `series · samples · 8`).
    pub(crate) fn add_mul3(self, count: u64, per: u64, unit: u64) -> Self {
        SizeCheck(self.0.and_then(|t| {
            count
                .checked_mul(per)
                .and_then(|c| c.checked_mul(unit))
                .and_then(|b| t.checked_add(b))
        }))
    }

    /// The promised size so far, or `None` after an overflow.
    pub(crate) fn promised(self) -> Option<u64> {
        self.0
    }

    /// Require the promised size to equal the file's real length.
    ///
    /// Returns a human-readable description of the mismatch (overflow or
    /// size disagreement) for the caller to wrap in its own `Corrupt`
    /// variant — the helper stays error-type agnostic so both
    /// [`crate::StorageError`] and [`crate::PersistError`] readers share
    /// it.
    pub(crate) fn require(self, file_len: u64, what: &str) -> Result<(), String> {
        match self.0 {
            None => Err(format!("{what}: header dimensions overflow")),
            Some(expected) if expected != file_len => Err(format!(
                "{what}: header promises {expected} bytes, file has {file_len}"
            )),
            Some(_) => Ok(()),
        }
    }
}

/// Read a little-endian `u32` at `off`, or `None` past the end.
/// Panic-free by construction: bounds via `get`, no slice indexing —
/// the form every reader in this crate uses instead of
/// `try_into().unwrap()` (afflint rule `panic`).
pub(crate) fn le_u32(bytes: &[u8], off: usize) -> Option<u32> {
    let s = bytes.get(off..off.checked_add(4)?)?;
    let mut a = [0u8; 4];
    for (d, src) in a.iter_mut().zip(s) {
        *d = *src;
    }
    Some(u32::from_le_bytes(a))
}

/// Read a little-endian `u64` at `off`, or `None` past the end.
pub(crate) fn le_u64(bytes: &[u8], off: usize) -> Option<u64> {
    let s = bytes.get(off..off.checked_add(8)?)?;
    let mut a = [0u8; 8];
    for (d, src) in a.iter_mut().zip(s) {
        *d = *src;
    }
    Some(u64::from_le_bytes(a))
}

/// Decode a little-endian `f64` from a chunk produced by
/// `chunks_exact(8)`. Short chunks (impossible under `chunks_exact`)
/// zero-extend rather than panic.
pub(crate) fn le_f64(chunk: &[u8]) -> f64 {
    let mut a = [0u8; 8];
    for (d, src) in a.iter_mut().zip(chunk) {
        *d = *src;
    }
    f64::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_readers_are_bounds_safe() {
        let b = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(le_u32(&b, 0), Some(1));
        assert_eq!(le_u32(&b, 9), None);
        assert_eq!(le_u32(&b, usize::MAX), None);
        assert_eq!(le_u64(&b, 4), Some(2));
        assert_eq!(le_u64(&b, 5), None);
        assert_eq!(le_f64(&1.5f64.to_le_bytes()), 1.5);
    }

    #[test]
    fn exact_match_passes() {
        let c = SizeCheck::new().add(40).add_mul(3, 12).add_mul3(2, 5, 8);
        assert_eq!(c.promised(), Some(40 + 36 + 80));
        assert!(c.require(156, "t").is_ok());
    }

    #[test]
    fn mismatch_is_reported() {
        let err = SizeCheck::new().add(10).require(11, "t").unwrap_err();
        assert!(err.contains("promises 10"), "{err}");
        assert!(err.contains("file has 11"), "{err}");
    }

    #[test]
    fn overflow_poisons_not_panics() {
        let c = SizeCheck::new().add_mul(u64::MAX / 2, 3);
        assert_eq!(c.promised(), None);
        let err = c.require(100, "t").unwrap_err();
        assert!(err.contains("overflow"), "{err}");
        // Overflow in the 3-factor form too.
        let c = SizeCheck::new().add_mul3(u64::MAX / 9, u64::MAX / 7, 8);
        assert!(c.require(0, "t").is_err());
        // And in plain add after a large accumulation.
        let c = SizeCheck::new().add(u64::MAX).add(1);
        assert!(c.require(0, "t").is_err());
    }
}

//! CRC32 (IEEE 802.3 polynomial), implemented from scratch to keep the
//! dependency budget at zero.
//!
//! The hot loop uses slicing-by-16: sixteen 256-entry tables let one
//! iteration fold 16 input bytes with independent lookups instead of a
//! serial byte-at-a-time chain. Snapshot open verifies every section
//! eagerly, so CRC throughput sits directly on the restart path — the
//! sliced loop keeps checksumming an order of magnitude cheaper than
//! the decode work it protects. The byte-at-a-time form survives for
//! the tail (< 16 bytes) and as the reference the tests compare
//! against.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Number of slicing tables; each loop iteration consumes this many bytes.
const SLICES: usize = 16;

/// Slicing tables, built at first use. `tables()[0]` is the classic
/// byte-at-a-time table; `tables()[k][i]` advances the CRC of byte `i`
/// through `k` additional zero bytes, which is what lets 16 lookups
/// into distinct tables combine with plain XOR.
fn tables() -> &'static [[u32; 256]; SLICES] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; SLICES]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; SLICES];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for k in 1..SLICES {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            }
        }
        t
    })
}

/// Streaming CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(SLICES);
        for c in &mut chunks {
            let s = state.to_le_bytes();
            state = t[15][(c[0] ^ s[0]) as usize]
                ^ t[14][(c[1] ^ s[1]) as usize]
                ^ t[13][(c[2] ^ s[2]) as usize]
                ^ t[12][(c[3] ^ s[3]) as usize]
                ^ t[11][c[4] as usize]
                ^ t[10][c[5] as usize]
                ^ t[9][c[6] as usize]
                ^ t[8][c[7] as usize]
                ^ t[7][c[8] as usize]
                ^ t[6][c[9] as usize]
                ^ t[5][c[10] as usize]
                ^ t[4][c[11] as usize]
                ^ t[3][c[12] as usize]
                ^ t[2][c[13] as usize]
                ^ t[1][c[14] as usize]
                ^ t[0][c[15] as usize];
        }
        for &b in chunks.remainder() {
            state = t[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
        }
        self.state = state;
    }

    /// Final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference the sliced loop must agree with.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let t = tables();
        let mut state = 0xFFFF_FFFFu32;
        for &b in bytes {
            state = t[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
        }
        state ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_matches_reference_at_every_length() {
        // Cover the remainder loop (len % 16) at every phase and a few
        // multi-block lengths.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in (0..64).chain([255, 256, 257, 1023, 1024, 4096]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"hello world, this is a longer buffer for streaming";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
        // Split points that leave the sliced loop mid-phase.
        let buf: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [1, 15, 16, 17, 100, 999] {
            let mut c = Crc32::new();
            c.update(&buf[..split]);
            c.update(&buf[split..]);
            assert_eq!(c.finalize(), crc32(&buf), "split {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let before = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }
}

//! CRC32 (IEEE 802.3 polynomial), table-driven, implemented from scratch
//! to keep the dependency budget at zero.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// Streaming CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"hello world, this is a longer buffer for streaming";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let before = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(before, crc32(&data));
    }
}

//! The distributed-vs-monolithic equivalence oracle.
//!
//! A coordinator over `K` in-process shard backends must answer every
//! statement **bit-identically** to a local `Session` over the same
//! model — rendered output compared as exact strings, so a single
//! flipped mantissa bit fails. The in-process backends route through
//! [`affinity_coord::answer`], the same function remote shard servers
//! execute, so this oracle covers the merge layer for both transports
//! (the chaos suite re-proves it over real sockets).
//!
//! Also here: graceful-degradation typing against a fleet with a dead
//! backend (partial answers are `missing`-tagged, strict mode refuses
//! them as `UNAVAILABLE`, MEC pairwise refuses holes) and the
//! conservation ledger identities at quiescent points.

use affinity_coord::{
    BackendError, CoordStats, Coordinator, InProcBackend, ShardBackend, ShardRequest, ShardResponse,
};
use affinity_core::measures::Measure;
use affinity_core::prelude::{Symex, SymexParams};
use affinity_data::generator::{sensor_dataset, SensorConfig};
use affinity_data::DataMatrix;
use affinity_par::ThreadPool;
use affinity_ql::Session;
use affinity_shard::{ShardPlan, ShardedModel};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn dataset() -> DataMatrix {
    sensor_dataset(&SensorConfig::reduced(18, 96))
}

fn sharded(data: &DataMatrix, k: usize, indexed: &[Measure]) -> ShardedModel {
    let affine = Symex::new(SymexParams::default())
        .run(data)
        .expect("affine fit");
    let plan = ShardPlan::blocked(data.series_count(), k);
    ShardedModel::from_global(data, &affine, plan, indexed, Arc::new(ThreadPool::new(2)))
        .expect("sharded build")
}

fn coordinator(model: &ShardedModel, strict: bool) -> (Coordinator, Arc<CoordStats>) {
    let stats = Arc::new(CoordStats::new());
    let backends: Vec<Arc<dyn ShardBackend>> = (0..model.plan().shards())
        .map(|i| Arc::new(InProcBackend::new(model, i, Arc::clone(&stats))) as _)
        .collect();
    let coord = Coordinator::new(backends, Vec::new(), strict, Arc::clone(&stats))
        .expect("coordinator construction");
    (coord, stats)
}

/// The statement battery: every measure through MET/MER/MEC/EXPLAIN,
/// plus boundary thresholds that return nothing or everything.
fn statements() -> Vec<String> {
    let mut stmts = Vec::new();
    for m in [
        "mean",
        "median",
        "mode",
        "covariance",
        "dot",
        "correlation",
        "cosine",
        "dice",
    ] {
        stmts.push(format!("MET {m} > 0.5"));
        stmts.push(format!("MET {m} < 0.2"));
        stmts.push(format!("MER {m} BETWEEN -0.25 AND 0.75"));
        stmts.push(format!("EXPLAIN MET {m} > 0.5"));
        stmts.push(format!("EXPLAIN MER {m} BETWEEN -0.25 AND 0.75"));
    }
    for m in ["mean", "median", "mode", "covariance", "correlation"] {
        stmts.push(format!("MEC {m} OF S0, S5, S11, S17"));
        stmts.push(format!("MEC {m} OF S3"));
        stmts.push(format!("EXPLAIN MEC {m} OF S0, S5, S11, S17"));
    }
    // Out-of-band thresholds: empty and full result sets must merge
    // identically too.
    stmts.push("MET correlation > 2.0".into());
    stmts.push("MET correlation < 2.0".into());
    stmts.push("MER mean BETWEEN -1e9 AND 1e9".into());
    stmts
}

/// Render a statement's outcome (output or error) for exact compare.
fn run_local(session: &Session, stmt: &str) -> String {
    match session.execute(stmt) {
        Ok(out) => format!("OK\n{out}"),
        Err(e) => format!("ERR {e}"),
    }
}

fn run_coord(coord: &Coordinator, stmt: &str) -> String {
    match coord.execute(stmt) {
        Ok(ans) => {
            assert!(
                ans.missing.is_empty(),
                "healthy fleet answered {stmt:?} degraded: missing {:?}",
                ans.missing
            );
            format!("OK\n{}", ans.output)
        }
        Err(e) => format!("ERR {}", e.message),
    }
}

#[test]
fn distributed_answers_are_bit_identical_for_k_1_2_4() {
    let data = dataset();
    for k in [1usize, 2, 4] {
        let model = sharded(&data, k, &Measure::EXTENDED);
        let session = Session::from_sharded(&model, Vec::new()).expect("local session");
        let (coord, stats) = coordinator(&model, false);
        for stmt in statements() {
            let local = run_local(&session, &stmt);
            let dist = run_coord(&coord, &stmt);
            assert_eq!(local, dist, "K={k} diverged on {stmt:?}");
        }
        assert!(
            stats.balanced(),
            "K={k} ledger unbalanced: {}",
            stats.render()
        );
    }
}

#[test]
fn scan_fallback_merges_bit_identically() {
    // Index only covariance: correlation/cosine/dice/location measures
    // fall to the full-scan path, whose coordinator-side re-sort must
    // recover the monolithic order exactly.
    let data = dataset();
    let model = sharded(
        &data,
        3,
        &[Measure::Pairwise(
            affinity_core::measures::PairwiseMeasure::Covariance,
        )],
    );
    let session = Session::from_sharded(&model, Vec::new()).expect("local session");
    let (coord, stats) = coordinator(&model, false);
    for stmt in [
        "MET correlation > 0.5",
        "MET cosine < 0.9",
        "MER dice BETWEEN 0.1 AND 0.9",
        "MET mean > 0.0",
        "MER median BETWEEN -1.0 AND 1.0",
        "EXPLAIN MET correlation > 0.5",
        "EXPLAIN MET covariance > 0.5",
    ] {
        assert_eq!(
            run_local(&session, stmt),
            run_coord(&coord, stmt),
            "scan fallback diverged on {stmt:?}"
        );
    }
    assert!(stats.balanced(), "ledger unbalanced: {}", stats.render());
}

#[test]
fn unknown_series_and_empty_range_errors_match_locally() {
    let data = dataset();
    let model = sharded(&data, 2, &Measure::EXTENDED);
    let session = Session::from_sharded(&model, Vec::new()).expect("local session");
    let (coord, _) = coordinator(&model, false);
    for stmt in [
        "MEC mean OF S99",
        "MER correlation BETWEEN 2.0 AND -2.0",
        "NOT A STATEMENT",
    ] {
        assert_eq!(
            run_local(&session, stmt),
            run_coord(&coord, stmt),
            "error text diverged on {stmt:?}"
        );
    }
}

/// A backend that can be switched off: healthy at construction (so the
/// coordinator can collect `!meta`), then every call fails like a dead
/// socket past its retry budget.
struct KillableBackend {
    inner: InProcBackend,
    shard: usize,
    dead: Arc<AtomicBool>,
    stats: Arc<CoordStats>,
}

impl ShardBackend for KillableBackend {
    fn shard(&self) -> usize {
        self.shard
    }
    fn call(&self, req: &ShardRequest) -> Result<ShardResponse, BackendError> {
        if self.dead.load(Ordering::Acquire) {
            CoordStats::bump(&self.stats.routed);
            return Err(BackendError::Unavailable {
                shard: self.shard,
                reason: "injected: connection refused".into(),
            });
        }
        self.inner.call(req)
    }
}

fn killable_fleet(
    model: &ShardedModel,
    strict: bool,
) -> (Coordinator, Arc<CoordStats>, Vec<Arc<AtomicBool>>) {
    let stats = Arc::new(CoordStats::new());
    let switches: Vec<Arc<AtomicBool>> = (0..model.plan().shards())
        .map(|_| Arc::new(AtomicBool::new(false)))
        .collect();
    let backends: Vec<Arc<dyn ShardBackend>> = switches
        .iter()
        .enumerate()
        .map(|(i, dead)| {
            Arc::new(KillableBackend {
                inner: InProcBackend::new(model, i, Arc::clone(&stats)),
                shard: i,
                dead: Arc::clone(dead),
                stats: Arc::clone(&stats),
            }) as _
        })
        .collect();
    let coord = Coordinator::new(backends, Vec::new(), strict, Arc::clone(&stats))
        .expect("coordinator construction");
    (coord, stats, switches)
}

#[test]
fn degradation_is_typed_and_ledger_balances() {
    let data = dataset();
    let model = sharded(&data, 3, &Measure::EXTENDED);
    let (coord, stats, switches) = killable_fleet(&model, false);

    // Healthy first: complete answers.
    let ans = coord.execute("MET correlation > 0.5").expect("healthy");
    assert!(ans.missing.is_empty());

    // Kill shard 1: pair queries degrade and say exactly which shard
    // is missing — never a silent subset.
    switches[1].store(true, Ordering::Release);
    let ans = coord.execute("MET correlation > 0.5").expect("degraded");
    assert_eq!(ans.missing, vec![1], "missing shards must be typed");

    // A location statement owned entirely by a live shard still
    // answers completely.
    let owner0 = model.plan().assignments().iter().position(|&s| s == 0);
    if let Some(v) = owner0 {
        let ans = coord
            .execute(&format!("MEC mean OF S{v}"))
            .expect("live-owner MEC");
        assert!(ans.missing.is_empty(), "live-owner answer must be complete");
    }

    // MEC pairwise across the dead shard: a matrix with holes is wrong,
    // not partial — typed UNAVAILABLE.
    let dead_owned = model
        .plan()
        .assignments()
        .iter()
        .position(|&s| s == 1)
        .expect("shard 1 owns some series");
    let err = coord
        .execute(&format!("MEC correlation OF S0, S{dead_owned}"))
        .expect_err("cross-shard matrix with a dead shard");
    assert_eq!(err.code, "UNAVAILABLE");

    // Revive: complete answers come back without rebuilding anything.
    switches[1].store(false, Ordering::Release);
    let ans = coord.execute("MET correlation > 0.5").expect("revived");
    assert!(ans.missing.is_empty());

    assert!(stats.balanced(), "ledger unbalanced: {}", stats.render());
    let g = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Acquire);
    assert!(g(&stats.degraded_answers) >= 1, "degraded answers counted");
    assert!(g(&stats.unavailable) >= 1, "unavailable counted");
}

#[test]
fn strict_mode_refuses_partial_answers() {
    let data = dataset();
    let model = sharded(&data, 2, &Measure::EXTENDED);
    let (coord, stats, switches) = killable_fleet(&model, true);

    switches[0].store(true, Ordering::Release);
    let err = coord
        .execute("MET correlation > 0.5")
        .expect_err("strict must refuse a partial answer");
    assert_eq!(err.code, "UNAVAILABLE");
    assert!(
        err.message.contains("strict"),
        "error should say strict mode refused: {}",
        err.message
    );

    switches[0].store(false, Ordering::Release);
    coord
        .execute("MET correlation > 0.5")
        .expect("healthy strict fleet answers");
    assert!(stats.balanced(), "ledger unbalanced: {}", stats.render());
}

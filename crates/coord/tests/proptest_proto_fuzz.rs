//! Wire-protocol hardening: the coordinator's response parser and the
//! shard server's request decoder both consume bytes straight off
//! sockets that a dying peer can truncate, corrupt, or flood mid-frame.
//! Feeding them arbitrary bytes, token soup, or mutated valid frames
//! must always produce a *typed* [`ProtoError`] (or a valid decode) —
//! never a panic, hang, or unbounded allocation.

use affinity_coord::proto::{
    decode_request, decode_response, encode_request, encode_response, ShardRequest,
};
use affinity_core::measures::{LocationMeasure, PairwiseMeasure};
use affinity_scape::ThresholdOp;
use proptest::collection::vec;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Every request shape, for decode_response's shape validation.
fn request_shapes() -> Vec<ShardRequest> {
    vec![
        ShardRequest::Meta,
        ShardRequest::ThresholdPairs {
            measure: PairwiseMeasure::Correlation,
            op: ThresholdOp::Greater,
            tau: 0.5,
        },
        ShardRequest::RangePairs {
            measure: PairwiseMeasure::Covariance,
            lo: -1.0,
            hi: 1.0,
        },
        ShardRequest::ThresholdSeries {
            measure: LocationMeasure::Mean,
            op: ThresholdOp::Less,
            tau: 0.25,
        },
        ShardRequest::RangeSeries {
            measure: LocationMeasure::Median,
            lo: 0.0,
            hi: 2.0,
        },
        ShardRequest::LocationValues {
            measure: LocationMeasure::Mode,
            ids: vec![0, 3, 7],
        },
        ShardRequest::PairValues {
            measure: PairwiseMeasure::Cosine,
            pairs: vec![(0, 1), (2, 5)],
        },
        ShardRequest::DiagValues {
            measure: PairwiseMeasure::Dice,
            ids: vec![1, 2],
        },
        ShardRequest::ScanPairs {
            measure: PairwiseMeasure::DotProduct,
        },
        ShardRequest::ScanSeries {
            measure: LocationMeasure::Mean,
        },
    ]
}

fn decode_request_must_not_panic(line: &str) -> Result<(), TestCaseError> {
    let outcome = catch_unwind(AssertUnwindSafe(|| match decode_request(line) {
        Ok(req) => {
            // Re-encode must be total (the remote backend sends it).
            let _ = encode_request(&req);
            true
        }
        Err(e) => {
            let _ = e.to_string();
            true
        }
    }));
    prop_assert!(
        outcome.unwrap_or(false),
        "decode_request panicked on {line:?}"
    );
    Ok(())
}

fn decode_response_must_not_panic(lines: &[String]) -> Result<(), TestCaseError> {
    for req in request_shapes() {
        let outcome = catch_unwind(AssertUnwindSafe(|| match decode_response(&req, lines) {
            Ok(resp) => {
                let _ = encode_response(&resp);
                true
            }
            Err(e) => {
                let _ = e.to_string();
                true
            }
        }));
        prop_assert!(
            outcome.unwrap_or(false),
            "decode_response panicked on {lines:?} for {req:?}"
        );
    }
    Ok(())
}

/// Protocol fragments recombined into near-miss frames — the inputs
/// most likely to trip a tag/arity/hex edge purely random bytes miss.
const TOKENS: &[&str] = &[
    "!meta",
    "!tpg",
    "!rpg",
    "!tsk",
    "!rsk",
    "!lv",
    "!pv",
    "!dv",
    "!sp",
    "!ss",
    "meta",
    "corr",
    "cov",
    "dot",
    "cos",
    "dice",
    "mean",
    "median",
    "mode",
    "gt",
    "lt",
    "c",
    "k",
    "v",
    "p",
    "s",
    "3ff0000000000000",
    "7ff8000000000000",
    "ffffffffffffffff",
    "0",
    "1",
    "4294967295",
    "18446744073709551615",
    "-1",
    "0:1",
    "1:0",
    "5:5",
    "0:1,2:3",
    "-",
    ",",
    ":",
    ";",
    "",
    " ",
    "\t",
    "0x41",
    "1e308",
    "NaN",
    "!",
    "!!",
    "!tpg corr gt",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes into the shard server's request decoder: typed
    /// error or valid request, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_request_decode(bytes in vec(0u32..=255, 0..120)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let line = String::from_utf8_lossy(&bytes);
        decode_request_must_not_panic(&line)?;
    }

    /// Token soup into the request decoder.
    #[test]
    fn token_soup_never_panics_request_decode(picks in vec(0usize..1_000_000, 0..10), glue in 0u32..3) {
        let sep = match glue { 0 => " ", 1 => "  ", _ => "\t" };
        let line: String = picks
            .iter()
            .map(|&p| TOKENS[p % TOKENS.len()])
            .collect::<Vec<_>>()
            .join(sep);
        decode_request_must_not_panic(&line)?;
    }

    /// Arbitrary body lines into the coordinator's response parser,
    /// validated against every request shape: typed error or valid
    /// response, never a panic.
    #[test]
    fn arbitrary_lines_never_panic_response_decode(
        raw in vec(vec(0u32..=255, 0..60), 0..8),
    ) {
        let lines: Vec<String> = raw
            .iter()
            .map(|bytes| {
                let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
                String::from_utf8_lossy(&bytes).into_owned()
            })
            .collect();
        decode_response_must_not_panic(&lines)?;
    }

    /// Token-soup body lines into the response parser.
    #[test]
    fn token_soup_never_panics_response_decode(
        rows in vec(vec(0usize..1_000_000, 0..6), 0..6),
    ) {
        let lines: Vec<String> = rows
            .iter()
            .map(|picks| {
                picks
                    .iter()
                    .map(|&p| TOKENS[p % TOKENS.len()])
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        decode_response_must_not_panic(&lines)?;
    }

    /// Truncated frames: cut a *valid* encoded response at any point —
    /// dropped tail lines and a chopped final line — and the parser
    /// must answer typed, not panic. A dying shard server produces
    /// exactly this shape.
    #[test]
    fn truncated_valid_responses_never_panic(which in 0usize..10, drop_lines in 0usize..8, cut in 0usize..80) {
        let reqs = request_shapes();
        let req = &reqs[which % reqs.len()];
        // A small valid response for each shape, round-tripped from
        // the decoder's own test vectors: encode whatever an empty
        // model would answer.
        let resp = match decode_response(req, &valid_body(req)) {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!("fixture body invalid: {e}"))),
        };
        let mut lines = encode_response(&resp);
        let keep = lines.len().saturating_sub(drop_lines % (lines.len() + 1));
        lines.truncate(keep);
        if let Some(last) = lines.last_mut() {
            // Encoded protocol lines are pure ASCII, so any index is a
            // char boundary.
            last.truncate(cut % (last.len() + 1));
        }
        decode_response_must_not_panic(&lines)?;
    }

    /// Single-token corruption of a valid frame.
    #[test]
    fn corrupted_valid_requests_never_panic(which in 0usize..10, at in 0usize..12, with in 0usize..1_000_000) {
        let reqs = request_shapes();
        let line = encode_request(&reqs[which % reqs.len()]);
        let mut toks: Vec<&str> = line.split(' ').collect();
        let pos = at % toks.len();
        toks[pos] = TOKENS[with % TOKENS.len()];
        let corrupted = toks.join(" ");
        decode_request_must_not_panic(&corrupted)?;
    }
}

/// A minimal syntactically valid body for each request shape.
fn valid_body(req: &ShardRequest) -> Vec<String> {
    match req {
        ShardRequest::Meta => vec![
            "shard=0 shards=1 series=2 samples=4 ticks=0 epoch=1".into(),
            "indexed=mean".into(),
            "plan=0,0".into(),
        ],
        ShardRequest::ThresholdPairs { .. } | ShardRequest::RangePairs { .. } => {
            vec!["c 0 0:1".into()]
        }
        ShardRequest::ThresholdSeries { .. } | ShardRequest::RangeSeries { .. } => {
            vec!["k 0 3ff0000000000000:1".into()]
        }
        // Arity must match the request's id/pair count exactly.
        ShardRequest::LocationValues { ids, .. } => {
            vec!["v 3ff0000000000000".into(); ids.len()]
        }
        ShardRequest::DiagValues { ids, .. } => vec!["v 4000000000000000".into(); ids.len()],
        ShardRequest::PairValues { pairs, .. } => {
            let mut lines = vec!["v 3ff0000000000000".to_string(); pairs.len()];
            if let Some(last) = lines.last_mut() {
                *last = "v -".into();
            }
            lines
        }
        ShardRequest::ScanPairs { .. } => vec!["p 0:1:3ff0000000000000".into()],
        ShardRequest::ScanSeries { .. } => vec!["s 0:3ff0000000000000".into()],
    }
}

//! The coordinator ↔ shard-server wire protocol.
//!
//! Requests are single lines starting with `!`, carried as ordinary
//! statements of the serve line protocol (`<id> !tpg corr gt <bits>`),
//! so they ride the shard server's existing admission queue, faults,
//! and ledger. Responses ride the standard `OK <id> <n>` + `n` body
//! lines framing; each body line starts with a one-character shape tag
//! so truncated or reordered bodies are detected, not misread.
//!
//! Floats cross the wire as the 16-hex-digit big-endian rendering of
//! `f64::to_bits` — the merge layer's bit-identity contract survives
//! serialization exactly, including negative zero and NaN payloads.
//!
//! Both decoders ([`decode_request`], [`decode_response`]) parse bytes
//! from the network and are therefore panic-free by construction: no
//! indexing, no unwraps, bounded list lengths, checked arithmetic.
//! They are registered under afflint's R1/R5 gates.

use affinity_core::measures::{LocationMeasure, Measure, PairwiseMeasure};
use affinity_scape::ThresholdOp;
use std::fmt;

/// Upper bound on explicit id/pair lists in one request: a defense
/// against a hostile coordinator asking a shard to materialize an
/// unbounded response (statements that legitimately touch every series
/// use the scan requests instead).
pub const MAX_LIST: usize = 4096;

/// Decode failures. Every variant is a typed answer to malformed
/// bytes — the transport drops the connection, the peer never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The line or body was empty where content was required.
    Empty,
    /// Unknown request tag.
    UnknownRequest(String),
    /// Unknown measure tag.
    BadMeasure(String),
    /// Unknown threshold operator tag.
    BadOp(String),
    /// A number failed to parse (int or hex-bits float).
    BadNumber(String),
    /// A `u:v` pair was malformed or not `u < v`.
    BadPair(String),
    /// An id/pair list exceeded [`MAX_LIST`].
    TooLong {
        /// What overflowed.
        what: &'static str,
        /// Observed length.
        len: usize,
    },
    /// A response body line did not match the requested shape.
    BadBody(String),
    /// A required `key=` field was missing from a meta body.
    MissingField(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty frame"),
            ProtoError::UnknownRequest(t) => write!(f, "unknown request '{t}'"),
            ProtoError::BadMeasure(t) => write!(f, "unknown measure tag '{t}'"),
            ProtoError::BadOp(t) => write!(f, "unknown threshold op '{t}'"),
            ProtoError::BadNumber(t) => write!(f, "bad number '{t}'"),
            ProtoError::BadPair(t) => write!(f, "bad pair '{t}'"),
            ProtoError::TooLong { what, len } => {
                write!(f, "{what} list of {len} exceeds the {MAX_LIST} cap")
            }
            ProtoError::BadBody(t) => write!(f, "malformed body line '{t}'"),
            ProtoError::MissingField(k) => write!(f, "meta body missing '{k}='"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A coordinator → shard request. Ids and pairs are `u32` — the wire
/// shape — and are validated against the model by the answering shard.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardRequest {
    /// Shard identity, shape, index set, plan, and tick count.
    Meta,
    /// MET over a pairwise measure: grouped chunks tagged with global
    /// pivot ordinals.
    ThresholdPairs {
        /// The measure.
        measure: PairwiseMeasure,
        /// The comparison.
        op: ThresholdOp,
        /// The threshold τ.
        tau: f64,
    },
    /// MER over a pairwise measure (exclusive bounds, like the index).
    RangePairs {
        /// The measure.
        measure: PairwiseMeasure,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// MET over a location measure: one keyed vector per cluster.
    ThresholdSeries {
        /// The measure.
        measure: LocationMeasure,
        /// The comparison.
        op: ThresholdOp,
        /// The threshold τ.
        tau: f64,
    },
    /// MER over a location measure.
    RangeSeries {
        /// The measure.
        measure: LocationMeasure,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// MEC location values for explicitly listed series (owner-routed
    /// by the coordinator; answered in request order).
    LocationValues {
        /// The measure.
        measure: LocationMeasure,
        /// Series ids, each owned by the target shard.
        ids: Vec<u32>,
    },
    /// MEC pairwise values for explicitly listed pairs. Sent to every
    /// shard; each answers the pairs its partition holds and `-` for
    /// the rest (pair ownership is a property of the fitted model, not
    /// of the plan, so the coordinator cannot pre-route).
    PairValues {
        /// The measure.
        measure: PairwiseMeasure,
        /// `u < v` pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// Matrix-diagonal values (variance / self-dot / 1.0). Any healthy
    /// shard answers — the normalizer tables are global.
    DiagValues {
        /// The measure.
        measure: PairwiseMeasure,
        /// Series ids.
        ids: Vec<u32>,
    },
    /// Fallback-scan support: every relationship this shard holds with
    /// its value under `measure`.
    ScanPairs {
        /// The measure.
        measure: PairwiseMeasure,
    },
    /// Fallback-scan support: every series this shard owns with its
    /// value under `measure`.
    ScanSeries {
        /// The measure.
        measure: LocationMeasure,
    },
}

/// Shard identity and model shape, from [`ShardRequest::Meta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// This shard's index in the plan.
    pub shard: usize,
    /// Total shard count the server was started with.
    pub shards: usize,
    /// Global series count.
    pub series: usize,
    /// Samples per series (window length).
    pub samples: usize,
    /// Ticks absorbed since process start (window warm-up included).
    pub ticks: u64,
    /// Published epoch id.
    pub epoch: u64,
    /// Measures the shard indexes cover.
    pub indexed: Vec<Measure>,
    /// The series → shard assignment the server derived, so the
    /// coordinator can verify every shard agrees on ownership.
    pub assignments: Vec<u32>,
}

/// A shard → coordinator response body, shaped by the request.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardResponse {
    /// Answer to [`ShardRequest::Meta`].
    Meta(ShardMeta),
    /// Answer to threshold/range pair queries: `(global pivot ordinal,
    /// pairs)` chunks, ready for [`affinity_shard::splice_chunks`].
    PairChunks(Vec<(u32, Vec<(u32, u32)>)>),
    /// Answer to threshold/range series queries: per-cluster `(ξ key,
    /// series)` entries (one vector per cluster, empties included),
    /// ready for [`affinity_shard::merge_keyed_series`].
    KeyedSeries(Vec<Vec<(f64, u32)>>),
    /// Answer to [`ShardRequest::LocationValues`] /
    /// [`ShardRequest::DiagValues`]: one value per requested id.
    Values(Vec<f64>),
    /// Answer to [`ShardRequest::PairValues`]: one value per requested
    /// pair, `None` where this shard does not hold the pair.
    MaybeValues(Vec<Option<f64>>),
    /// Answer to [`ShardRequest::ScanPairs`].
    ScanPairs(Vec<(u32, u32, f64)>),
    /// Answer to [`ShardRequest::ScanSeries`].
    ScanSeries(Vec<(u32, f64)>),
}

// --- measure tags --------------------------------------------------

/// Short wire tag of a pairwise measure (the display names are not
/// wire-safe: "dot product" contains a space).
pub fn pairwise_tag(m: PairwiseMeasure) -> &'static str {
    match m {
        PairwiseMeasure::Covariance => "cov",
        PairwiseMeasure::DotProduct => "dot",
        PairwiseMeasure::Correlation => "corr",
        PairwiseMeasure::Cosine => "cos",
        PairwiseMeasure::Dice => "dice",
    }
}

/// Short wire tag of a location measure.
pub fn location_tag(m: LocationMeasure) -> &'static str {
    match m {
        LocationMeasure::Mean => "mean",
        LocationMeasure::Median => "median",
        LocationMeasure::Mode => "mode",
    }
}

/// Short wire tag of any measure.
pub fn measure_tag(m: Measure) -> &'static str {
    match m {
        Measure::Location(l) => location_tag(l),
        Measure::Pairwise(p) => pairwise_tag(p),
    }
}

fn parse_pairwise(tag: &str) -> Result<PairwiseMeasure, ProtoError> {
    match tag {
        "cov" => Ok(PairwiseMeasure::Covariance),
        "dot" => Ok(PairwiseMeasure::DotProduct),
        "corr" => Ok(PairwiseMeasure::Correlation),
        "cos" => Ok(PairwiseMeasure::Cosine),
        "dice" => Ok(PairwiseMeasure::Dice),
        other => Err(ProtoError::BadMeasure(bounded(other))),
    }
}

fn parse_location(tag: &str) -> Result<LocationMeasure, ProtoError> {
    match tag {
        "mean" => Ok(LocationMeasure::Mean),
        "median" => Ok(LocationMeasure::Median),
        "mode" => Ok(LocationMeasure::Mode),
        other => Err(ProtoError::BadMeasure(bounded(other))),
    }
}

fn parse_measure(tag: &str) -> Result<Measure, ProtoError> {
    parse_location(tag)
        .map(Measure::Location)
        .or_else(|_| parse_pairwise(tag).map(Measure::Pairwise))
}

/// Clip an echoed token so hostile input cannot balloon error strings.
fn bounded(s: &str) -> String {
    s.chars().take(32).collect()
}

// --- scalars --------------------------------------------------------

/// Bit-exact `f64` rendering: 16 lowercase hex digits of `to_bits`.
pub fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, ProtoError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| ProtoError::BadNumber(bounded(s)))
}

fn parse_u32(s: &str) -> Result<u32, ProtoError> {
    s.parse::<u32>()
        .map_err(|_| ProtoError::BadNumber(bounded(s)))
}

fn parse_u64(s: &str) -> Result<u64, ProtoError> {
    s.parse::<u64>()
        .map_err(|_| ProtoError::BadNumber(bounded(s)))
}

fn parse_usize(s: &str) -> Result<usize, ProtoError> {
    s.parse::<usize>()
        .map_err(|_| ProtoError::BadNumber(bounded(s)))
}

fn op_tag(op: ThresholdOp) -> &'static str {
    match op {
        ThresholdOp::Greater => "gt",
        ThresholdOp::Less => "lt",
    }
}

fn parse_op(s: &str) -> Result<ThresholdOp, ProtoError> {
    match s {
        "gt" => Ok(ThresholdOp::Greater),
        "lt" => Ok(ThresholdOp::Less),
        other => Err(ProtoError::BadOp(bounded(other))),
    }
}

// --- lists ----------------------------------------------------------

/// Render a `u32` list as csv, `-` when empty (so the token count of a
/// request line is fixed per request kind).
fn ids_csv(ids: &[u32]) -> String {
    if ids.is_empty() {
        "-".to_string()
    } else {
        let mut out = String::new();
        for (i, v) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out
    }
}

fn parse_ids_csv(s: &str) -> Result<Vec<u32>, ProtoError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for tok in s.split(',') {
        if out.len() >= MAX_LIST {
            return Err(ProtoError::TooLong {
                what: "id",
                len: out.len().saturating_add(1),
            });
        }
        out.push(parse_u32(tok)?);
    }
    Ok(out)
}

fn pairs_csv(pairs: &[(u32, u32)]) -> String {
    if pairs.is_empty() {
        return "-".to_string();
    }
    let mut out = String::new();
    for (i, (u, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{u}:{v}"));
    }
    out
}

fn parse_pair_tok(tok: &str) -> Result<(u32, u32), ProtoError> {
    let (u, v) = tok
        .split_once(':')
        .ok_or(ProtoError::BadPair(bounded(tok)))?;
    let (u, v) = (parse_u32(u)?, parse_u32(v)?);
    if u >= v {
        return Err(ProtoError::BadPair(bounded(tok)));
    }
    Ok((u, v))
}

fn parse_pairs_csv(s: &str) -> Result<Vec<(u32, u32)>, ProtoError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for tok in s.split(',') {
        if out.len() >= MAX_LIST {
            return Err(ProtoError::TooLong {
                what: "pair",
                len: out.len().saturating_add(1),
            });
        }
        out.push(parse_pair_tok(tok)?);
    }
    Ok(out)
}

// --- requests -------------------------------------------------------

/// Render a request as its statement text (without the protocol id).
pub fn encode_request(req: &ShardRequest) -> String {
    match req {
        ShardRequest::Meta => "!meta".to_string(),
        ShardRequest::ThresholdPairs { measure, op, tau } => {
            format!(
                "!tpg {} {} {}",
                pairwise_tag(*measure),
                op_tag(*op),
                f64_hex(*tau)
            )
        }
        ShardRequest::RangePairs { measure, lo, hi } => {
            format!(
                "!rpg {} {} {}",
                pairwise_tag(*measure),
                f64_hex(*lo),
                f64_hex(*hi)
            )
        }
        ShardRequest::ThresholdSeries { measure, op, tau } => {
            format!(
                "!tsk {} {} {}",
                location_tag(*measure),
                op_tag(*op),
                f64_hex(*tau)
            )
        }
        ShardRequest::RangeSeries { measure, lo, hi } => {
            format!(
                "!rsk {} {} {}",
                location_tag(*measure),
                f64_hex(*lo),
                f64_hex(*hi)
            )
        }
        ShardRequest::LocationValues { measure, ids } => {
            format!("!lv {} {}", location_tag(*measure), ids_csv(ids))
        }
        ShardRequest::PairValues { measure, pairs } => {
            format!("!pv {} {}", pairwise_tag(*measure), pairs_csv(pairs))
        }
        ShardRequest::DiagValues { measure, ids } => {
            format!("!dv {} {}", pairwise_tag(*measure), ids_csv(ids))
        }
        ShardRequest::ScanPairs { measure } => format!("!sp {}", pairwise_tag(*measure)),
        ShardRequest::ScanSeries { measure } => format!("!ss {}", location_tag(*measure)),
    }
}

/// Decode one request line (statement text, id already stripped).
///
/// # Errors
/// A [`ProtoError`] describing the malformation; never panics.
pub fn decode_request(line: &str) -> Result<ShardRequest, ProtoError> {
    let mut toks = line.split_whitespace();
    let tag = toks.next().ok_or(ProtoError::Empty)?;
    let mut next = |what: &'static str| toks.next().ok_or(ProtoError::MissingField(what));
    let req = match tag {
        "!meta" => ShardRequest::Meta,
        "!tpg" => ShardRequest::ThresholdPairs {
            measure: parse_pairwise(next("measure")?)?,
            op: parse_op(next("op")?)?,
            tau: parse_f64_hex(next("tau")?)?,
        },
        "!rpg" => ShardRequest::RangePairs {
            measure: parse_pairwise(next("measure")?)?,
            lo: parse_f64_hex(next("lo")?)?,
            hi: parse_f64_hex(next("hi")?)?,
        },
        "!tsk" => ShardRequest::ThresholdSeries {
            measure: parse_location(next("measure")?)?,
            op: parse_op(next("op")?)?,
            tau: parse_f64_hex(next("tau")?)?,
        },
        "!rsk" => ShardRequest::RangeSeries {
            measure: parse_location(next("measure")?)?,
            lo: parse_f64_hex(next("lo")?)?,
            hi: parse_f64_hex(next("hi")?)?,
        },
        "!lv" => ShardRequest::LocationValues {
            measure: parse_location(next("measure")?)?,
            ids: parse_ids_csv(next("ids")?)?,
        },
        "!pv" => ShardRequest::PairValues {
            measure: parse_pairwise(next("measure")?)?,
            pairs: parse_pairs_csv(next("pairs")?)?,
        },
        "!dv" => ShardRequest::DiagValues {
            measure: parse_pairwise(next("measure")?)?,
            ids: parse_ids_csv(next("ids")?)?,
        },
        "!sp" => ShardRequest::ScanPairs {
            measure: parse_pairwise(next("measure")?)?,
        },
        "!ss" => ShardRequest::ScanSeries {
            measure: parse_location(next("measure")?)?,
        },
        other => return Err(ProtoError::UnknownRequest(bounded(other))),
    };
    if toks.next().is_some() {
        return Err(ProtoError::BadBody(bounded(line)));
    }
    Ok(req)
}

// --- responses ------------------------------------------------------

/// Render a response as its body lines (the `OK <id> <n>` header is the
/// carrier protocol's job).
pub fn encode_response(resp: &ShardResponse) -> Vec<String> {
    match resp {
        ShardResponse::Meta(m) => vec![
            format!(
                "shard={} shards={} series={} samples={} ticks={} epoch={}",
                m.shard, m.shards, m.series, m.samples, m.ticks, m.epoch
            ),
            format!(
                "indexed={}",
                m.indexed
                    .iter()
                    .map(|&x| measure_tag(x))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            format!("plan={}", ids_csv(&m.assignments)),
        ],
        ShardResponse::PairChunks(chunks) => chunks
            .iter()
            .map(|(ord, pairs)| format!("c {ord} {}", pairs_csv(pairs)))
            .collect(),
        ShardResponse::KeyedSeries(clusters) => clusters
            .iter()
            .enumerate()
            .map(|(l, entries)| {
                if entries.is_empty() {
                    format!("k {l} -")
                } else {
                    let csv = entries
                        .iter()
                        .map(|&(xi, v)| format!("{}:{v}", f64_hex(xi)))
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("k {l} {csv}")
                }
            })
            .collect(),
        ShardResponse::Values(vs) => vs.iter().map(|&v| format!("v {}", f64_hex(v))).collect(),
        ShardResponse::MaybeValues(vs) => vs
            .iter()
            .map(|v| match v {
                Some(x) => format!("v {}", f64_hex(*x)),
                None => "v -".to_string(),
            })
            .collect(),
        ShardResponse::ScanPairs(entries) => entries
            .iter()
            .map(|&(u, v, x)| format!("p {u}:{v}:{}", f64_hex(x)))
            .collect(),
        ShardResponse::ScanSeries(entries) => entries
            .iter()
            .map(|&(v, x)| format!("s {v}:{}", f64_hex(x)))
            .collect(),
    }
}

/// Split a body line into its shape tag and payload.
fn tagged<'a>(line: &'a str, want: &'static str) -> Result<&'a str, ProtoError> {
    let mut toks = line.splitn(2, ' ');
    let tag = toks.next().ok_or(ProtoError::Empty)?;
    if tag != want {
        return Err(ProtoError::BadBody(bounded(line)));
    }
    toks.next().ok_or(ProtoError::BadBody(bounded(line)))
}

fn decode_meta(lines: &[String]) -> Result<ShardMeta, ProtoError> {
    let mut it = lines.iter();
    let head = it.next().ok_or(ProtoError::Empty)?;
    let mut shard = None;
    let mut shards = None;
    let mut series = None;
    let mut samples = None;
    let mut ticks = None;
    let mut epoch = None;
    for tok in head.split_whitespace() {
        let (k, v) = tok
            .split_once('=')
            .ok_or(ProtoError::BadBody(bounded(tok)))?;
        match k {
            "shard" => shard = Some(parse_usize(v)?),
            "shards" => shards = Some(parse_usize(v)?),
            "series" => series = Some(parse_usize(v)?),
            "samples" => samples = Some(parse_usize(v)?),
            "ticks" => ticks = Some(parse_u64(v)?),
            "epoch" => epoch = Some(parse_u64(v)?),
            _ => return Err(ProtoError::BadBody(bounded(tok))),
        }
    }
    let indexed_line = it.next().ok_or(ProtoError::MissingField("indexed"))?;
    let indexed_csv = indexed_line
        .strip_prefix("indexed=")
        .ok_or(ProtoError::MissingField("indexed"))?;
    let mut indexed = Vec::new();
    if !indexed_csv.is_empty() {
        for tag in indexed_csv.split(',') {
            if indexed.len() >= Measure::EXTENDED.len() {
                return Err(ProtoError::TooLong {
                    what: "indexed measure",
                    len: indexed.len().saturating_add(1),
                });
            }
            indexed.push(parse_measure(tag)?);
        }
    }
    let plan_line = it.next().ok_or(ProtoError::MissingField("plan"))?;
    let plan_csv = plan_line
        .strip_prefix("plan=")
        .ok_or(ProtoError::MissingField("plan"))?;
    // The plan is one entry per series — legitimately larger than
    // MAX_LIST for big models, so it gets its own generous cap.
    let mut assignments = Vec::new();
    if plan_csv != "-" {
        for tok in plan_csv.split(',') {
            if assignments.len() >= (1 << 24) {
                return Err(ProtoError::TooLong {
                    what: "plan entry",
                    len: assignments.len().saturating_add(1),
                });
            }
            assignments.push(parse_u32(tok)?);
        }
    }
    let meta = ShardMeta {
        shard: shard.ok_or(ProtoError::MissingField("shard"))?,
        shards: shards.ok_or(ProtoError::MissingField("shards"))?,
        series: series.ok_or(ProtoError::MissingField("series"))?,
        samples: samples.ok_or(ProtoError::MissingField("samples"))?,
        ticks: ticks.ok_or(ProtoError::MissingField("ticks"))?,
        epoch: epoch.ok_or(ProtoError::MissingField("epoch"))?,
        indexed,
        assignments,
    };
    if meta.series != meta.assignments.len() {
        return Err(ProtoError::BadBody(format!(
            "plan has {} entries for {} series",
            meta.assignments.len(),
            meta.series
        )));
    }
    Ok(meta)
}

fn decode_keyed_entry(tok: &str) -> Result<(f64, u32), ProtoError> {
    let (xi, v) = tok
        .split_once(':')
        .ok_or(ProtoError::BadPair(bounded(tok)))?;
    Ok((parse_f64_hex(xi)?, parse_u32(v)?))
}

/// Decode a response body against the request that produced it. The
/// coordinator always knows what it asked, so the expected shape is an
/// input, not guesswork.
///
/// # Errors
/// A [`ProtoError`] describing the malformation; never panics.
pub fn decode_response(req: &ShardRequest, lines: &[String]) -> Result<ShardResponse, ProtoError> {
    match req {
        ShardRequest::Meta => decode_meta(lines).map(ShardResponse::Meta),
        ShardRequest::ThresholdPairs { .. } | ShardRequest::RangePairs { .. } => {
            let mut chunks = Vec::new();
            for line in lines {
                let payload = tagged(line, "c")?;
                let (ord, csv) = payload
                    .split_once(' ')
                    .ok_or(ProtoError::BadBody(bounded(line)))?;
                chunks.push((parse_u32(ord)?, parse_pairs_csv_unbounded(csv)?));
            }
            Ok(ShardResponse::PairChunks(chunks))
        }
        ShardRequest::ThresholdSeries { .. } | ShardRequest::RangeSeries { .. } => {
            let mut clusters = Vec::new();
            for line in lines {
                let payload = tagged(line, "k")?;
                let (l, csv) = payload
                    .split_once(' ')
                    .ok_or(ProtoError::BadBody(bounded(line)))?;
                // Cluster indices must arrive in order — the merge
                // aligns clusters positionally across shards.
                if parse_usize(l)? != clusters.len() {
                    return Err(ProtoError::BadBody(bounded(line)));
                }
                let mut entries = Vec::new();
                if csv != "-" {
                    for tok in csv.split(',') {
                        entries.push(decode_keyed_entry(tok)?);
                    }
                }
                clusters.push(entries);
            }
            Ok(ShardResponse::KeyedSeries(clusters))
        }
        ShardRequest::LocationValues { ids, .. } | ShardRequest::DiagValues { ids, .. } => {
            let mut values = Vec::new();
            for line in lines {
                values.push(parse_f64_hex(tagged(line, "v")?)?);
            }
            if values.len() != ids.len() {
                return Err(ProtoError::BadBody(format!(
                    "{} values for {} ids",
                    values.len(),
                    ids.len()
                )));
            }
            Ok(ShardResponse::Values(values))
        }
        ShardRequest::PairValues { pairs, .. } => {
            let mut values = Vec::new();
            for line in lines {
                let payload = tagged(line, "v")?;
                values.push(if payload == "-" {
                    None
                } else {
                    Some(parse_f64_hex(payload)?)
                });
            }
            if values.len() != pairs.len() {
                return Err(ProtoError::BadBody(format!(
                    "{} values for {} pairs",
                    values.len(),
                    pairs.len()
                )));
            }
            Ok(ShardResponse::MaybeValues(values))
        }
        ShardRequest::ScanPairs { .. } => {
            let mut entries = Vec::new();
            for line in lines {
                let payload = tagged(line, "p")?;
                let mut toks = payload.splitn(3, ':');
                let u = parse_u32(toks.next().ok_or(ProtoError::BadBody(bounded(line)))?)?;
                let v = parse_u32(toks.next().ok_or(ProtoError::BadBody(bounded(line)))?)?;
                let x = parse_f64_hex(toks.next().ok_or(ProtoError::BadBody(bounded(line)))?)?;
                if u >= v {
                    return Err(ProtoError::BadPair(bounded(payload)));
                }
                entries.push((u, v, x));
            }
            Ok(ShardResponse::ScanPairs(entries))
        }
        ShardRequest::ScanSeries { .. } => {
            let mut entries = Vec::new();
            for line in lines {
                let payload = tagged(line, "s")?;
                let (v, x) = payload
                    .split_once(':')
                    .ok_or(ProtoError::BadBody(bounded(line)))?;
                entries.push((parse_u32(v)?, parse_f64_hex(x)?));
            }
            Ok(ShardResponse::ScanSeries(entries))
        }
    }
}

/// Pair csv without the request-side [`MAX_LIST`] cap: response chunk
/// sizes are bounded by the transport's line/body limits instead (a
/// shard's legitimate chunk may exceed the request-list cap).
fn parse_pairs_csv_unbounded(s: &str) -> Result<Vec<(u32, u32)>, ProtoError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for tok in s.split(',') {
        out.push(parse_pair_tok(tok)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            ShardRequest::Meta,
            ShardRequest::ThresholdPairs {
                measure: PairwiseMeasure::Correlation,
                op: ThresholdOp::Greater,
                tau: 0.5,
            },
            ShardRequest::RangePairs {
                measure: PairwiseMeasure::DotProduct,
                lo: -0.0,
                hi: f64::NAN,
            },
            ShardRequest::ThresholdSeries {
                measure: LocationMeasure::Median,
                op: ThresholdOp::Less,
                tau: 1e300,
            },
            ShardRequest::RangeSeries {
                measure: LocationMeasure::Mode,
                lo: -1.0,
                hi: 1.0,
            },
            ShardRequest::LocationValues {
                measure: LocationMeasure::Mean,
                ids: vec![0, 5, 2],
            },
            ShardRequest::LocationValues {
                measure: LocationMeasure::Mean,
                ids: vec![],
            },
            ShardRequest::PairValues {
                measure: PairwiseMeasure::Covariance,
                pairs: vec![(0, 1), (3, 9)],
            },
            ShardRequest::DiagValues {
                measure: PairwiseMeasure::Dice,
                ids: vec![7],
            },
            ShardRequest::ScanPairs {
                measure: PairwiseMeasure::Cosine,
            },
            ShardRequest::ScanSeries {
                measure: LocationMeasure::Median,
            },
        ];
        for req in reqs {
            let line = encode_request(&req);
            let back = decode_request(&line).unwrap();
            // NaN != NaN, so compare re-encodings (hex is bit-exact).
            assert_eq!(encode_request(&back), line);
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases: Vec<(ShardRequest, ShardResponse)> = vec![
            (
                ShardRequest::Meta,
                ShardResponse::Meta(ShardMeta {
                    shard: 1,
                    shards: 2,
                    series: 4,
                    samples: 32,
                    ticks: 40,
                    epoch: 3,
                    indexed: Measure::EXTENDED.to_vec(),
                    assignments: vec![0, 0, 1, 1],
                }),
            ),
            (
                ShardRequest::ThresholdPairs {
                    measure: PairwiseMeasure::Correlation,
                    op: ThresholdOp::Greater,
                    tau: 0.5,
                },
                ShardResponse::PairChunks(vec![(2, vec![(0, 1), (0, 3)]), (5, vec![])]),
            ),
            (
                ShardRequest::ThresholdSeries {
                    measure: LocationMeasure::Mean,
                    op: ThresholdOp::Greater,
                    tau: 0.0,
                },
                ShardResponse::KeyedSeries(vec![vec![(1.5, 0), (-0.0, 3)], vec![], vec![(2.0, 2)]]),
            ),
            (
                ShardRequest::LocationValues {
                    measure: LocationMeasure::Mean,
                    ids: vec![1, 2],
                },
                ShardResponse::Values(vec![1.25, -7.5]),
            ),
            (
                ShardRequest::PairValues {
                    measure: PairwiseMeasure::Covariance,
                    pairs: vec![(0, 1), (1, 2)],
                },
                ShardResponse::MaybeValues(vec![Some(0.25), None]),
            ),
            (
                ShardRequest::ScanPairs {
                    measure: PairwiseMeasure::Cosine,
                },
                ShardResponse::ScanPairs(vec![(0, 2, 0.75)]),
            ),
            (
                ShardRequest::ScanSeries {
                    measure: LocationMeasure::Mode,
                },
                ShardResponse::ScanSeries(vec![(3, 42.0)]),
            ),
        ];
        for (req, resp) in cases {
            let lines = encode_response(&resp);
            let back = decode_response(&req, &lines).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_inputs_yield_typed_errors() {
        assert!(matches!(decode_request(""), Err(ProtoError::Empty)));
        assert!(matches!(
            decode_request("!nope x"),
            Err(ProtoError::UnknownRequest(_))
        ));
        assert!(matches!(
            decode_request("!tpg sideways gt 0"),
            Err(ProtoError::BadMeasure(_))
        ));
        assert!(matches!(
            decode_request("!tpg corr sideways 0"),
            Err(ProtoError::BadOp(_))
        ));
        assert!(matches!(
            decode_request("!tpg corr gt zzz…"),
            Err(ProtoError::BadNumber(_))
        ));
        assert!(matches!(
            decode_request("!pv corr 3:1"),
            Err(ProtoError::BadPair(_))
        ));
        assert!(matches!(
            decode_request("!meta trailing"),
            Err(ProtoError::BadBody(_))
        ));
        // Oversized id list.
        let huge = (0..=MAX_LIST as u32)
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");
        assert!(matches!(
            decode_request(&format!("!lv mean {huge}")),
            Err(ProtoError::TooLong { .. })
        ));
        // Response shape mismatches.
        let req = ShardRequest::LocationValues {
            measure: LocationMeasure::Mean,
            ids: vec![1],
        };
        assert!(decode_response(&req, &["p 0:1:abc".to_string()]).is_err());
        assert!(decode_response(&req, &[]).is_err());
        assert!(decode_response(&ShardRequest::Meta, &["shard=1".to_string()]).is_err());
    }
}

//! The coordinator's conservation ledger.
//!
//! Two levels, both monotone counters:
//!
//! * **Attempts** — every dispatch of one request to one shard backend
//!   lands in exactly one bucket, so `routed == merged + retried +
//!   degraded + failed` holds at every quiescent point:
//!   - `routed`: attempts dispatched (circuit-breaker fast-fails
//!     included — deciding not to touch the socket is still a routing
//!     decision).
//!   - `merged`: attempts that completed a round-trip and contributed
//!     to (or typed-errored) an answer.
//!   - `retried`: failed attempts that were followed by another attempt
//!     of the same logical call.
//!   - `degraded`: final failed attempts of calls the coordinator
//!     degraded around (the statement still answered, typed
//!     `DEGRADED`).
//!   - `failed`: final failed attempts of calls whose statement could
//!     not be answered (typed `UNAVAILABLE`).
//! * **Statements** — `stmts == ok + degraded_answers + unavailable +
//!   errors` classifies every client statement by its outcome.
//!
//! A failed attempt is parked in limbo between its final failure and
//! the end of its statement (the coordinator cannot know
//! degraded-vs-failed until the merge finishes), so exact balance is
//! asserted between statements, which is when the chaos suite reads
//! `.stats`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters shared by backends, the executor, and `.stats`
/// rendering. See the module docs for the conservation invariants.
#[derive(Debug, Default)]
pub struct CoordStats {
    /// Attempts dispatched to a shard backend.
    pub routed: AtomicU64,
    /// Attempts that completed a round-trip.
    pub merged: AtomicU64,
    /// Failed attempts followed by a retry.
    pub retried: AtomicU64,
    /// Final failed attempts the statement degraded around.
    pub degraded: AtomicU64,
    /// Final failed attempts that made the statement unanswerable.
    pub failed: AtomicU64,
    /// Client statements received.
    pub stmts: AtomicU64,
    /// Statements answered completely.
    pub ok: AtomicU64,
    /// Statements answered partially (typed `DEGRADED`).
    pub degraded_answers: AtomicU64,
    /// Statements refused with `UNAVAILABLE`.
    pub unavailable: AtomicU64,
    /// Statements failed with any other typed error.
    pub errors: AtomicU64,
}

impl CoordStats {
    /// A zeroed ledger.
    pub fn new() -> CoordStats {
        CoordStats::default()
    }

    /// Increment one counter.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::AcqRel);
    }

    /// Add `n` to one counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::AcqRel);
    }

    /// Render every counter as `key=value` pairs (the `.stats` body and
    /// the final `COORD done` line).
    pub fn render(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Acquire);
        format!(
            "routed={} merged={} retried={} degraded={} failed={} stmts={} ok={} degraded_answers={} unavailable={} errors={}",
            g(&self.routed),
            g(&self.merged),
            g(&self.retried),
            g(&self.degraded),
            g(&self.failed),
            g(&self.stmts),
            g(&self.ok),
            g(&self.degraded_answers),
            g(&self.unavailable),
            g(&self.errors)
        )
    }

    /// Both conservation identities, checked at a quiescent point (no
    /// statement in flight).
    pub fn balanced(&self) -> bool {
        let g = |c: &AtomicU64| c.load(Ordering::Acquire);
        g(&self.routed)
            == g(&self.merged)
                .saturating_add(g(&self.retried))
                .saturating_add(g(&self.degraded))
                .saturating_add(g(&self.failed))
            && g(&self.stmts)
                == g(&self.ok)
                    .saturating_add(g(&self.degraded_answers))
                    .saturating_add(g(&self.unavailable))
                    .saturating_add(g(&self.errors))
    }
}

//! Shard-server child management: spawn, death detection, respawn with
//! `--resume`, and the re-heal protocol that readmits a shard.
//!
//! The dangerous moment in failover is *readmission*: a respawned
//! shard that resumed an old snapshot holds a model from an earlier
//! tick, and letting it answer queries would silently merge stale
//! values into otherwise-correct answers. The supervisor therefore
//! gates readmission on proof, not liveness:
//!
//! 1. the shard answers `.ping`;
//! 2. its identity checks out — a one-shot `!meta` statement must
//!    agree with the fleet's series count and ownership plan;
//! 3. its tick count is caught up to the coordinator's target (behind
//!    → `.tick <delta>` replays the deterministic stream; *ahead* →
//!    the state is from a different run, wipe and respawn fresh);
//! 4. tick-parity is re-verified under the coordinator's tick write
//!    lock, so no `.tick` fan-out can race the readmission.
//!
//! Only then does [`crate::remote::RemoteShard::clear_resync`] run.
//! Until it does, the shard fast-fails every query and statements come
//! back `DEGRADED` — degraded is honest; stale would be a lie.

use crate::proto::{decode_response, ShardRequest, ShardResponse};
use crate::remote::RemoteShard;
use parking_lot::{Mutex, RwLock};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long a spawned shard server may take to print its
/// `SERVE addr=` startup line (model warm-up included).
const SPAWN_TIMEOUT: Duration = Duration::from_secs(120);
/// Deadline for control probes during health checks.
const PROBE_TIMEOUT: Duration = Duration::from_millis(750);
/// Deadline for catch-up `.tick` calls (they recompute models).
const CATCHUP_TIMEOUT: Duration = Duration::from_secs(60);
/// Monitor cadence.
const MONITOR_EVERY: Duration = Duration::from_millis(200);
/// Consecutive failed pings that quarantine a live-looking child.
const PING_FAILS: u32 = 3;
/// Bound on one heal attempt; the monitor retries next cycle.
const HEAL_WINDOW: Duration = Duration::from_secs(10);

/// Everything needed to (re)spawn one shard server child.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The `affinity` binary.
    pub exe: PathBuf,
    /// Shard index.
    pub shard: usize,
    /// Fleet size.
    pub shards: usize,
    /// Replay generator kind (`sensor` / `stock`).
    pub gen: String,
    /// Series count of the replay dataset.
    pub series: usize,
    /// Samples of the replay dataset.
    pub samples: usize,
    /// Streaming window size.
    pub window: usize,
    /// Worker lanes per shard server.
    pub workers: usize,
    /// Start children with `--chaos` (fault injection enabled).
    pub chaos: bool,
    /// Snapshot directory: first spawn uses `--persist`, respawns use
    /// `--resume` (falling back to a wipe + fresh `--persist` when the
    /// resume cannot come up). `None` disables persistence — respawns
    /// rebuild from scratch and re-tick to parity.
    pub persist_dir: Option<PathBuf>,
}

impl ShardSpec {
    fn command(&self, resume: bool) -> Command {
        let mut cmd = Command::new(&self.exe);
        cmd.arg("serve")
            .arg("--shard")
            .arg(self.shard.to_string())
            .arg("--shards")
            .arg(self.shards.to_string())
            .arg("--gen")
            .arg(&self.gen)
            .arg("--series")
            .arg(self.series.to_string())
            .arg("--samples")
            .arg(self.samples.to_string())
            .arg("--window")
            .arg(self.window.to_string())
            .arg("--workers")
            .arg(self.workers.to_string())
            .arg("--port")
            .arg("0")
            .arg("--quiet");
        if self.chaos {
            cmd.arg("--chaos");
        }
        if let Some(dir) = &self.persist_dir {
            cmd.arg(if resume { "--resume" } else { "--persist" })
                .arg(dir.as_os_str());
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        cmd
    }
}

/// Spawn one shard server and wait for its `SERVE addr=` startup line.
/// The child's stdout keeps draining on a background thread for its
/// whole life (a full pipe would wedge it).
///
/// # Errors
/// Spawn failures, early child exit, or a startup timeout.
pub fn launch(spec: &ShardSpec, resume: bool) -> std::io::Result<(Child, String)> {
    let mut child = spec.command(resume).spawn()?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        return Err(std::io::Error::other("child stdout not captured"));
    };
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::Builder::new()
        .name(format!("affinity-coord-drain-{}", spec.shard))
        .spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if let Some(rest) = line.trim().strip_prefix("SERVE addr=") {
                            let addr = rest.split_whitespace().next().unwrap_or("").to_string();
                            let _ = tx.send(addr);
                        }
                        // Keep draining; later lines are discarded.
                    }
                }
            }
        })?;
    match rx.recv_timeout(SPAWN_TIMEOUT) {
        Ok(addr) if !addr.is_empty() => Ok((child, addr)),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            Err(std::io::Error::other(format!(
                "shard {} did not report an address within {SPAWN_TIMEOUT:?}",
                spec.shard
            )))
        }
    }
}

/// Spawn the whole fleet fresh, in shard order.
///
/// # Errors
/// The first failing spawn (already-started children are killed).
pub fn spawn_fleet(specs: &[ShardSpec]) -> std::io::Result<(Vec<Child>, Vec<String>)> {
    let mut children = Vec::with_capacity(specs.len());
    let mut addrs = Vec::with_capacity(specs.len());
    for spec in specs {
        match launch(spec, false) {
            Ok((child, addr)) => {
                children.push(child);
                addrs.push(addr);
            }
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }
    Ok((children, addrs))
}

/// The failover loop: watches children, quarantines and respawns dead
/// or unresponsive shards, and runs the re-heal protocol before
/// readmitting them.
pub struct Supervisor {
    remotes: Vec<Arc<RemoteShard>>,
    ticks: Arc<RwLock<u64>>,
    /// One spec per shard for respawning; empty = attach mode (no
    /// child management, health + heal only).
    specs: Vec<ShardSpec>,
    children: Mutex<Vec<Option<Child>>>,
    /// The fleet identity a healed shard must prove before
    /// readmission.
    expected_series: usize,
    expected_assignments: Vec<u32>,
    stop: AtomicBool,
    on_event: Box<dyn Fn(&str) + Send + Sync>,
}

impl Supervisor {
    /// Build a supervisor over an already-running fleet. `children`
    /// must align with `specs` (both empty for attach mode). Events
    /// (respawn, heal, wipe) are reported through `on_event`.
    pub fn new(
        remotes: Vec<Arc<RemoteShard>>,
        ticks: Arc<RwLock<u64>>,
        specs: Vec<ShardSpec>,
        children: Vec<Child>,
        expected_series: usize,
        expected_assignments: Vec<u32>,
        on_event: Box<dyn Fn(&str) + Send + Sync>,
    ) -> Arc<Supervisor> {
        Arc::new(Supervisor {
            remotes,
            ticks,
            specs,
            children: Mutex::new(children.into_iter().map(Some).collect()),
            expected_series,
            expected_assignments,
            stop: AtomicBool::new(false),
            on_event,
        })
    }

    /// Request the monitor loop to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The monitor loop; run it on a dedicated thread. Exits on
    /// [`Supervisor::stop`].
    pub fn run(self: &Arc<Self>) {
        let mut ping_fails = vec![0u32; self.remotes.len()];
        while !self.stopping() {
            for shard in 0..self.remotes.len() {
                if self.stopping() {
                    break;
                }
                let Some(remote) = self.remotes.get(shard) else {
                    continue;
                };
                if self.manage_child(shard, remote) {
                    // Child was respawned (or is mid-restart); heal on
                    // a later cycle once it can answer pings.
                    if let Some(f) = ping_fails.get_mut(shard) {
                        *f = 0;
                    }
                }
                if remote.resyncing() {
                    self.heal(shard, remote);
                } else if !self.ping(remote) {
                    let fails = match ping_fails.get_mut(shard) {
                        Some(f) => {
                            *f = f.saturating_add(1);
                            *f
                        }
                        None => 0,
                    };
                    if fails >= PING_FAILS {
                        self.event(&format!("quarantine shard={shard} reason=ping"));
                        remote.mark_resync();
                    }
                } else if let Some(f) = ping_fails.get_mut(shard) {
                    *f = 0;
                }
            }
            std::thread::sleep(MONITOR_EVERY);
        }
    }

    fn event(&self, msg: &str) {
        (self.on_event)(msg);
    }

    fn ping(&self, remote: &RemoteShard) -> bool {
        matches!(
            RemoteShard::control_once(&remote.addr(), ".ping", PROBE_TIMEOUT),
            Ok(line) if line.starts_with('+')
        )
    }

    /// Detect a dead child and respawn it. Returns `true` if a respawn
    /// happened this cycle. Attach mode (no specs) never respawns.
    fn manage_child(&self, shard: usize, remote: &Arc<RemoteShard>) -> bool {
        if self.specs.is_empty() {
            return false;
        }
        let dead = {
            let mut children = self.children.lock();
            match children.get_mut(shard) {
                Some(slot) => match slot {
                    Some(child) => match child.try_wait() {
                        Ok(Some(_status)) => {
                            *slot = None;
                            true
                        }
                        Ok(None) => false,
                        Err(_) => {
                            *slot = None;
                            true
                        }
                    },
                    None => true,
                },
                None => false,
            }
        };
        if !dead {
            return false;
        }
        // Quarantine *before* respawning: nothing may route to the
        // shard until the re-heal proves parity.
        remote.mark_resync();
        self.event(&format!("down shard={shard}"));
        let Some(spec) = self.specs.get(shard) else {
            return false;
        };
        let has_dir = spec.persist_dir.as_deref().is_some_and(|d| d.is_dir());
        let attempt = if has_dir {
            launch(spec, true).map(|ok| (ok, "resume"))
        } else {
            launch(spec, false).map(|ok| (ok, "fresh"))
        };
        let ((child, addr), mode) = match attempt {
            Ok(ok) => ok,
            Err(_) if has_dir => {
                // The snapshot would not come up (e.g. corrupted past
                // recovery); wipe it and rebuild from scratch — the
                // deterministic replay re-ticks it to parity.
                if let Some(dir) = &spec.persist_dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
                self.event(&format!("wipe shard={shard}"));
                match launch(spec, false) {
                    Ok(ok) => (ok, "fresh"),
                    Err(e) => {
                        self.event(&format!("respawn-failed shard={shard} err={e}"));
                        return true;
                    }
                }
            }
            Err(e) => {
                self.event(&format!("respawn-failed shard={shard} err={e}"));
                return true;
            }
        };
        self.event(&format!(
            "respawn shard={shard} pid={} addr={addr} mode={mode}",
            child.id()
        ));
        remote.set_addr(addr);
        let mut children = self.children.lock();
        if let Some(slot) = children.get_mut(shard) {
            *slot = Some(child);
        }
        true
    }

    /// One bounded re-heal attempt (see the module docs for the
    /// protocol). Leaves the shard quarantined unless every step
    /// passes.
    fn heal(&self, shard: usize, remote: &Arc<RemoteShard>) {
        let deadline = Instant::now() + HEAL_WINDOW;
        let addr = remote.addr();
        while Instant::now() < deadline && !self.stopping() {
            if !self.ping(remote) {
                std::thread::sleep(Duration::from_millis(100));
                continue;
            }
            // Identity: the shard must be serving *this* fleet's model.
            match self.verify_identity(&addr) {
                Some(true) => {}
                Some(false) => {
                    self.event(&format!("identity-mismatch shard={shard}"));
                    self.force_fresh(shard, remote);
                    return;
                }
                None => {
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
            }
            // Catch up outside the tick lock (ticks are slow).
            let target = *self.ticks.read();
            let Some(at) = shard_ticks(&addr) else {
                std::thread::sleep(Duration::from_millis(100));
                continue;
            };
            if at > target {
                // Ahead of the fleet: state from another run.
                self.event(&format!("ahead shard={shard} at={at} target={target}"));
                self.force_fresh(shard, remote);
                return;
            }
            if at < target {
                let delta = target - at;
                let ok = matches!(
                    RemoteShard::control_once(&addr, &format!(".tick {delta}"), CATCHUP_TIMEOUT),
                    Ok(line) if line.starts_with('+')
                );
                if !ok {
                    std::thread::sleep(Duration::from_millis(100));
                }
                continue;
            }
            // Parity seen; re-verify under the tick write lock so no
            // fan-out can slip between the check and the readmission.
            let guard = self.ticks.write();
            let frozen = *guard;
            let verified = shard_ticks(&addr) == Some(frozen);
            if verified {
                remote.clear_resync();
                drop(guard);
                self.event(&format!("heal shard={shard} ticks={frozen}"));
                return;
            }
            drop(guard);
            // The target moved while we were catching up; loop.
        }
    }

    /// `!meta` the shard and compare identity. `None` = could not ask
    /// (retry), `Some(false)` = wrong model.
    fn verify_identity(&self, addr: &str) -> Option<bool> {
        let body = statement_once(addr, "hl !meta", PROBE_TIMEOUT)?;
        let resp = decode_response(&ShardRequest::Meta, &body).ok()?;
        let ShardResponse::Meta(meta) = resp else {
            return Some(false);
        };
        Some(
            meta.series == self.expected_series
                && meta.assignments == self.expected_assignments
                && meta.shards == self.remotes.len(),
        )
    }

    /// Kill the child (if any) and blank its snapshot dir so the next
    /// monitor cycle respawns it fresh.
    fn force_fresh(&self, shard: usize, remote: &Arc<RemoteShard>) {
        remote.mark_resync();
        {
            let mut children = self.children.lock();
            if let Some(Some(child)) = children.get_mut(shard) {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(slot) = children.get_mut(shard) {
                *slot = None;
            }
        }
        if let Some(dir) = self.specs.get(shard).and_then(|s| s.persist_dir.as_ref()) {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    /// Gracefully stop every child: `.shutdown` best effort, then wait
    /// with a deadline, then kill.
    pub fn shutdown_children(&self) {
        self.stop();
        if self.specs.is_empty() {
            return;
        }
        for remote in &self.remotes {
            let _ = RemoteShard::control_once(&remote.addr(), ".shutdown", PROBE_TIMEOUT);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut children = self.children.lock();
        for slot in children.iter_mut() {
            if let Some(child) = slot {
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(50))
                        }
                        _ => {
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                    }
                }
            }
            *slot = None;
        }
    }
}

/// The shard's current tick count, via `.epoch`.
fn shard_ticks(addr: &str) -> Option<u64> {
    let line = RemoteShard::control_once(addr, ".epoch", PROBE_TIMEOUT).ok()?;
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("ticks="))
        .and_then(|t| t.parse().ok())
}

/// One statement over a fresh connection: returns the body lines of an
/// `OK` response (the status line is validated and dropped).
fn statement_once(addr: &str, line: &str, timeout: Duration) -> Option<Vec<String>> {
    use std::io::Write;
    let sockaddr: std::net::SocketAddr = addr.parse().ok()?;
    let mut stream = std::net::TcpStream::connect_timeout(&sockaddr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    stream.write_all(line.as_bytes()).ok()?;
    stream.write_all(b"\n").ok()?;
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).ok()?;
    let mut parts = status.split_whitespace();
    if parts.next() != Some("OK") {
        return None;
    }
    let _id = parts.next()?;
    let n: usize = parts.next()?.parse().ok()?;
    if n > 4096 {
        return None;
    }
    let mut body = Vec::with_capacity(n);
    for _ in 0..n {
        let mut l = String::new();
        match reader.read_line(&mut l) {
            Ok(k) if k > 0 => body.push(l.trim_end().to_string()),
            _ => return None,
        }
    }
    Some(body)
}

//! The TCP shard backend: per-request deadlines, jittered
//! exponential-backoff retries, and a per-shard circuit breaker.
//!
//! A [`RemoteShard`] owns one connection to one shard server and
//! implements [`ShardBackend`] over the serve line protocol. Failure
//! policy:
//!
//! * every attempt has a hard deadline ([`RetryPolicy::timeout`]) on
//!   connect, write, and read;
//! * a failed attempt is retried up to [`RetryPolicy::attempts`] times
//!   with exponential backoff, jittered ×[0.5, 1.5) so a fleet of
//!   coordinator workers does not re-dogpile a recovering shard;
//! * consecutive failures trip the [`CircuitBreaker`] open — calls then
//!   fast-fail without touching the socket until the cooldown elapses,
//!   after which a single half-open probe decides re-close vs re-open;
//! * a shard flagged `needs_resync` (its server died or missed a tick
//!   fan-out) fast-fails even with a closed breaker, until the
//!   supervisor verifies tick-parity and calls
//!   [`RemoteShard::clear_resync`]. A respawned-but-stale shard must
//!   never serve answers from an old epoch.

use crate::backend::{BackendError, ShardBackend};
use crate::proto::{decode_response, encode_request, ShardRequest, ShardResponse};
use crate::stats::CoordStats;
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on one response line read from a shard server. Matches the
/// serve transport's own line cap so the reader cannot be ballooned by
/// a corrupt peer.
const MAX_RESPONSE_LINE: u64 = 64 * 1024;
/// Cap on the number of body lines one response may announce.
const MAX_BODY_LINES: u64 = 1 << 20;

/// Deadlines and retry budget for one logical call.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per logical call (1 = no retries).
    pub attempts: u32,
    /// Hard per-attempt deadline (connect, write, and read).
    pub timeout: Duration,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The pre-jitter backoff before retry number `retry` (0-based).
    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(8);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive logical-call failures that trip the breaker open.
    pub threshold: u32,
    /// How long the breaker stays open before allowing one half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            threshold: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed,
    Open { since: Instant },
    HalfOpen,
}

struct BreakerInner {
    state: BreakerState,
    consecutive: u32,
}

/// A closed / open / half-open circuit breaker guarding one shard.
///
/// `admit` answers "may this call touch the socket?"; callers report
/// the outcome with `on_success` / `on_failure`. While open, at most
/// one probe is admitted per cooldown window.
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive: 0,
            }),
        }
    }

    /// Whether a call may proceed. An open breaker past its cooldown
    /// transitions to half-open and admits exactly that one probe.
    pub fn admit(&self) -> bool {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open { since } => {
                if since.elapsed() >= self.policy.cooldown {
                    g.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // A probe is already in flight; hold further calls back.
            BreakerState::HalfOpen => false,
        }
    }

    /// Report a completed round-trip: re-close from any state.
    pub fn on_success(&self) {
        let mut g = self.inner.lock();
        g.state = BreakerState::Closed;
        g.consecutive = 0;
    }

    /// Report a failed logical call: trip open from half-open
    /// immediately, or from closed once the threshold is met.
    pub fn on_failure(&self) {
        let mut g = self.inner.lock();
        g.consecutive = g.consecutive.saturating_add(1);
        let trip =
            matches!(g.state, BreakerState::HalfOpen) || g.consecutive >= self.policy.threshold;
        if trip {
            g.state = BreakerState::Open {
                since: Instant::now(),
            };
        }
    }

    /// Trip the breaker open immediately (supervisor saw the child
    /// die — no point burning the retry budget on a dead socket).
    pub fn force_open(&self) {
        let mut g = self.inner.lock();
        g.consecutive = g.consecutive.max(self.policy.threshold);
        g.state = BreakerState::Open {
            since: Instant::now(),
        };
    }

    /// Whether a call would currently be admitted (no state change).
    pub fn would_admit(&self) -> bool {
        let g = self.inner.lock();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open { since } => since.elapsed() >= self.policy.cooldown,
            BreakerState::HalfOpen => false,
        }
    }

    /// The state name, for `.health` reporting.
    pub fn state_name(&self) -> &'static str {
        match self.inner.lock().state {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Deterministic per-shard jitter source (xorshift64*); no global RNG,
/// seeded off the shard index so runs are reproducible.
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: seed | 1, // never zero
        }
    }

    /// Uniform-ish in [0.5, 1.5).
    fn jitter(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        0.5 + (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct LineConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A TCP [`ShardBackend`] to one shard server, with the failure policy
/// described in the module docs.
pub struct RemoteShard {
    shard: usize,
    addr: Mutex<String>,
    conn: Mutex<Option<LineConn>>,
    breaker: CircuitBreaker,
    needs_resync: AtomicBool,
    retry: RetryPolicy,
    stats: Arc<CoordStats>,
    seq: AtomicU64,
    jitter: Mutex<XorShift64>,
}

impl RemoteShard {
    /// A backend for shard `shard` at `addr` (`host:port`). No
    /// connection is made until the first call.
    pub fn new(
        shard: usize,
        addr: String,
        retry: RetryPolicy,
        breaker: BreakerPolicy,
        stats: Arc<CoordStats>,
    ) -> RemoteShard {
        RemoteShard {
            shard,
            addr: Mutex::new(addr),
            conn: Mutex::new(None),
            breaker: CircuitBreaker::new(breaker),
            needs_resync: AtomicBool::new(false),
            retry,
            stats,
            seq: AtomicU64::new(1),
            jitter: Mutex::new(XorShift64::new(0x9E37_79B9_7F4A_7C15 ^ shard as u64)),
        }
    }

    /// The current shard-server address.
    pub fn addr(&self) -> String {
        self.addr.lock().clone()
    }

    /// Point this backend at a respawned shard server. Drops any
    /// cached connection.
    pub fn set_addr(&self, addr: String) {
        *self.addr.lock() = addr;
        *self.conn.lock() = None;
    }

    /// Quarantine the shard: fast-fail every call until
    /// [`RemoteShard::clear_resync`]. Also trips the breaker and drops
    /// the cached connection.
    pub fn mark_resync(&self) {
        self.needs_resync.store(true, Ordering::Release);
        self.breaker.force_open();
        *self.conn.lock() = None;
    }

    /// Readmit the shard after the supervisor verified tick-parity:
    /// clears the quarantine and re-closes the breaker.
    pub fn clear_resync(&self) {
        self.needs_resync.store(false, Ordering::Release);
        self.breaker.on_success();
    }

    /// Whether the shard is quarantined pending re-heal.
    pub fn resyncing(&self) -> bool {
        self.needs_resync.load(Ordering::Acquire)
    }

    /// Whether a call right now would be admitted (health reporting).
    pub fn available(&self) -> bool {
        !self.resyncing() && self.breaker.would_admit()
    }

    /// Breaker state name for `.health`.
    pub fn state_name(&self) -> &'static str {
        self.breaker.state_name()
    }

    /// One shot of a control command (`.ping`, `.tick 3`, `.epoch`,
    /// `.shutdown`) on a *fresh* connection with its own deadline,
    /// bypassing breaker and retry policy — the supervisor uses this
    /// while the shard is quarantined. Returns the raw `+...`/`-...`
    /// reply line, trimmed.
    pub fn control_once(addr: &str, cmd: &str, timeout: Duration) -> std::io::Result<String> {
        let sockaddr: SocketAddr = addr
            .parse()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
        let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.write_all(cmd.as_bytes())?;
        stream.write_all(b"\n")?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let n = reader
            .by_ref()
            .take(MAX_RESPONSE_LINE)
            .read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before reply",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    fn connect(&self) -> std::io::Result<LineConn> {
        let addr = self.addr();
        let sockaddr: SocketAddr = addr
            .parse()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{e}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, self.retry.timeout)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.retry.timeout))?;
        stream.set_write_timeout(Some(self.retry.timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(LineConn { stream, reader })
    }

    /// One wire round-trip on the cached (or a fresh) connection.
    fn attempt(&self, req: &ShardRequest) -> Result<ShardResponse, String> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.connect().map_err(|e| format!("connect: {e}"))?);
        }
        let result = match guard.as_mut() {
            Some(conn) => self.round_trip(conn, req),
            None => Err("connect: no connection".to_string()),
        };
        if result.is_err() {
            // Drop the connection: a timed-out or torn socket may have
            // a stale reply in flight that would corrupt the next call.
            *guard = None;
        }
        result
    }

    fn round_trip(&self, conn: &mut LineConn, req: &ShardRequest) -> Result<ShardResponse, String> {
        let id = self.seq.fetch_add(1, Ordering::AcqRel);
        let line = format!("{id} {}\n", encode_request(req));
        conn.stream
            .write_all(line.as_bytes())
            .map_err(|e| format!("write: {e}"))?;
        let status = read_capped_line(&mut conn.reader)?;
        let mut parts = status.split_whitespace();
        let verb = parts.next().ok_or("empty status line")?;
        let got_id = parts.next().ok_or("status line missing id")?;
        if got_id != id.to_string() {
            return Err(format!("response id {got_id} does not match request {id}"));
        }
        match verb {
            "OK" => {
                let count: u64 = parts
                    .next()
                    .ok_or("OK line missing count")?
                    .parse()
                    .map_err(|e| format!("bad body count: {e}"))?;
                if count > MAX_BODY_LINES {
                    return Err(format!("body of {count} lines exceeds cap"));
                }
                let mut body = Vec::with_capacity(count.min(1024) as usize);
                for _ in 0..count {
                    body.push(read_capped_line(&mut conn.reader)?);
                }
                decode_response(req, &body).map_err(|e| format!("decode: {e}"))
            }
            "ERR" => {
                let code = parts.next().unwrap_or("INTERNAL").to_string();
                let message = parts.collect::<Vec<_>>().join(" ");
                // A typed error is a completed round-trip: the shard is
                // healthy, the statement is what failed.
                Err(format!("\u{0}{code}\u{0}{message}"))
            }
            other => Err(format!("unexpected status verb {other:?}")),
        }
    }
}

/// Read one `\n`-terminated line, bounded by [`MAX_RESPONSE_LINE`].
fn read_capped_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(MAX_RESPONSE_LINE)
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    if n == 0 {
        return Err("connection closed mid-response".to_string());
    }
    if !line.ends_with('\n') {
        return Err("response line unterminated or over cap".to_string());
    }
    Ok(line.trim_end().to_string())
}

impl ShardBackend for RemoteShard {
    fn shard(&self) -> usize {
        self.shard
    }

    fn call(&self, req: &ShardRequest) -> Result<ShardResponse, BackendError> {
        if self.resyncing() || !self.breaker.admit() {
            // Fast-fail: still a routing decision, so it is `routed`;
            // the coordinator settles it into degraded/failed.
            CoordStats::bump(&self.stats.routed);
            return Err(BackendError::Unavailable {
                shard: self.shard,
                reason: if self.resyncing() {
                    "quarantined pending re-heal".to_string()
                } else {
                    "circuit open".to_string()
                },
            });
        }
        let mut last = String::new();
        for attempt in 0..self.retry.attempts {
            CoordStats::bump(&self.stats.routed);
            match self.attempt(req) {
                Ok(resp) => {
                    self.breaker.on_success();
                    CoordStats::bump(&self.stats.merged);
                    return Ok(resp);
                }
                Err(e) => {
                    if let Some(rest) = e.strip_prefix('\u{0}') {
                        // Typed shard error: round-trip completed.
                        self.breaker.on_success();
                        CoordStats::bump(&self.stats.merged);
                        let (code, message) = rest
                            .split_once('\u{0}')
                            .map(|(c, m)| (c.to_string(), m.to_string()))
                            .unwrap_or_else(|| ("INTERNAL".to_string(), rest.to_string()));
                        return Err(BackendError::Remote {
                            shard: self.shard,
                            code,
                            message,
                        });
                    }
                    last = e;
                    if attempt + 1 < self.retry.attempts {
                        CoordStats::bump(&self.stats.retried);
                        let base = self.retry.backoff(attempt);
                        let jit = self.jitter.lock().jitter();
                        std::thread::sleep(base.mul_f64(jit));
                    }
                }
            }
        }
        self.breaker.on_failure();
        Err(BackendError::Unavailable {
            shard: self.shard,
            reason: last,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_probes_after_cooldown() {
        let b = CircuitBreaker::new(BreakerPolicy {
            threshold: 2,
            cooldown: Duration::from_millis(10),
        });
        assert!(b.admit());
        b.on_failure();
        assert!(b.admit(), "one failure below threshold keeps it closed");
        b.on_failure();
        assert_eq!(b.state_name(), "open");
        assert!(!b.admit(), "open breaker fast-fails inside cooldown");
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.admit(), "cooldown elapsed: one half-open probe");
        assert_eq!(b.state_name(), "half-open");
        assert!(!b.admit(), "only one probe at a time");
        b.on_failure();
        assert_eq!(b.state_name(), "open", "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.admit());
        b.on_success();
        assert_eq!(b.state_name(), "closed", "good probe re-closes");
        assert!(b.admit());
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut j = XorShift64::new(42);
        for _ in 0..1000 {
            let x = j.jitter();
            assert!((0.5..1.5).contains(&x), "jitter {x} out of band");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), Duration::from_millis(20));
        assert_eq!(p.backoff(1), Duration::from_millis(40));
        assert_eq!(p.backoff(2), Duration::from_millis(80));
        assert_eq!(p.backoff(10), Duration::from_millis(200), "capped");
    }

    #[test]
    fn dead_address_yields_unavailable_and_counts_attempts() {
        let stats = Arc::new(CoordStats::new());
        let remote = RemoteShard::new(
            0,
            // Reserved port on localhost that nothing listens on.
            "127.0.0.1:1".to_string(),
            RetryPolicy {
                attempts: 2,
                timeout: Duration::from_millis(100),
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
            },
            BreakerPolicy::default(),
            stats.clone(),
        );
        let err = remote.call(&ShardRequest::Meta);
        assert!(matches!(
            err,
            Err(BackendError::Unavailable { shard: 0, .. })
        ));
        let routed = stats.routed.load(std::sync::atomic::Ordering::Acquire);
        let retried = stats.retried.load(std::sync::atomic::Ordering::Acquire);
        assert_eq!(routed, 2, "both attempts routed");
        assert_eq!(retried, 1, "first failure retried");
    }
}

//! The [`ShardBackend`] trait and the shared shard-side query
//! implementation.
//!
//! [`answer`] is the *single* implementation of every shard request:
//! the in-process backend calls it directly, and a shard server calls
//! it for requests that arrived over the wire. The remote and
//! in-process paths therefore cannot drift — the distributed oracle
//! holds because both transports execute this function.
//!
//! Requests arrive decoded from untrusted bytes, so `answer` is
//! panic-free: out-of-range ids and shapes come back as
//! [`AnswerError`]s with stable wire codes, never as crashes.

use crate::proto::{ProtoError, ShardMeta, ShardRequest, ShardResponse};
use crate::stats::CoordStats;
use affinity_core::error::CoreError;
use affinity_core::measures::Measure;
use affinity_data::SequencePair;
use affinity_scape::ScapeError;
use affinity_shard::ShardedModel;
use std::fmt;
use std::sync::Arc;

/// Why a backend call failed, as the coordinator's executor sees it.
#[derive(Debug)]
pub enum BackendError {
    /// The shard could not be reached: connect/io/timeout/decode
    /// failures past the retry budget, or a fast-fail from an open
    /// circuit breaker. The statement degrades around this shard (or
    /// becomes `UNAVAILABLE` if it cannot).
    Unavailable {
        /// The shard that was unreachable.
        shard: usize,
        /// Human-readable cause of the *last* attempt.
        reason: String,
    },
    /// The shard is alive and answered a typed error — the transport
    /// succeeded, the statement itself fails with the shard's code.
    Remote {
        /// The answering shard.
        shard: usize,
        /// Wire error code (`PROTO`, `UNKNOWN`, `INTERNAL`, …).
        code: String,
        /// Error message.
        message: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unavailable { shard, reason } => {
                write!(f, "shard {shard} unavailable: {reason}")
            }
            BackendError::Remote {
                shard,
                code,
                message,
            } => write!(f, "shard {shard} answered {code}: {message}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A routed transport to one shard. Implementations: in-process
/// ([`InProcBackend`]), TCP ([`crate::remote::RemoteShard`]), and
/// test doubles that inject failures.
pub trait ShardBackend: Send + Sync {
    /// The shard index this backend reaches.
    fn shard(&self) -> usize;
    /// Execute one request, observing the implementation's deadline /
    /// retry / breaker policy.
    fn call(&self, req: &ShardRequest) -> Result<ShardResponse, BackendError>;
}

/// Shard-side execution failures, mapped to stable wire codes.
#[derive(Debug)]
pub enum AnswerError {
    /// The request names a shard this model does not have.
    NoShard {
        /// Requested shard.
        shard: usize,
        /// Shards the model holds.
        shards: usize,
    },
    /// The request is structurally valid but semantically impossible.
    BadRequest(String),
    /// An index query failed.
    Scape(ScapeError),
    /// An engine lookup failed.
    Core(CoreError),
}

impl AnswerError {
    /// The wire error code carried on the `ERR` response line.
    pub fn wire_code(&self) -> &'static str {
        match self {
            AnswerError::NoShard { .. } | AnswerError::BadRequest(_) => "PROTO",
            AnswerError::Scape(ScapeError::EmptyRange) => "RANGE",
            AnswerError::Scape(ScapeError::Cancelled) => "CANCELLED",
            AnswerError::Scape(_) => "INTERNAL",
            AnswerError::Core(CoreError::UnknownSeries { .. }) => "UNKNOWN",
            AnswerError::Core(_) => "INTERNAL",
        }
    }
}

impl fmt::Display for AnswerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerError::NoShard { shard, shards } => {
                write!(f, "shard {shard} of a {shards}-shard model")
            }
            AnswerError::BadRequest(m) => write!(f, "{m}"),
            AnswerError::Scape(e) => write!(f, "{e}"),
            AnswerError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnswerError {}

impl From<ProtoError> for AnswerError {
    fn from(e: ProtoError) -> Self {
        AnswerError::BadRequest(e.to_string())
    }
}

/// The measures this model's indexes can answer — *effective* support
/// (cosine rides the dot-product tree, correlation needs its flag), so
/// the coordinator's indexed-vs-scan planning decision lands exactly
/// where a local sharded [`affinity_ql::Session`]'s would.
pub fn supported_measures(model: &ShardedModel) -> Vec<Measure> {
    Measure::EXTENDED
        .iter()
        .copied()
        .filter(|&m| model.supports(m))
        .collect()
}

/// Answer one decoded request against shard `shard` of `model`.
/// `ticks` and `epoch` describe the serving state (meta only).
///
/// # Errors
/// [`AnswerError`] with a stable wire code; never panics — requests
/// decode from untrusted bytes.
pub fn answer(
    model: &ShardedModel,
    shard: usize,
    ticks: u64,
    epoch: u64,
    req: &ShardRequest,
) -> Result<ShardResponse, AnswerError> {
    let sm = model.shards().get(shard).ok_or(AnswerError::NoShard {
        shard,
        shards: model.shards().len(),
    })?;
    let n = model.series_count();
    match req {
        ShardRequest::Meta => Ok(ShardResponse::Meta(ShardMeta {
            shard,
            shards: model.plan().shards(),
            series: n,
            samples: model.samples(),
            ticks,
            epoch,
            indexed: supported_measures(model),
            assignments: model.plan().assignments().to_vec(),
        })),
        ShardRequest::ThresholdPairs { measure, op, tau } => {
            let chunks = sm
                .index()
                .threshold_pairs_grouped(*measure, *op, *tau, &|| false)
                .map_err(AnswerError::Scape)?;
            tag_chunks(sm.ordinals(), chunks)
        }
        ShardRequest::RangePairs { measure, lo, hi } => {
            let chunks = sm
                .index()
                .range_pairs_grouped(*measure, *lo, *hi, &|| false)
                .map_err(AnswerError::Scape)?;
            tag_chunks(sm.ordinals(), chunks)
        }
        ShardRequest::ThresholdSeries { measure, op, tau } => {
            let clusters = sm
                .index()
                .threshold_series_keyed(*measure, *op, *tau)
                .map_err(AnswerError::Scape)?;
            Ok(ShardResponse::KeyedSeries(narrow_keyed(clusters)))
        }
        ShardRequest::RangeSeries { measure, lo, hi } => {
            let clusters = sm
                .index()
                .range_series_keyed(*measure, *lo, *hi)
                .map_err(AnswerError::Scape)?;
            Ok(ShardResponse::KeyedSeries(narrow_keyed(clusters)))
        }
        ShardRequest::LocationValues { measure, ids } => {
            let mut values = Vec::with_capacity(ids.len());
            for &v in ids {
                values.push(
                    sm.location_value(*measure, v as usize)
                        .map_err(AnswerError::Core)?,
                );
            }
            Ok(ShardResponse::Values(values))
        }
        ShardRequest::PairValues { measure, pairs } => {
            let mut values = Vec::with_capacity(pairs.len());
            for &(u, v) in pairs {
                // Wire decode guarantees u < v, so the literal upholds
                // the SequencePair invariant without the asserting
                // constructor.
                let pair = SequencePair {
                    u: u as usize,
                    v: v as usize,
                };
                values.push(if sm.has_pair(pair) {
                    Some(sm.pair_value(*measure, pair).map_err(AnswerError::Core)?)
                } else {
                    None
                });
            }
            Ok(ShardResponse::MaybeValues(values))
        }
        ShardRequest::DiagValues { measure, ids } => {
            let mut values = Vec::with_capacity(ids.len());
            for &v in ids {
                values.push(
                    model
                        .diag_value(*measure, v as usize)
                        .ok_or(AnswerError::Core(CoreError::UnknownSeries {
                            id: v as usize,
                            series: n,
                        }))?,
                );
            }
            Ok(ShardResponse::Values(values))
        }
        ShardRequest::ScanPairs { measure } => {
            let mut entries = Vec::with_capacity(sm.affine().len());
            for rel in sm.affine().relationships() {
                // Errors drop the pair, exactly as the local fallback
                // scan does.
                if let Ok(x) = sm.pair_value(*measure, rel.pair) {
                    entries.push((rel.pair.u as u32, rel.pair.v as u32, x));
                }
            }
            Ok(ShardResponse::ScanPairs(entries))
        }
        ShardRequest::ScanSeries { measure } => {
            let mut entries = Vec::with_capacity(sm.owned().len());
            for &v in sm.owned() {
                if let Ok(x) = sm.location_value(*measure, v as usize) {
                    entries.push((v, x));
                }
            }
            Ok(ShardResponse::ScanSeries(entries))
        }
    }
}

/// Tag grouped chunks with their global pivot ordinals and narrow the
/// pairs to the wire shape.
fn tag_chunks(
    ordinals: &[u32],
    chunks: Vec<(usize, Vec<SequencePair>)>,
) -> Result<ShardResponse, AnswerError> {
    let mut out = Vec::with_capacity(chunks.len());
    for (q, chunk) in chunks {
        let ord = ordinals
            .get(q)
            .copied()
            .ok_or_else(|| AnswerError::BadRequest(format!("pivot {q} has no global ordinal")))?;
        out.push((
            ord,
            chunk
                .iter()
                .map(|p| (p.u as u32, p.v as u32))
                .collect::<Vec<_>>(),
        ));
    }
    Ok(ShardResponse::PairChunks(out))
}

fn narrow_keyed(clusters: Vec<Vec<(f64, usize)>>) -> Vec<Vec<(f64, u32)>> {
    clusters
        .into_iter()
        .map(|entries| entries.into_iter().map(|(xi, v)| (xi, v as u32)).collect())
        .collect()
}

/// The in-process backend: calls [`answer`] directly against a local
/// [`ShardedModel`]. Used by the oracle test (same merge code, no
/// network) and available for single-process deployments.
pub struct InProcBackend {
    model: ShardedModel,
    shard: usize,
    stats: Arc<CoordStats>,
}

impl InProcBackend {
    /// Wrap shard `shard` of `model`. The model is cloned cheaply (its
    /// shards are `Arc`-shared).
    pub fn new(model: &ShardedModel, shard: usize, stats: Arc<CoordStats>) -> InProcBackend {
        InProcBackend {
            model: model.clone(),
            shard,
            stats,
        }
    }
}

impl ShardBackend for InProcBackend {
    fn shard(&self) -> usize {
        self.shard
    }

    fn call(&self, req: &ShardRequest) -> Result<ShardResponse, BackendError> {
        CoordStats::bump(&self.stats.routed);
        // In-process calls always complete a round-trip: both outcomes
        // count as `merged` attempts (a typed error is an answer).
        CoordStats::bump(&self.stats.merged);
        answer(&self.model, self.shard, 0, 0, req).map_err(|e| BackendError::Remote {
            shard: self.shard,
            code: e.wire_code().to_string(),
            message: e.to_string(),
        })
    }
}
